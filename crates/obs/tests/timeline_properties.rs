//! Property tests for cross-process timeline reconstruction: whatever
//! clock offsets the workers really had, and however wrong the midpoint
//! estimates were (jitter up to whole seconds), the reconstructed
//! timeline must be causally ordered — globally time-sorted, and every
//! dispatch attempt's phases in dispatch → solve_start → solve_end →
//! ack/lost order. This is the invariant `parma obs timeline` exits
//! non-zero without and the CI smoke job gates on.

use mea_obs::timeline::{
    is_causally_ordered, reconstruct, to_jsonl, DispatchTrace, JobTrace, TIMELINE_SCHEMA,
};
use proptest::prelude::*;

/// Raw generator material for one dispatch attempt: coordinator-side
/// gaps, the worker's true clock offset, the estimation error injected
/// into the recorded offset, and whether the attempt ever acked.
/// (Nested pairs because the vendored proptest implements tuple
/// strategies only up to arity four.)
type AttemptSpec = ((u64, u64, u64, u64), (i64, i64, bool));

fn attempt_spec() -> impl Strategy<Value = AttemptSpec> {
    (
        (
            1u64..2_000_000, // gap from the previous event to this dispatch, µs
            0u64..500_000,   // dispatch → solve start (true, coordinator clock)
            0u64..5_000_000, // solve duration
            1u64..500_000,   // solve end → ack
        ),
        (
            -1_000_000_000i64..1_000_000_000, // true worker−coordinator offset
            -2_000_000i64..2_000_000,         // offset-estimate error (RTT/2 jitter, scaled up)
            any::<bool>(),                    // acked (false = worker died: lost)
        ),
    )
}

/// Builds the jobs a coordinator+workers would have recorded for the
/// generated specs: worker stamps are on the *true*-offset clock, while
/// the recorded `offset_us` carries the injected estimation error — the
/// adversarial part reconstruction has to survive.
fn build_jobs(specs: Vec<Vec<AttemptSpec>>) -> Vec<JobTrace> {
    // Big epoch base so worker clocks stay positive under any offset.
    let mut t_c: u64 = 4_000_000_000;
    specs
        .into_iter()
        .enumerate()
        .map(|(ticket, attempts)| {
            let mut dispatches = Vec::new();
            let mut parent_span = 0u64;
            for (k, ((gap, to_start, len, to_ack), (offset, err, acked))) in
                attempts.into_iter().enumerate()
            {
                t_c += gap;
                let dispatch_us = t_c;
                let start_c = dispatch_us + to_start;
                let end_c = start_c + len;
                let ack_us = if acked { end_c + to_ack } else { 0 };
                let span_id = ((ticket as u64) << 8) | ((k as u64) + 1);
                dispatches.push(DispatchTrace {
                    span_id,
                    parent_span,
                    worker: k as u64,
                    worker_name: format!("w{k}"),
                    dispatch_us,
                    ack_us,
                    // The worker stamped its own clock: true offset.
                    solve_start_us: (start_c as i64 + offset) as u64,
                    solve_end_us: (end_c as i64 + offset) as u64,
                    // The coordinator estimated the offset with error.
                    offset_us: offset + err,
                    outcome: if acked { "ok" } else { "lost" }.into(),
                });
                parent_span = span_id;
                t_c = if acked { ack_us } else { t_c + 1 };
            }
            JobTrace {
                trace_id: 0xfeed,
                ticket: ticket as u64,
                path: format!("s{ticket}.txt"),
                dispatches,
            }
        })
        .collect()
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline invariant: reconstruction is causally ordered under
    /// any offsets and any estimation jitter.
    #[test]
    fn prop_reconstruction_is_causally_ordered(
        specs in proptest::collection::vec(
            proptest::collection::vec(attempt_spec(), 1..4), 1..6)
    ) {
        let jobs = build_jobs(specs);
        let tl = reconstruct(&jobs);
        prop_assert!(is_causally_ordered(&tl), "unordered timeline: {tl:#?}");
    }

    /// Structural completeness: every attempt contributes exactly one
    /// dispatch edge and exactly one terminal edge (ack or lost), solves
    /// of acked attempts land inside the (dispatch, ack) causal window,
    /// and every JSONL line carries the schema tag.
    #[test]
    fn prop_every_attempt_has_terminal_edges_in_window(
        specs in proptest::collection::vec(
            proptest::collection::vec(attempt_spec(), 1..4), 1..6)
    ) {
        let jobs = build_jobs(specs);
        let tl = reconstruct(&jobs);
        for job in &jobs {
            for (attempt, d) in job.dispatches.iter().enumerate() {
                let mine: Vec<_> = tl
                    .iter()
                    .filter(|e| e.ticket == job.ticket && e.attempt == attempt as u64)
                    .collect();
                let count = |p: &str| mine.iter().filter(|e| e.phase == p).count();
                prop_assert_eq!(count("dispatch"), 1);
                prop_assert_eq!(count("ack") + count("lost"), 1);
                prop_assert_eq!(count("solve_start"), 1);
                prop_assert_eq!(count("solve_end"), 1);
                if d.ack_us != 0 {
                    for e in &mine {
                        prop_assert!(
                            (d.dispatch_us..=d.ack_us).contains(&e.t_us),
                            "{} at {} outside [{}, {}]",
                            e.phase, e.t_us, d.dispatch_us, d.ack_us
                        );
                    }
                }
            }
        }
        for line in to_jsonl(&tl).lines() {
            prop_assert!(line.starts_with(&format!("{{\"schema\":\"{TIMELINE_SCHEMA}\"")));
        }
    }

    /// Redispatch lineage survives reconstruction: attempt k's parent
    /// span is attempt k−1's span, whatever the clocks did.
    #[test]
    fn prop_redispatch_lineage_is_preserved(
        specs in proptest::collection::vec(
            proptest::collection::vec(attempt_spec(), 2..4), 1..4)
    ) {
        let jobs = build_jobs(specs);
        let tl = reconstruct(&jobs);
        for job in &jobs {
            for (attempt, d) in job.dispatches.iter().enumerate() {
                let e = tl
                    .iter()
                    .find(|e| e.ticket == job.ticket
                        && e.attempt == attempt as u64
                        && e.phase == "dispatch")
                    .expect("dispatch edge");
                prop_assert_eq!(e.span_id, d.span_id);
                if attempt > 0 {
                    prop_assert_eq!(e.parent_span, job.dispatches[attempt - 1].span_id);
                } else {
                    prop_assert_eq!(e.parent_span, 0);
                }
            }
        }
    }
}
