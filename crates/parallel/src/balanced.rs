//! Deterministic static load balancing (§IV-C.1, *Balanced Parallel*).
//!
//! The paper balances the skewed constraint categories deterministically
//! rather than at runtime: "our implementation takes a deterministic
//! approach to balance the workload rather than making the decision at
//! runtime, which is stochastic." The classic deterministic heuristic for
//! makespan minimization is longest-processing-time-first (LPT): sort items
//! by descending cost and always hand the next item to the currently
//! lightest bucket. LPT's makespan is within 4/3 of optimal — good at small
//! scales, increasingly suboptimal relative to dynamic stealing at large
//! ones, which is exactly the behaviour the paper reports for *Balanced
//! Parallel*.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Partitions item indices into `buckets` groups by LPT on `costs`.
///
/// Returns `buckets` index lists (some possibly empty); within a bucket,
/// indices are sorted ascending so execution order is deterministic.
pub fn partition_lpt(costs: &[u64], buckets: usize) -> Vec<Vec<usize>> {
    assert!(buckets > 0, "need at least one bucket");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    // Descending cost; ties broken by index for determinism.
    order.sort_by_key(|&i| (Reverse(costs[i]), i));
    // Min-heap of (load, bucket id).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..buckets).map(|b| Reverse((0u64, b))).collect();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); buckets];
    for i in order {
        let Reverse((load, b)) = heap.pop().expect("heap never empties");
        groups[b].push(i);
        heap.push(Reverse((load + costs[i].max(1), b)));
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    groups
}

/// The makespan (largest bucket load) of a partition.
pub fn makespan(costs: &[u64], groups: &[Vec<usize>]) -> u64 {
    groups
        .iter()
        .map(|g| g.iter().map(|&i| costs[i]).sum::<u64>())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let costs = [5, 3, 8, 1, 9, 2, 2];
        let groups = partition_lpt(&costs, 3);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn is_deterministic() {
        let costs: Vec<u64> = (0..50).map(|i| (i * 13 % 17) as u64 + 1).collect();
        assert_eq!(partition_lpt(&costs, 4), partition_lpt(&costs, 4));
    }

    #[test]
    fn balances_the_papers_category_skew() {
        // §IV-C.1: two heavy intermediate categories vs. two light ones.
        // Model: costs [1, 1, 30, 30] (source, dest, Ua, Ub) on 2 workers —
        // LPT must put the two heavy items on different workers.
        let costs = [1u64, 1, 30, 30];
        let groups = partition_lpt(&costs, 2);
        let spans: Vec<u64> = groups
            .iter()
            .map(|g| g.iter().map(|&i| costs[i]).sum())
            .collect();
        assert_eq!(
            spans.iter().max(),
            spans.iter().min(),
            "perfect split exists"
        );
    }

    #[test]
    fn single_bucket_is_everything() {
        let costs = [4u64, 2, 7];
        let groups = partition_lpt(&costs, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![0, 1, 2]);
    }

    #[test]
    fn more_buckets_than_items_leaves_empties() {
        let costs = [5u64, 5];
        let groups = partition_lpt(&costs, 4);
        let nonempty = groups.iter().filter(|g| !g.is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn empty_input() {
        let groups = partition_lpt(&[], 3);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(Vec::is_empty));
        assert_eq!(makespan(&[], &groups), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = partition_lpt(&[1], 0);
    }

    proptest! {
        /// LPT respects the classic 4/3 − 1/(3m) approximation bound
        /// against the trivial lower bounds (max item, mean load).
        #[test]
        fn prop_lpt_quality(
            costs in proptest::collection::vec(1u64..100, 1..60),
            buckets in 1usize..8,
        ) {
            let groups = partition_lpt(&costs, buckets);
            let span = makespan(&costs, &groups);
            let total: u64 = costs.iter().sum();
            let lower = (total as f64 / buckets as f64)
                .max(*costs.iter().max().unwrap() as f64);
            let bound = lower * (4.0 / 3.0) + 1.0;
            prop_assert!(span as f64 <= bound, "span {} exceeds LPT bound {}", span, bound);
            // Exact cover.
            let mut all: Vec<usize> = groups.concat();
            all.sort_unstable();
            prop_assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
        }
    }
}
