//! Splitting a thread budget between the batch and intra-solve axes.
//!
//! Before PR 6 `BatchSolver` pinned every inner solve to a single thread
//! and spent the whole budget on the batch axis. That is optimal when
//! items outnumber threads, but at paper scale (n = 64–100) a batch of a
//! handful of large solves leaves most threads idle. [`ThreadBudget`]
//! makes the trade explicit: the outer (batch) axis gets
//! `min(total, items)` workers and the inner (intra-solve) axis divides
//! the remainder, capped by the solve's own parallel width — the Betti
//! bound β₁ of its device graph (the paper's §III decomposition, computed
//! by `parma::betti` / partitioned by `mea_topology::partition`).
//!
//! The split is arithmetic on sizes only, so a given (budget, batch,
//! bound) triple always produces the same shape — scheduling never feeds
//! back into it.

/// A thread budget split between batch-level and intra-solve parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadBudget {
    /// Total threads available.
    pub total: usize,
    /// Workers on the batch (outer) axis.
    pub outer: usize,
    /// Threads per solve (inner axis) before any per-item cap.
    pub inner: usize,
}

impl ThreadBudget {
    /// Splits `total` threads over a batch of `items` solves: the outer
    /// axis is saturated first (`min(total, items)` — batch parallelism
    /// has no synchronization inside items), and whatever divides out
    /// evenly goes to the inner axis. Both axes are always ≥ 1.
    pub fn split(total: usize, items: usize) -> ThreadBudget {
        let total = total.max(1);
        let outer = total.min(items.max(1));
        let inner = (total / outer).max(1);
        ThreadBudget {
            total,
            outer,
            inner,
        }
    }

    /// The inner width after capping by a solve's own parallel bound
    /// (β₁ of its device graph). Always ≥ 1: a solve with no independent
    /// cycles still runs, sequentially.
    pub fn inner_capped(&self, bound: usize) -> usize {
        self.inner.min(bound.max(1))
    }
}

/// A thread budget carved between dataset ingestion (I/O) and compute —
/// the PR 8 companion to [`ThreadBudget`]: where `ThreadBudget` splits
/// compute between the batch and intra-solve axes, `IoBudget` first sets
/// aside the slots that keep the solve workers fed.
///
/// Like `ThreadBudget::split`, the carve is arithmetic on sizes only —
/// deterministic per total, never fed back from scheduling — so a given
/// budget always produces the same shape and thread placement cannot
/// change results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoBudget {
    /// Total threads available.
    pub total: usize,
    /// Dedicated ingest (prefetch + validate) threads.
    pub io: usize,
    /// Threads left for the compute pool.
    pub compute: usize,
}

impl IoBudget {
    /// Carves `total` threads: ingestion gets one slot per eight threads,
    /// clamped to [1, 2] — loading is mostly waiting on storage, so a
    /// thin I/O side keeps up with many solvers — and compute keeps the
    /// rest. Both sides are always ≥ 1: on a single-thread budget the
    /// two slots deliberately timeshare (the I/O thread blocks in read
    /// syscalls, so oversubscription there costs scheduling noise, not
    /// solve throughput).
    pub fn carve(total: usize) -> IoBudget {
        let total = total.max(1);
        let io = (total / 8).clamp(1, 2);
        let compute = (total - io).max(1);
        IoBudget { total, io, compute }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkStealingPool;
    use mea_linalg::{
        BipartiteFactor, BipartiteSystem, DenseMatrix, InverseScope, Parallelism, Sequential,
    };

    #[test]
    fn outer_axis_saturates_first() {
        // Many items: the historical shape — all threads on the batch.
        assert_eq!(
            ThreadBudget::split(4, 100),
            ThreadBudget {
                total: 4,
                outer: 4,
                inner: 1
            }
        );
        // Few large items: the remainder moves inside the solves.
        assert_eq!(
            ThreadBudget::split(8, 2),
            ThreadBudget {
                total: 8,
                outer: 2,
                inner: 4
            }
        );
        // Uneven division rounds the inner axis down.
        assert_eq!(
            ThreadBudget::split(7, 3),
            ThreadBudget {
                total: 7,
                outer: 3,
                inner: 2
            }
        );
        // Degenerate inputs clamp to one.
        assert_eq!(
            ThreadBudget::split(0, 0),
            ThreadBudget {
                total: 1,
                outer: 1,
                inner: 1
            }
        );
    }

    #[test]
    fn io_carve_is_deterministic_and_always_leaves_compute() {
        assert_eq!(
            IoBudget::carve(1),
            IoBudget {
                total: 1,
                io: 1,
                compute: 1
            },
            "a 1-thread budget timeshares"
        );
        assert_eq!(
            IoBudget::carve(4),
            IoBudget {
                total: 4,
                io: 1,
                compute: 3
            }
        );
        assert_eq!(
            IoBudget::carve(8),
            IoBudget {
                total: 8,
                io: 1,
                compute: 7
            }
        );
        assert_eq!(
            IoBudget::carve(16),
            IoBudget {
                total: 16,
                io: 2,
                compute: 14
            }
        );
        assert_eq!(
            IoBudget::carve(64),
            IoBudget {
                total: 64,
                io: 2,
                compute: 62
            },
            "the I/O side never grows past two slots"
        );
        assert_eq!(IoBudget::carve(0), IoBudget::carve(1), "degenerate clamps");
    }

    #[test]
    fn inner_width_is_capped_by_the_betti_bound() {
        let b = ThreadBudget::split(8, 2); // inner = 4
        assert_eq!(b.inner_capped(100), 4);
        assert_eq!(b.inner_capped(3), 3);
        assert_eq!(b.inner_capped(0), 1);
    }

    /// The intra-solve satellite's core contract: running the structured
    /// factorization over real work-stealing pools of 1/2/4 threads is
    /// bitwise identical to the sequential executor.
    #[test]
    fn pool_factorization_is_bitwise_identical_across_thread_counts() {
        let (m, n) = (24, 21);
        let mut sys = BipartiteSystem::new();
        sys.reset(m, n - 1);
        for i in 0..m {
            for j in 0..n {
                let g = 0.3 + ((i * 31 + j * 7) % 17) as f64 / 5.0;
                if j + 1 == n {
                    sys.add_ground(i, g);
                } else {
                    sys.add_cross(i, j, g);
                }
            }
        }
        let dim = sys.dim();
        let invert = |par: &dyn Parallelism| -> Vec<u64> {
            let mut out = DenseMatrix::zeros(dim, dim);
            BipartiteFactor::new()
                .factor_invert_into(&sys, &mut out, InverseScope::Full, par, None)
                .expect("SPD system must factor");
            out.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        let reference = invert(&Sequential);
        for threads in [1usize, 2, 4] {
            let pool = WorkStealingPool::new(threads);
            assert_eq!(
                invert(&pool),
                reference,
                "{threads}-thread pool must match Sequential bitwise"
            );
        }
    }
}
