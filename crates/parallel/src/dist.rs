//! The `parma-wire/v1` frame protocol for multi-process sharding.
//!
//! Everything that crosses a worker socket is one *frame*:
//!
//! ```text
//! magic "pW" (2) | version u16 LE (2) | kind u8 (1) | len u32 LE (4)
//! | payload (len) | checksum u64 LE (8)
//! ```
//!
//! The trailing checksum is FNV-1a-64 over every preceding byte of the
//! frame — header *and* payload — so a single flipped byte anywhere is
//! always detected: the per-byte FNV transition `h' = (h ⊕ b)·prime` is
//! injective (the prime is odd), the same argument `parma-bin/v1` makes
//! for dataset files. Fields ahead of the checksum get typed gates of
//! their own (bad magic, version mismatch, unknown kind, oversized
//! payload) so errors name the real problem instead of "checksum".
//!
//! Version negotiation is per-frame: every frame carries the writer's
//! protocol version and [`read_frame`] accepts the compatibility window
//! [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`], rejecting anything
//! newer (or older) before trusting a byte of the rest. v2 extended v1
//! by *appending* optional payload fields — trace context on `Assign`,
//! telemetry and clock probes on `Heartbeat`, solve timestamps on
//! `Result` — so a v2 reader handles a v1 frame by seeing the optional
//! tail absent (`PayloadReader::remaining() == 0`), and a frame from a
//! future v3 that might reshape payloads is still refused outright.
//!
//! This module is deliberately solver-agnostic: it knows frames, payload
//! primitives, the deterministic shard partition (delegating to
//! [`crate::mpi_sim::block_range`], so real runs shard exactly like the
//! simulated ranks) and the heartbeat policy. What the payloads *mean*
//! lives in `parma::dist`.

use crate::mpi_sim::block_range;
use std::io::{Read, Write};
use std::ops::Range;
use std::time::Duration;

/// The wire protocol version this build speaks (and writes).
pub const PROTOCOL_VERSION: u16 = 2;

/// The oldest protocol version this build still reads. v1 frames differ
/// from v2 only by the absence of the appended optional payload fields,
/// so they decode cleanly under the v2 payload parsers.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Leading frame magic (`"pW"` — parma wire).
pub const MAGIC: [u8; 2] = *b"pW";

/// Largest admissible payload (64 MiB) — a corrupt length field must not
/// make a reader try to allocate gigabytes.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// What a frame is for. The discriminants are the on-wire `kind` byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Worker → coordinator: registration (payload: worker name).
    Hello = 1,
    /// Coordinator → worker: registration accepted (payload: worker id).
    HelloAck = 2,
    /// Coordinator → worker: one shard of work.
    Assign = 3,
    /// Worker → coordinator: a finished shard's outcome.
    Result = 4,
    /// Worker → coordinator: liveness signal (empty payload).
    Heartbeat = 5,
    /// Coordinator → worker: drain and exit (empty payload).
    Shutdown = 6,
}

impl MsgKind {
    /// The kind for an on-wire byte, or `None` for an unknown value.
    pub fn from_u8(b: u8) -> Option<MsgKind> {
        match b {
            1 => Some(MsgKind::Hello),
            2 => Some(MsgKind::HelloAck),
            3 => Some(MsgKind::Assign),
            4 => Some(MsgKind::Result),
            5 => Some(MsgKind::Heartbeat),
            6 => Some(MsgKind::Shutdown),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is for.
    pub kind: MsgKind,
    /// The kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame failed to read. Every single-byte corruption of a valid
/// frame lands in exactly one of these — never a silently wrong frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes EOF mid-frame).
    Io(std::io::Error),
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version the peer sent.
        got: u16,
    },
    /// The kind byte names no known message.
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The trailing FNV-1a-64 did not match the received bytes.
    BadChecksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "wire i/o error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::VersionMismatch { got } => write!(
                f,
                "protocol version mismatch: peer speaks v{got}, this build reads \
                 v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}"
            ),
            FrameError::BadKind(b) => write!(f, "unknown frame kind {b}"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// FNV-1a-64 over raw bytes — the same hash the journal and `parma-bin`
/// use, so the single-byte-detection argument carries over verbatim.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes one frame at [`PROTOCOL_VERSION`].
pub fn write_frame<W: Write>(w: &mut W, kind: MsgKind, payload: &[u8]) -> std::io::Result<()> {
    write_frame_with_version(w, PROTOCOL_VERSION, kind, payload)
}

/// Writes one frame carrying an explicit version field — the negotiation
/// tests forge future versions through this; production traffic uses
/// [`write_frame`].
pub fn write_frame_with_version<W: Write>(
    w: &mut W,
    version: u16,
    kind: MsgKind,
    payload: &[u8],
) -> std::io::Result<()> {
    let bytes = encode_frame_with_version(version, kind, payload);
    w.write_all(&bytes)
}

/// The full byte image of one frame (header + payload + checksum).
pub fn encode_frame(kind: MsgKind, payload: &[u8]) -> Vec<u8> {
    encode_frame_with_version(PROTOCOL_VERSION, kind, payload)
}

fn encode_frame_with_version(version: u16, kind: MsgKind, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "payload of {} bytes exceeds the frame cap",
        payload.len()
    );
    let mut out = Vec::with_capacity(2 + 2 + 1 + 4 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Reads one frame, gate by gate: magic, version, kind, length cap,
/// payload, checksum. A blocking reader with a read timeout surfaces the
/// timeout as [`FrameError::Io`], which the coordinator treats as a
/// missed heartbeat deadline.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    if header[..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    let version = u16::from_le_bytes([header[2], header[3]]);
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(FrameError::VersionMismatch { got: version });
    }
    let kind = MsgKind::from_u8(header[4]).ok_or(FrameError::BadKind(header[4]))?;
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum_bytes = [0u8; 8];
    r.read_exact(&mut sum_bytes)?;
    let mut h = fnv1a64(&header);
    // Continue the running hash over the payload without re-hashing the
    // header (FNV is a plain fold).
    for &b in &payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if h != u64::from_le_bytes(sum_bytes) {
        return Err(FrameError::BadChecksum);
    }
    Ok(Frame { kind, payload })
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the announced field.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A discriminant byte named no known variant.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadUtf8 => write!(f, "payload string is not UTF-8"),
            DecodeError::BadTag(b) => write!(f, "unknown payload tag {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian payload builder. Each `put_*` has a matching
/// [`PayloadReader`] `take_*`; floats travel as raw IEEE-754 bits so
/// results survive the wire bit for bit.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        PayloadWriter::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over a received payload; every `take_*` checks bounds and
/// returns [`DecodeError::Truncated`] instead of panicking on short or
/// damaged payloads.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_u64()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::Truncated);
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| DecodeError::BadUtf8)
    }
}

/// The deterministic shard partition: shard `s` of `shards` owns
/// `block_range(n, shards, s)` — byte-for-byte the partition
/// [`crate::mpi_sim::simulate`] models, which is what makes a real
/// distributed run directly comparable to the simulated ranks and keeps
/// results stable under resharding (the *union* of shards is always
/// `0..n` in index order, whatever the shard count).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    (0..shards).map(|s| block_range(n, shards, s)).collect()
}

/// Heartbeat cadence and the deadline after which a silent worker is
/// declared dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatPolicy {
    /// How often a healthy worker sends [`MsgKind::Heartbeat`].
    pub interval: Duration,
    /// Silence longer than this marks the worker dead and returns its
    /// in-flight shards to the pending queue. Must exceed `interval` by
    /// enough margin that scheduler hiccups don't look like deaths.
    pub deadline: Duration,
}

impl Default for HeartbeatPolicy {
    fn default() -> Self {
        HeartbeatPolicy {
            interval: Duration::from_millis(200),
            deadline: Duration::from_millis(2_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let payload = b"shard 7 of 16".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgKind::Assign, &payload).unwrap();
        let frame = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(frame.kind, MsgKind::Assign);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn empty_payload_frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgKind::Heartbeat, &[]).unwrap();
        let frame = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(frame.kind, MsgKind::Heartbeat);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn back_to_back_frames_read_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgKind::Hello, b"w0").unwrap();
        write_frame(&mut buf, MsgKind::Heartbeat, &[]).unwrap();
        write_frame(&mut buf, MsgKind::Result, b"answer").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().kind, MsgKind::Hello);
        assert_eq!(read_frame(&mut r).unwrap().kind, MsgKind::Heartbeat);
        assert_eq!(read_frame(&mut r).unwrap().payload, b"answer");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn version_mismatch_is_rejected_before_anything_else() {
        let mut buf = Vec::new();
        write_frame_with_version(&mut buf, 3, MsgKind::Hello, b"future worker").unwrap();
        match read_frame(&mut &buf[..]) {
            Err(FrameError::VersionMismatch { got: 3 }) => {}
            other => panic!("expected a version rejection, got {other:?}"),
        }
    }

    #[test]
    fn v1_frames_still_read_under_v2() {
        let mut buf = Vec::new();
        write_frame_with_version(&mut buf, 1, MsgKind::Result, b"legacy shard").unwrap();
        let frame = read_frame(&mut &buf[..]).expect("v1 stays readable");
        assert_eq!(frame.kind, MsgKind::Result);
        assert_eq!(frame.payload, b"legacy shard");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        buf.push(MsgKind::Assign as u8);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::TooLarge(u32::MAX))
        ));
    }

    #[test]
    fn payload_primitives_round_trip() {
        let mut w = PayloadWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_0001)); // a NaN payload
        w.put_str("worker-3");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), 0x7FF8_0000_0000_0001);
        assert_eq!(r.take_str().unwrap(), "worker-3");
        assert_eq!(r.take_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.take_u8(), Err(DecodeError::Truncated));
    }

    #[test]
    fn short_payloads_decode_to_truncated_not_panic() {
        let mut w = PayloadWriter::new();
        w.put_str("only half of a record");
        let bytes = w.into_bytes();
        for len in 0..bytes.len() {
            let mut r = PayloadReader::new(&bytes[..len]);
            assert_eq!(r.take_str(), Err(DecodeError::Truncated), "prefix {len}");
        }
    }

    #[test]
    fn shard_ranges_tile_and_match_block_range() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 8), (97, 4), (0, 2)] {
            let ranges = shard_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let mut covered = Vec::new();
            for (s, r) in ranges.iter().enumerate() {
                assert_eq!(*r, block_range(n, p, s));
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} p={p}");
        }
    }

    #[test]
    fn heartbeat_default_gives_deadline_headroom() {
        let hb = HeartbeatPolicy::default();
        assert!(hb.deadline >= hb.interval * 4);
    }
}
