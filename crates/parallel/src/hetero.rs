//! Heterogeneous-cluster simulation — the paper's first future-work item
//! ("extend the proposed approach into a cluster of heterogeneous nodes").
//!
//! Ranks get individual speed factors; the naive block partition then
//! leaves fast ranks idle behind the slowest one, while a speed-weighted
//! contiguous partition (each rank's share ∝ its speed) restores the
//! balance. Both are simulated under the same α–β communication model as
//! the homogeneous case, so the benefit of speed-aware partitioning is
//! measurable.

use crate::mpi_sim::{block_range, ClusterModel, MpiSimReport};

/// A cluster whose ranks differ in compute speed.
#[derive(Clone, Debug)]
pub struct HeteroClusterModel {
    /// Topology and transports.
    pub base: ClusterModel,
    /// Speed multiplier per rank (1.0 = reference speed; 2.0 = twice as
    /// fast). Length defines the rank count.
    pub rank_speeds: Vec<f64>,
}

impl HeteroClusterModel {
    /// A cluster of `ranks` nodes whose speeds alternate between `fast`
    /// and `slow` — the classic mixed-generation machine room.
    pub fn mixed(base: ClusterModel, ranks: usize, fast: f64, slow: f64) -> Self {
        assert!(ranks > 0, "need at least one rank");
        assert!(fast > 0.0 && slow > 0.0, "speeds must be positive");
        let rank_speeds = (0..ranks)
            .map(|r| if r % 2 == 0 { fast } else { slow })
            .collect();
        HeteroClusterModel { base, rank_speeds }
    }

    /// Rank count.
    pub fn ranks(&self) -> usize {
        self.rank_speeds.len()
    }

    /// Validates speeds (positive, finite).
    fn validate(&self) {
        assert!(!self.rank_speeds.is_empty(), "need at least one rank");
        assert!(
            self.rank_speeds.iter().all(|s| *s > 0.0 && s.is_finite()),
            "rank speeds must be positive and finite"
        );
    }
}

/// Partition policy for heterogeneous runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeteroPartition {
    /// Speed-oblivious equal block partition (the homogeneous default).
    Naive,
    /// Contiguous blocks sized proportionally to each rank's speed.
    SpeedWeighted,
}

/// Contiguous speed-weighted partition: returns each rank's half-open
/// index range; block lengths are proportional to speeds (largest-
/// remainder rounding, every item assigned exactly once).
pub fn weighted_ranges(n: usize, speeds: &[f64]) -> Vec<std::ops::Range<usize>> {
    assert!(!speeds.is_empty(), "need at least one rank");
    let total: f64 = speeds.iter().sum();
    // Ideal fractional cut points, rounded monotonically.
    let mut cuts = Vec::with_capacity(speeds.len() + 1);
    cuts.push(0usize);
    let mut acc = 0.0;
    for (r, s) in speeds.iter().enumerate() {
        acc += s;
        let cut = if r + 1 == speeds.len() {
            n
        } else {
            ((acc / total) * n as f64).round() as usize
        };
        let prev = *cuts.last().unwrap();
        cuts.push(cut.clamp(prev, n));
    }
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Simulates a heterogeneous run over measured per-item `costs` (seconds
/// at reference speed). Communication is charged exactly as in the
/// homogeneous simulator.
pub fn simulate_hetero(
    model: &HeteroClusterModel,
    costs: &[f64],
    rounds: usize,
    bytes_per_round: usize,
    policy: HeteroPartition,
) -> MpiSimReport {
    model.validate();
    let ranks = model.ranks();
    let serial: f64 = costs.iter().sum();
    let p = ranks.min(costs.len()).max(1);
    let ranges: Vec<std::ops::Range<usize>> = match policy {
        HeteroPartition::Naive => (0..p).map(|r| block_range(costs.len(), p, r)).collect(),
        HeteroPartition::SpeedWeighted => weighted_ranges(costs.len(), &model.rank_speeds[..p]),
    };
    let compute = ranges
        .iter()
        .enumerate()
        .map(|(r, range)| {
            let work: f64 = costs[range.clone()].iter().sum();
            work / model.rank_speeds[r]
        })
        .fold(0.0f64, f64::max);
    let transport = model.base.transport_for(ranks);
    let comm = rounds as f64 * transport.allgather_time(bytes_per_round, ranks);
    MpiSimReport {
        ranks,
        compute_secs: compute,
        comm_secs: comm,
        total_secs: compute + comm,
        serial_secs: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_sim::simulate;

    fn base() -> ClusterModel {
        ClusterModel::paper_hpc()
    }

    #[test]
    fn uniform_speeds_match_homogeneous_simulation() {
        let costs = vec![1e-3; 1000];
        let model = HeteroClusterModel {
            base: base(),
            rank_speeds: vec![1.0; 16],
        };
        let hetero = simulate_hetero(&model, &costs, 10, 8000, HeteroPartition::Naive);
        let homo = simulate(&base(), 16, &costs, 10, 8000);
        assert!((hetero.total_secs - homo.total_secs).abs() < 1e-12);
    }

    #[test]
    fn weighted_ranges_tile_and_respect_speeds() {
        let speeds = [2.0, 1.0, 1.0];
        let ranges = weighted_ranges(100, &speeds);
        assert_eq!(ranges.len(), 3);
        // Exact tiling.
        let mut covered = Vec::new();
        for r in &ranges {
            covered.extend(r.clone());
        }
        assert_eq!(covered, (0..100).collect::<Vec<_>>());
        // Fast rank gets about half.
        assert!((ranges[0].len() as i64 - 50).abs() <= 1);
    }

    #[test]
    fn speed_weighting_beats_naive_on_mixed_cluster() {
        let costs = vec![1e-3; 4096];
        let model = HeteroClusterModel::mixed(base(), 8, 4.0, 1.0);
        let naive = simulate_hetero(&model, &costs, 0, 0, HeteroPartition::Naive);
        let weighted = simulate_hetero(&model, &costs, 0, 0, HeteroPartition::SpeedWeighted);
        // Naive is gated by the slow ranks carrying 1/8 of the work each;
        // weighted shrinks the makespan by ≈ the mean/slowest-speed ratio.
        assert!(
            weighted.compute_secs < naive.compute_secs * 0.5,
            "weighted {} vs naive {}",
            weighted.compute_secs,
            naive.compute_secs
        );
    }

    #[test]
    fn weighted_is_near_optimal_for_uniform_items() {
        let costs = vec![2e-4; 1000];
        let speeds = vec![3.0, 1.0, 2.0, 1.0];
        let model = HeteroClusterModel {
            base: base(),
            rank_speeds: speeds.clone(),
        };
        let rep = simulate_hetero(&model, &costs, 0, 0, HeteroPartition::SpeedWeighted);
        let total_work: f64 = costs.iter().sum();
        let ideal = total_work / speeds.iter().sum::<f64>();
        assert!(
            rep.compute_secs < ideal * 1.05,
            "weighted makespan {} must sit within 5% of ideal {}",
            rep.compute_secs,
            ideal
        );
    }

    #[test]
    fn mixed_constructor_alternates() {
        let m = HeteroClusterModel::mixed(base(), 4, 2.0, 0.5);
        assert_eq!(m.rank_speeds, vec![2.0, 0.5, 2.0, 0.5]);
        assert_eq!(m.ranks(), 4);
    }

    #[test]
    fn more_ranks_than_items_handled() {
        let costs = vec![1e-3; 3];
        let model = HeteroClusterModel {
            base: base(),
            rank_speeds: vec![1.0; 10],
        };
        let rep = simulate_hetero(&model, &costs, 0, 0, HeteroPartition::SpeedWeighted);
        assert!(rep.compute_secs >= 1e-3 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        let model = HeteroClusterModel {
            base: base(),
            rank_speeds: vec![1.0, 0.0],
        };
        let _ = simulate_hetero(&model, &[1.0], 0, 0, HeteroPartition::Naive);
    }
}
