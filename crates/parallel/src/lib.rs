//! Parallel execution strategies for Parma — the paper's §IV/§V taxonomy.
//!
//! The paper evaluates four ways to run the joint-constraint workload:
//!
//! * **Single-thread** — the serialized baseline of ref [15],
//! * **Parallel** — exactly four threads, one per constraint category
//!   (source / destination / `Ua` / `Ub`); bounded by the category skew,
//! * **Balanced Parallel** — deterministic work balancing across `k`
//!   threads (a static longest-processing-time partition, §IV-C.1),
//! * **PyMP-k** — fine-grained dynamic work sharing (§IV-C.2), which this
//!   crate provides twice: via a rayon pool ([`Strategy::FineGrained`]) and
//!   via our own crossbeam-deque work-stealing scheduler
//!   ([`Strategy::WorkStealing`]),
//!
//! plus MPI across nodes for Figure 10, reproduced here by the
//! deterministic rank simulator in [`mpi_sim`] (see DESIGN.md §2 for the
//! substitution argument).
//!
//! Work is expressed as a list of [`WorkItem`]s — index, category, cost
//! estimate — mapped through a caller-supplied function; results always
//! come back in item order regardless of strategy, which is what makes the
//! strategy-equivalence property tests possible.

pub mod balanced;
pub mod budget;
pub mod dist;
pub mod hetero;
pub mod metrics;
pub mod mpi_sim;
pub mod pool;
mod strategy;
pub mod supervise;

pub use balanced::partition_lpt;
pub use budget::{IoBudget, ThreadBudget};
pub use dist::{
    read_frame, shard_ranges, write_frame, Frame, FrameError, HeartbeatPolicy, MsgKind,
    PayloadReader, PayloadWriter, PROTOCOL_VERSION,
};
pub use hetero::{simulate_hetero, HeteroClusterModel, HeteroPartition};
pub use metrics::ExecutionReport;
pub use mpi_sim::{ClusterModel, CommModel, MpiSimReport};
pub use pool::{JobFailure, JobPanic, PoolStats, RunOutcome, WorkStealingPool, WorkerStats};
pub use strategy::{execute, execute_with_report, Strategy, WorkItem, CATEGORY_COUNT};
pub use supervise::{CancelToken, Interrupt};
