//! Execution reporting shared by the strategies and the figure harness.

use crate::pool::PoolStats;
use std::time::Duration;

/// Timing summary of one strategy execution.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// The strategy's display label (paper legend name).
    pub strategy_label: String,
    /// End-to-end wall-clock of the mapped workload.
    pub wall: Duration,
    /// Busy time per worker (length = worker count).
    pub per_worker_busy: Vec<Duration>,
    /// Items executed per worker (length = worker count; empty when the
    /// strategy cannot attribute items to workers).
    pub per_worker_items: Vec<usize>,
    /// Number of work items executed.
    pub items: usize,
    /// Full scheduler telemetry when the strategy ran on the work-stealing
    /// pool (steal counts, chunk layout); `None` for static strategies.
    pub scheduler: Option<PoolStats>,
}

impl ExecutionReport {
    /// Load-balance quality in [0, 1]: mean busy time over max busy time.
    /// 1.0 means perfectly even; meaningful only when more than one worker
    /// reported.
    pub fn balance(&self) -> f64 {
        if self.per_worker_busy.len() <= 1 {
            return 1.0;
        }
        let max = self
            .per_worker_busy
            .iter()
            .max()
            .copied()
            .unwrap_or_default();
        if max.is_zero() {
            return 1.0;
        }
        let mean: f64 = self
            .per_worker_busy
            .iter()
            .map(Duration::as_secs_f64)
            .sum::<f64>()
            / self.per_worker_busy.len() as f64;
        mean / max.as_secs_f64()
    }

    /// Items per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.items as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(busy_ms: &[u64], items: usize, wall_ms: u64) -> ExecutionReport {
        ExecutionReport {
            strategy_label: "test".into(),
            wall: Duration::from_millis(wall_ms),
            per_worker_busy: busy_ms.iter().map(|&m| Duration::from_millis(m)).collect(),
            per_worker_items: Vec::new(),
            items,
            scheduler: None,
        }
    }

    #[test]
    fn perfect_balance_is_one() {
        assert_eq!(report(&[10, 10, 10], 30, 12).balance(), 1.0);
    }

    #[test]
    fn skewed_balance_below_one() {
        let b = report(&[30, 10, 20], 60, 35).balance();
        assert!((b - 20.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn single_worker_balance_is_trivially_one() {
        assert_eq!(report(&[42], 10, 50).balance(), 1.0);
        assert_eq!(report(&[], 0, 0).balance(), 1.0);
    }

    #[test]
    fn zero_busy_times_do_not_divide_by_zero() {
        assert_eq!(report(&[0, 0], 5, 1).balance(), 1.0);
    }

    #[test]
    fn throughput_counts_items_per_second() {
        let r = report(&[10], 500, 250);
        assert!((r.throughput() - 2000.0).abs() < 1e-9);
        assert!(report(&[1], 3, 0).throughput().is_infinite());
    }
}
