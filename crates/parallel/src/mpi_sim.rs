//! A deterministic message-passing (MPI) simulator for the Figure-10
//! scalability experiment.
//!
//! The paper deploys Parma with mpi4py on a 58-node FDR-InfiniBand cluster
//! and scales to 1,024 processes. This reproduction has no cluster, so the
//! experiment is *simulated* (DESIGN.md §2): the real per-item compute
//! costs are measured on the host once, then ranks are modeled as a block
//! partition of the item list with a standard α–β communication model for
//! the per-iteration collective (recursive-doubling allgather:
//! `⌈log₂ p⌉·α + (p−1)/p·bytes/β`). What the figure cares about — the
//! strong-scaling *shape*, linear for big workloads and flat-to-adverse for
//! small ones — is a function of the compute/communication ratio, which
//! the model preserves.

use std::time::Instant;

/// An α–β point-to-point communication model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommModel {
    /// Per-message latency α, seconds.
    pub latency_secs: f64,
    /// Bandwidth, bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl CommModel {
    /// FDR InfiniBand (the paper's interconnect): ~0.7 µs latency,
    /// 56 Gbit/s ≈ 6.8 GB/s effective.
    pub fn fdr_infiniband() -> Self {
        CommModel {
            latency_secs: 0.7e-6,
            bandwidth_bytes_per_sec: 6.8e9,
        }
    }

    /// Shared-memory transport within one node: ~0.1 µs, ~20 GB/s.
    pub fn shared_memory() -> Self {
        CommModel {
            latency_secs: 0.1e-6,
            bandwidth_bytes_per_sec: 20e9,
        }
    }

    /// Time to move one message of `bytes`.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency_secs + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Recursive-doubling allgather across `p` ranks where the gathered
    /// payload totals `bytes`: `⌈log₂ p⌉·α + ((p−1)/p)·bytes/β`.
    pub fn allgather_time(&self, bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let steps = (p as f64).log2().ceil();
        steps * self.latency_secs
            + ((p - 1) as f64 / p as f64) * bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

/// The cluster the simulation models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterModel {
    /// Physical cores per node (32 on the paper's machines).
    pub cores_per_node: usize,
    /// Transport between nodes.
    pub inter_node: CommModel,
    /// Transport within one node.
    pub intra_node: CommModel,
}

impl ClusterModel {
    /// The paper's HPC test bed: 32-core nodes on FDR InfiniBand.
    pub fn paper_hpc() -> Self {
        ClusterModel {
            cores_per_node: 32,
            inter_node: CommModel::fdr_infiniband(),
            intra_node: CommModel::shared_memory(),
        }
    }

    /// The transport governing a `p`-rank job: shared memory while the job
    /// fits in one node, InfiniBand once it spills across nodes.
    pub fn transport_for(&self, ranks: usize) -> CommModel {
        if ranks <= self.cores_per_node {
            self.intra_node
        } else {
            self.inter_node
        }
    }
}

/// Outcome of one simulated run.
#[derive(Clone, Copy, Debug)]
pub struct MpiSimReport {
    /// Rank count `p`.
    pub ranks: usize,
    /// Slowest rank's compute share, seconds.
    pub compute_secs: f64,
    /// Total communication charge, seconds.
    pub comm_secs: f64,
    /// Simulated wall clock (`compute + comm`).
    pub total_secs: f64,
    /// Single-rank time (the sum of all item costs).
    pub serial_secs: f64,
}

impl MpiSimReport {
    /// Strong-scaling speedup `T₁ / T_p`.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.total_secs
    }

    /// Parallel efficiency `speedup / p`.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.ranks as f64
    }
}

/// Block partition of `n` items over `p` ranks: rank `r` gets the
/// half-open index range `block_range(n, p, r)` — the standard MPI
/// decomposition (remainder spread over the first ranks).
pub fn block_range(n: usize, p: usize, r: usize) -> std::ops::Range<usize> {
    assert!(r < p, "rank out of range");
    let base = n / p;
    let rem = n % p;
    let start = r * base + r.min(rem);
    let len = base + usize::from(r < rem);
    start..start + len
}

/// Simulates a `p`-rank run over items with measured `costs` (seconds per
/// item), with `rounds` collective-synchronization rounds each moving
/// `bytes_per_round` through an allgather.
pub fn simulate(
    cluster: &ClusterModel,
    ranks: usize,
    costs: &[f64],
    rounds: usize,
    bytes_per_round: usize,
) -> MpiSimReport {
    assert!(ranks > 0, "need at least one rank");
    let serial: f64 = costs.iter().sum();
    let p = ranks.min(costs.len()).max(1);
    let compute = (0..p)
        .map(|r| {
            block_range(costs.len(), p, r)
                .map(|i| costs[i])
                .sum::<f64>()
        })
        .fold(0.0f64, f64::max);
    let transport = cluster.transport_for(ranks);
    let comm = rounds as f64 * transport.allgather_time(bytes_per_round, ranks);
    MpiSimReport {
        ranks,
        compute_secs: compute,
        comm_secs: comm,
        total_secs: compute + comm,
        serial_secs: serial,
    }
}

/// Measures real per-item costs by executing `f` on the current thread.
/// Each item is timed three times and the *minimum* kept — single-shot
/// timings are easily inflated by scheduler hiccups, and one inflated item
/// pins its whole rank in the block partition. The measured vector then
/// drives [`simulate`] across any rank count without re-running the
/// workload.
pub fn measure_costs<F: FnMut(usize)>(n: usize, mut f: F) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                f(i);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_tile_the_index_space() {
        for (n, p) in [(10, 3), (7, 7), (5, 8), (1000, 32), (0, 4)] {
            let p_eff = p;
            let mut covered = Vec::new();
            for r in 0..p_eff {
                covered.extend(block_range(n, p_eff, r));
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} p={p}");
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        for r in 0..32 {
            let len = block_range(1000, 32, r).len();
            assert!(len == 31 || len == 32);
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn block_range_checks_rank() {
        let _ = block_range(10, 2, 2);
    }

    #[test]
    fn allgather_time_grows_logarithmically_in_latency() {
        let c = CommModel {
            latency_secs: 1.0,
            bandwidth_bytes_per_sec: f64::INFINITY,
        };
        assert_eq!(c.allgather_time(1000, 1), 0.0);
        assert_eq!(c.allgather_time(1000, 2), 1.0);
        assert_eq!(c.allgather_time(1000, 8), 3.0);
        assert_eq!(c.allgather_time(1000, 1024), 10.0);
    }

    #[test]
    fn message_time_combines_latency_and_bandwidth() {
        let c = CommModel {
            latency_secs: 2.0,
            bandwidth_bytes_per_sec: 10.0,
        };
        assert_eq!(c.message_time(50), 7.0);
    }

    #[test]
    fn big_workload_scales_nearly_linearly() {
        // 10,000 uniform 1 ms items (the ≥ 50×50 regime of Figure 10).
        let cluster = ClusterModel::paper_hpc();
        let costs = vec![1e-3; 10_000];
        for &p in &[2usize, 8, 32, 128, 1024] {
            let rep = simulate(&cluster, p, &costs, 20, 8 * 10_000);
            let eff = rep.efficiency();
            assert!(eff > 0.9, "p = {p}: efficiency {eff} must stay near 1");
        }
    }

    #[test]
    fn tiny_workload_stops_scaling() {
        // 100 items of 1 µs (the 10×10 regime): inter-node parallelism
        // cannot help, matching the paper's "intra-node is recommended".
        let cluster = ClusterModel::paper_hpc();
        let costs = vec![1e-6; 100];
        let small = simulate(&cluster, 32, &costs, 20, 8 * 100);
        let large = simulate(&cluster, 1024, &costs, 20, 8 * 100);
        assert!(
            large.speedup() < small.speedup(),
            "scaling past one node must hurt a tiny workload: {} vs {}",
            large.speedup(),
            small.speedup()
        );
    }

    #[test]
    fn serial_time_is_cost_sum_and_p1_has_no_comm() {
        let cluster = ClusterModel::paper_hpc();
        let costs = vec![0.5, 0.25, 0.25];
        let rep = simulate(&cluster, 1, &costs, 100, 1 << 20);
        assert!((rep.serial_secs - 1.0).abs() < 1e-12);
        assert_eq!(rep.comm_secs, 0.0);
        assert!((rep.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_ranks_than_items_is_capped() {
        let cluster = ClusterModel::paper_hpc();
        let costs = vec![1e-3; 4];
        let rep = simulate(&cluster, 64, &costs, 0, 0);
        // Compute cannot drop below one item's cost.
        assert!(rep.compute_secs >= 1e-3 - 1e-12);
    }

    #[test]
    fn transport_switches_at_node_boundary() {
        let cluster = ClusterModel::paper_hpc();
        assert_eq!(cluster.transport_for(32), cluster.intra_node);
        assert_eq!(cluster.transport_for(33), cluster.inter_node);
    }

    #[test]
    fn measure_costs_returns_positive_durations() {
        let costs = measure_costs(5, |i| {
            std::hint::black_box((0..100 * (i + 1)).sum::<usize>());
        });
        assert_eq!(costs.len(), 5);
        assert!(costs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn skewed_costs_bound_compute_by_heaviest_block() {
        let cluster = ClusterModel::paper_hpc();
        let mut costs = vec![1e-4; 100];
        costs[0] = 1.0; // one pathological item
        let rep = simulate(&cluster, 10, &costs, 0, 0);
        assert!(rep.compute_secs >= 1.0, "the heavy item pins its rank");
        assert!(rep.speedup() < 2.0);
    }
}
