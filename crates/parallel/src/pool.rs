//! A work-stealing scheduler built on crossbeam-deque.
//!
//! This is the crate's own fine-grained engine (the alternative to rayon
//! for the PyMP-k role): a fixed set of workers, a global injector seeded
//! with index *ranges* (chunks), per-worker LIFO deques and random-victim
//! stealing. Because the task set is closed (tasks never spawn tasks),
//! termination is a simple completed-items counter.
//!
//! Results are written into pre-allocated slots through a `Sync` unsafe
//! cell; safety rests on the scheduler's exactly-once dispatch of each
//! index, which the tests pound on.

use crossbeam_deque::{Injector, Stealer, Worker};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Write-once result slots shared across workers.
///
/// # Safety contract
/// Each index is written at most once, by the single worker that claimed
/// it from the scheduler, and only read after every worker has joined.
struct Slots<T> {
    data: Vec<UnsafeCell<MaybeUninit<T>>>,
}

// SAFETY: concurrent access is to *disjoint* indices (exactly-once
// dispatch), so sharing the container across threads is sound for any
// Send payload.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots { data: (0..n).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect() }
    }

    /// # Safety
    /// `i` must be claimed exactly once across all workers.
    unsafe fn write(&self, i: usize, value: T) {
        (*self.data[i].get()).write(value);
    }

    /// # Safety
    /// Every slot must have been written and all workers joined.
    unsafe fn into_vec(self) -> Vec<T> {
        self.data
            .into_iter()
            .map(|cell| cell.into_inner().assume_init())
            .collect()
    }
}

/// A fixed-width work-stealing pool for index-space maps.
pub struct WorkStealingPool {
    threads: usize,
    last_busy: Mutex<Vec<Duration>>,
}

impl WorkStealingPool {
    /// A pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        WorkStealingPool { threads: threads.max(1), last_busy: Mutex::new(Vec::new()) }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-worker busy durations of the most recent [`Self::map_indexed`].
    pub fn last_busy_times(&self) -> Vec<Duration> {
        self.last_busy.lock().clone()
    }

    /// Computes `f(i)` for every `i in 0..n` with dynamic load balancing;
    /// results are returned in index order.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            *self.last_busy.lock() = vec![Duration::ZERO; self.threads];
            return Vec::new();
        }
        let slots = Slots::new(n);
        let injector: Injector<(usize, usize)> = Injector::new();
        // Chunk the index space: big enough to amortize queue traffic,
        // small enough that stealing can still balance (≥ 4 chunks per
        // worker when possible).
        let chunk = (n / (self.threads * 8)).max(1);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            injector.push((start, end));
            start = end;
        }
        let completed = AtomicUsize::new(0);
        let workers: Vec<Worker<(usize, usize)>> =
            (0..self.threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<(usize, usize)>> =
            workers.iter().map(Worker::stealer).collect();
        let mut busy = vec![Duration::ZERO; self.threads];
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(me, local)| {
                    let injector = &injector;
                    let stealers = &stealers;
                    let completed = &completed;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut done_here = 0usize;
                        loop {
                            let task = local.pop().or_else(|| {
                                // Refill from the injector, then raid peers.
                                std::iter::repeat_with(|| {
                                    injector.steal_batch_and_pop(&local).or_else(|| {
                                        stealers
                                            .iter()
                                            .enumerate()
                                            .filter(|(other, _)| *other != me)
                                            .map(|(_, s)| s.steal())
                                            .collect()
                                    })
                                })
                                .find(|s| !s.is_retry())
                                .and_then(|s| s.success())
                            });
                            match task {
                                Some((lo, hi)) => {
                                    for i in lo..hi {
                                        let value = f(i);
                                        // SAFETY: index i belongs to a chunk
                                        // claimed exactly once from the
                                        // scheduler.
                                        unsafe { slots.write(i, value) };
                                    }
                                    done_here += hi - lo;
                                    completed.fetch_add(hi - lo, Ordering::Release);
                                }
                                None => {
                                    if completed.load(Ordering::Acquire) >= n {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        (t0.elapsed(), done_here)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                let (elapsed, _count) = h.join().expect("work-stealing worker panicked");
                busy[w] = elapsed;
            }
        });
        debug_assert_eq!(completed.load(Ordering::Acquire), n);
        *self.last_busy.lock() = busy;
        // SAFETY: the completed counter reached n, so every slot was
        // written exactly once, and all workers have joined.
        unsafe { slots.into_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_index_order() {
        let pool = WorkStealingPool::new(4);
        let out = pool.map_indexed(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkStealingPool::new(3);
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        let _ = pool.map_indexed(512, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} ran a wrong number of times");
        }
    }

    #[test]
    fn empty_and_tiny_workloads() {
        let pool = WorkStealingPool::new(8);
        let empty: Vec<usize> = pool.map_indexed(0, |i| i);
        assert!(empty.is_empty());
        let one = pool.map_indexed(1, |i| i + 41);
        assert_eq!(one, vec![41]);
        assert_eq!(pool.last_busy_times().len(), 8);
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkStealingPool::new(16);
        let out = pool.map_indexed(5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unbalanced_items_all_complete() {
        // Skewed costs: item 0 is 1000× heavier; stealing must still finish
        // everything.
        let pool = WorkStealingPool::new(2);
        let out = pool.map_indexed(64, |i| {
            let reps = if i == 0 { 100_000 } else { 100 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_thread_request_becomes_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.map_indexed(10, |i| i);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn non_copy_payloads_survive() {
        let pool = WorkStealingPool::new(4);
        let out = pool.map_indexed(100, |i| format!("value-{i}"));
        assert_eq!(out[99], "value-99");
        assert_eq!(out[0], "value-0");
    }

    #[test]
    fn busy_times_reported_per_worker() {
        let pool = WorkStealingPool::new(3);
        let _ = pool.map_indexed(300, |i| {
            std::hint::black_box((0..200).fold(i as u64, |a, b| a.wrapping_add(b)))
        });
        let busy = pool.last_busy_times();
        assert_eq!(busy.len(), 3);
    }
}
