//! A work-stealing scheduler built on std primitives only.
//!
//! This is the crate's own fine-grained engine (the PyMP-k role): a fixed
//! set of workers, a global injector seeded with index *ranges* (chunks),
//! per-worker LIFO deques and round-robin victim stealing. Because the
//! task set is closed (tasks never spawn tasks), termination is a simple
//! completed-items counter.
//!
//! Mutex-guarded `VecDeque`s stand in for lock-free deques; chunking keeps
//! queue traffic far off the hot path (one lock round-trip per chunk, not
//! per item), so the scheduler stays competitive while the workspace stays
//! dependency-free.
//!
//! # Panic isolation
//!
//! Every job runs under `catch_unwind`: a panicking job poisons only its
//! own result slot, never the worker, the pool, or the other jobs. Results
//! are written into pre-allocated slots through a `Sync` unsafe cell, and
//! each slot carries an atomic written flag — [`Slots::into_options`] reads
//! a slot only when its flag is set, so a poisoned (never-written) slot
//! yields `None` instead of uninitialized memory. [`WorkStealingPool::run`]
//! surfaces the per-slot outcomes plus a [`JobPanic`] record per poisoned
//! slot; [`WorkStealingPool::map_indexed`] keeps the infallible signature
//! and re-raises an aggregate panic when any job failed.
//!
//! Every run also records [`PoolStats`] — per-worker busy time, item,
//! steal and panic counts, and the chunk layout — which the observability
//! layer (`mea-obs`, wired in by `parma`) surfaces in machine-readable
//! traces.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Write-once result slots shared across workers, with per-slot completion
/// tracking.
///
/// # Safety contract
/// Each index is *written* at most once, by the single worker that claimed
/// it from the scheduler. A slot whose job panicked is simply never
/// written: its flag stays `false` and it is **poisoned**, not
/// uninitialized-but-readable. Reading back through [`Self::into_options`]
/// consults the flags, so the read side is safe by construction — there is
/// no code path that `assume_init`s an unwritten slot.
pub(crate) struct Slots<T> {
    data: Vec<UnsafeCell<MaybeUninit<T>>>,
    written: Vec<AtomicBool>,
}

// SAFETY: concurrent access is to *disjoint* indices (exactly-once
// dispatch), so sharing the container across threads is sound for any
// Send payload.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    pub(crate) fn new(n: usize) -> Self {
        Slots {
            data: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            written: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// # Safety
    /// `i` must be claimed exactly once across all workers.
    pub(crate) unsafe fn write(&self, i: usize, value: T) {
        (*self.data[i].get()).write(value);
        // Release pairs with the exclusive &mut access in `into_options`
        // (established by thread join) and marks the slot readable.
        self.written[i].store(true, Ordering::Release);
    }

    /// Moves every *written* slot out; poisoned slots come back as `None`.
    /// Safe for any flag state — requires only that all workers have
    /// stopped touching the slots (guaranteed by `thread::scope` join
    /// before the pool calls this).
    pub(crate) fn into_options(mut self) -> Vec<Option<T>> {
        let data = std::mem::take(&mut self.data);
        let written = std::mem::take(&mut self.written);
        data.into_iter()
            .zip(written)
            .map(|(cell, flag)| {
                if flag.into_inner() {
                    // SAFETY: the flag was set by the unique writer *after*
                    // initializing the cell, and all writers have joined.
                    Some(unsafe { cell.into_inner().assume_init() })
                } else {
                    None
                }
            })
            .collect()
    }
}

impl<T> Drop for Slots<T> {
    fn drop(&mut self) {
        // Normally empty (into_options took the vectors); on an abandoned
        // container, drop exactly the initialized slots.
        for (cell, flag) in self.data.iter_mut().zip(self.written.iter_mut()) {
            if *flag.get_mut() {
                // SAFETY: the flag marks this slot initialized and we hold
                // exclusive access.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

/// One job that panicked during a pool run.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// The index the job was computing.
    pub index: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim,
    /// anything else a placeholder).
    pub message: String,
}

/// Aggregate failure of a pool run: at least one job panicked.
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Every panicking job, in index order.
    pub panics: Vec<JobPanic>,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self
            .panics
            .first()
            .map(|p| format!(" (first: index {}: {})", p.index, p.message))
            .unwrap_or_default();
        write!(f, "{} job(s) panicked{first}", self.panics.len())
    }
}

impl std::error::Error for JobFailure {}

/// Outcome of one [`WorkStealingPool::run`]: per-index results with
/// poisoned slots explicit, plus the panic records.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// `results[i]` is `Some` iff job `i` completed; `None` means its job
    /// panicked (a matching entry exists in [`Self::panics`]).
    pub results: Vec<Option<T>>,
    /// Every panicking job, in index order.
    pub panics: Vec<JobPanic>,
}

impl<T> RunOutcome<T> {
    /// All-or-nothing view: the full result vector, or the failure record.
    pub fn into_result(self) -> Result<Vec<T>, JobFailure> {
        if self.panics.is_empty() {
            Ok(self
                .results
                .into_iter()
                .map(|r| r.expect("no panics recorded, so every slot was written"))
                .collect())
        } else {
            Err(JobFailure {
                panics: self.panics,
            })
        }
    }
}

/// Stringifies a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-worker activity of one scheduler run.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Wall time the worker spent inside the run (spawn to exit).
    pub busy: Duration,
    /// Items this worker executed (including ones that panicked).
    pub items: usize,
    /// Chunks this worker obtained by raiding a peer's deque.
    pub steals: usize,
    /// Items whose job panicked on this worker.
    pub panics: usize,
}

/// Scheduler-level telemetry of one `map_indexed`/`run` call.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// One entry per worker.
    pub workers: Vec<WorkerStats>,
    /// Number of chunks the index space was split into.
    pub chunks: usize,
    /// Items per chunk (the last chunk may be smaller).
    pub chunk_size: usize,
    /// Total items mapped.
    pub items: usize,
    /// Items whose job panicked (their slots are poisoned).
    pub panics: usize,
}

impl PoolStats {
    /// Total successful steals across workers.
    pub fn total_steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

/// A fixed-width work-stealing pool for index-space maps.
pub struct WorkStealingPool {
    threads: usize,
    last_busy: Mutex<Vec<Duration>>,
    last_stats: Mutex<PoolStats>,
}

impl WorkStealingPool {
    /// A pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        WorkStealingPool {
            threads: threads.max(1),
            last_busy: Mutex::new(Vec::new()),
            last_stats: Mutex::new(PoolStats::default()),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-worker busy durations of the most recent run.
    pub fn last_busy_times(&self) -> Vec<Duration> {
        self.last_busy.lock().expect("pool mutex poisoned").clone()
    }

    /// Full scheduler telemetry of the most recent run.
    pub fn last_stats(&self) -> PoolStats {
        self.last_stats.lock().expect("pool mutex poisoned").clone()
    }

    /// Computes `f(i)` for every `i in 0..n` with dynamic load balancing;
    /// results are returned in index order.
    ///
    /// Infallible signature for closed workloads: if any job panics, the
    /// panic is re-raised here as one aggregate panic *after* every other
    /// job has finished — the pool itself never propagates the unwind
    /// through a worker, so no slot is ever read uninitialized. Callers
    /// that want panics as data use [`Self::run`].
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run(n, f)
            .into_result()
            .unwrap_or_else(|failure| panic!("work-stealing pool: {failure}"))
    }

    /// Like [`Self::map_indexed`], but panic-isolating: every job runs
    /// under `catch_unwind`, poisoned slots come back as `None`, and the
    /// outcome carries one [`JobPanic`] per failed job. The healthy jobs
    /// always complete regardless of how many of their neighbors panic.
    pub fn run<T, F>(&self, n: usize, f: F) -> RunOutcome<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            *self.last_busy.lock().expect("pool mutex poisoned") =
                vec![Duration::ZERO; self.threads];
            *self.last_stats.lock().expect("pool mutex poisoned") = PoolStats {
                workers: vec![WorkerStats::default(); self.threads],
                ..PoolStats::default()
            };
            return RunOutcome {
                results: Vec::new(),
                panics: Vec::new(),
            };
        }
        let slots = Slots::new(n);
        let panics: Mutex<Vec<JobPanic>> = Mutex::new(Vec::new());
        // Chunk the index space: big enough to amortize queue traffic,
        // small enough that stealing can still balance (≥ 8 chunks per
        // worker when possible).
        let chunk = (n / (self.threads * 8)).max(1);
        let mut injector: VecDeque<(usize, usize)> = VecDeque::new();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            injector.push_back((start, end));
            start = end;
        }
        let chunks = injector.len();
        let injector = Mutex::new(injector);
        let deques: Vec<Mutex<VecDeque<(usize, usize)>>> = (0..self.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let completed = AtomicUsize::new(0);
        let mut stats = vec![WorkerStats::default(); self.threads];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|me| {
                    let injector = &injector;
                    let deques = &deques;
                    let completed = &completed;
                    let slots = &slots;
                    let panics = &panics;
                    let f = &f;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut local = WorkerStats::default();
                        loop {
                            let task = pop_local(&deques[me])
                                .or_else(|| refill_from_injector(injector, &deques[me]))
                                .or_else(|| {
                                    steal_from_peers(deques, me).inspect(|_| {
                                        local.steals += 1;
                                        mea_obs::events::emit_for(
                                            mea_obs::events::EventKind::Steal,
                                            mea_obs::events::NO_ITEM,
                                            me as u64,
                                            0.0,
                                        );
                                    })
                                });
                            match task {
                                Some((lo, hi)) => {
                                    for i in lo..hi {
                                        // AssertUnwindSafe: on unwind the
                                        // slot is simply never written
                                        // (stays poisoned) and `f`'s
                                        // captures are only re-observed by
                                        // jobs the caller already expects
                                        // to share state with f.
                                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                            Ok(value) => {
                                                // SAFETY: index i belongs to
                                                // a chunk claimed exactly
                                                // once from the scheduler.
                                                unsafe { slots.write(i, value) };
                                            }
                                            Err(payload) => {
                                                local.panics += 1;
                                                panics.lock().expect("panic log poisoned").push(
                                                    JobPanic {
                                                        index: i,
                                                        message: panic_message(payload),
                                                    },
                                                );
                                            }
                                        }
                                    }
                                    local.items += hi - lo;
                                    completed.fetch_add(hi - lo, Ordering::Release);
                                }
                                None => {
                                    if completed.load(Ordering::Acquire) >= n {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        local.busy = t0.elapsed();
                        local
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                stats[w] = h.join().expect("work-stealing worker panicked");
            }
        });
        debug_assert_eq!(completed.load(Ordering::Acquire), n);
        let mut panics = panics.into_inner().expect("panic log poisoned");
        panics.sort_by_key(|p| p.index);
        *self.last_busy.lock().expect("pool mutex poisoned") =
            stats.iter().map(|s| s.busy).collect();
        *self.last_stats.lock().expect("pool mutex poisoned") = PoolStats {
            workers: stats,
            chunks,
            chunk_size: chunk,
            items: n,
            panics: panics.len(),
        };
        if mea_obs::is_active() {
            let last = self.last_stats.lock().expect("pool mutex poisoned");
            mea_obs::gauge_set("parallel.pool.threads", self.threads as f64);
            mea_obs::gauge_set("parallel.pool.last_items", last.items as f64);
            mea_obs::gauge_set("parallel.pool.last_chunks", last.chunks as f64);
            mea_obs::gauge_set("parallel.pool.last_steals", last.total_steals() as f64);
            mea_obs::counter_add("parallel.pool.runs", 1);
            mea_obs::counter_add("parallel.pool.items", last.items as u64);
            mea_obs::counter_add("parallel.pool.steals", last.total_steals() as u64);
            mea_obs::counter_add("parallel.pool.panics", last.panics as u64);
        }
        // Safe by construction: poisoned slots surface as None.
        RunOutcome {
            results: slots.into_options(),
            panics,
        }
    }
}

/// LIFO pop from the worker's own deque (depth-first on its own work).
fn pop_local(deque: &Mutex<VecDeque<(usize, usize)>>) -> Option<(usize, usize)> {
    deque.lock().expect("worker deque poisoned").pop_back()
}

/// Moves a batch of chunks from the injector into the local deque and
/// returns the first.
fn refill_from_injector(
    injector: &Mutex<VecDeque<(usize, usize)>>,
    local: &Mutex<VecDeque<(usize, usize)>>,
) -> Option<(usize, usize)> {
    let mut inj = injector.lock().expect("injector poisoned");
    let first = inj.pop_front()?;
    // Take up to three more in one lock round-trip; the batch keeps the
    // injector from becoming a convoy under many workers.
    let extra: Vec<_> = (0..3).filter_map(|_| inj.pop_front()).collect();
    drop(inj);
    if !extra.is_empty() {
        local.lock().expect("worker deque poisoned").extend(extra);
    }
    Some(first)
}

/// FIFO-steals one chunk from the first non-empty peer after `me`.
fn steal_from_peers(
    deques: &[Mutex<VecDeque<(usize, usize)>>],
    me: usize,
) -> Option<(usize, usize)> {
    let k = deques.len();
    for off in 1..k {
        let victim = (me + off) % k;
        if let Some(task) = deques[victim]
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
        {
            return Some(task);
        }
    }
    None
}

/// Dynamic self-scheduling map over `0..n` on `threads` workers: each
/// worker claims the next chunk from a shared atomic cursor (the classic
/// PyMP/OpenMP `schedule(dynamic)` loop). Returns results in index order
/// plus per-worker activity. Jobs run under the same `catch_unwind`
/// isolation as the work-stealing engine (no slot is ever read
/// uninitialized); a job panic is re-raised as one aggregate panic after
/// the sweep drains.
pub(crate) fn self_scheduling_map<T, F>(
    threads: usize,
    n: usize,
    f: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    if n == 0 {
        return (Vec::new(), vec![WorkerStats::default(); threads]);
    }
    let chunk = (n / (threads * 8)).max(1);
    let slots = Slots::new(n);
    let panics: Mutex<Vec<JobPanic>> = Mutex::new(Vec::new());
    let cursor = AtomicUsize::new(0);
    let mut stats = vec![WorkerStats::default(); threads];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let slots = &slots;
                let panics = &panics;
                let f = &f;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let mut local = WorkerStats::default();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for i in lo..hi {
                            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                Ok(value) => {
                                    // SAFETY: the atomic cursor hands out
                                    // each index exactly once.
                                    unsafe { slots.write(i, value) };
                                }
                                Err(payload) => {
                                    local.panics += 1;
                                    panics.lock().expect("panic log poisoned").push(JobPanic {
                                        index: i,
                                        message: panic_message(payload),
                                    });
                                }
                            }
                        }
                        local.items += hi - lo;
                    }
                    local.busy = t0.elapsed();
                    local
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            stats[w] = h.join().expect("self-scheduling worker panicked");
        }
    });
    let mut panics = panics.into_inner().expect("panic log poisoned");
    if !panics.is_empty() {
        panics.sort_by_key(|p| p.index);
        let failure = JobFailure { panics };
        panic!("self-scheduling map: {failure}");
    }
    let out = slots
        .into_options()
        .into_iter()
        .map(|v| v.expect("no panics recorded, so every slot was written"))
        .collect();
    (out, stats)
}

/// The pool as a `mea-linalg` intra-solve executor: the structured
/// factorization stages hand their fixed row-chunk partitions here. The
/// kernels' partition is thread-count-independent and their outputs are
/// disjoint, so stealing order cannot change bits — only wall time.
impl mea_linalg::Parallelism for WorkStealingPool {
    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.threads == 1 {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        let _: Vec<()> = self.map_indexed(tasks, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Silences the default panic-hook stderr spam for tests that inject
    /// panics on purpose; restores the previous hook on drop. Tests using
    /// it serialize on a lock so a concurrent test's real panic message is
    /// never swallowed.
    struct QuietPanics(Option<std::sync::MutexGuard<'static, ()>>);

    impl QuietPanics {
        fn new() -> Self {
            static LOCK: Mutex<()> = Mutex::new(());
            let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            std::panic::set_hook(Box::new(|_| {}));
            QuietPanics(Some(guard))
        }
    }

    impl Drop for QuietPanics {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
            self.0.take();
        }
    }

    #[test]
    fn maps_in_index_order() {
        let pool = WorkStealingPool::new(4);
        let out = pool.map_indexed(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkStealingPool::new(3);
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        let _ = pool.map_indexed(512, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "index {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn empty_and_tiny_workloads() {
        let pool = WorkStealingPool::new(8);
        let empty: Vec<usize> = pool.map_indexed(0, |i| i);
        assert!(empty.is_empty());
        let one = pool.map_indexed(1, |i| i + 41);
        assert_eq!(one, vec![41]);
        assert_eq!(pool.last_busy_times().len(), 8);
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkStealingPool::new(16);
        let out = pool.map_indexed(5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unbalanced_items_all_complete() {
        // Skewed costs: item 0 is 1000× heavier; stealing must still finish
        // everything.
        let pool = WorkStealingPool::new(2);
        let out = pool.map_indexed(64, |i| {
            let reps = if i == 0 { 100_000 } else { 100 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_thread_request_becomes_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.map_indexed(10, |i| i);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn non_copy_payloads_survive() {
        let pool = WorkStealingPool::new(4);
        let out = pool.map_indexed(100, |i| format!("value-{i}"));
        assert_eq!(out[99], "value-99");
        assert_eq!(out[0], "value-0");
    }

    #[test]
    fn busy_times_reported_per_worker() {
        let pool = WorkStealingPool::new(3);
        let _ = pool.map_indexed(300, |i| {
            std::hint::black_box((0..200).fold(i as u64, |a, b| a.wrapping_add(b)))
        });
        let busy = pool.last_busy_times();
        assert_eq!(busy.len(), 3);
    }

    #[test]
    fn stats_account_for_every_item() {
        let pool = WorkStealingPool::new(4);
        let _ = pool.map_indexed(777, |i| i);
        let stats = pool.last_stats();
        assert_eq!(stats.items, 777);
        assert_eq!(stats.workers.len(), 4);
        assert_eq!(stats.panics, 0);
        let executed: usize = stats.workers.iter().map(|w| w.items).sum();
        assert_eq!(
            executed, 777,
            "per-worker item counts must sum to the total"
        );
        assert!(stats.chunks >= 1 && stats.chunk_size >= 1);
        assert!(stats.chunks >= stats.items / stats.chunk_size);
    }

    #[test]
    fn empty_run_resets_stats() {
        let pool = WorkStealingPool::new(2);
        let _ = pool.map_indexed(100, |i| i);
        let _: Vec<usize> = pool.map_indexed(0, |i| i);
        let stats = pool.last_stats();
        assert_eq!(stats.items, 0);
        assert_eq!(stats.workers.len(), 2);
    }

    #[test]
    fn self_scheduling_maps_in_order() {
        let (out, stats) = self_scheduling_map(3, 500, |i| i * 2);
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), 500);
    }

    #[test]
    fn self_scheduling_handles_empty_and_single() {
        let (out, stats) = self_scheduling_map(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.len(), 4);
        let (one, _) = self_scheduling_map(4, 1, |i| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn panic_at_every_position_poisons_exactly_that_slot() {
        // The acceptance-criterion test: inject a panic at every possible
        // chunk position in turn; the poisoned slot must come back None,
        // every other slot Some, and the panic must be recorded — never an
        // uninitialized read, never a lost healthy result.
        let _quiet = QuietPanics::new();
        let n = 24;
        for threads in [1usize, 3] {
            let pool = WorkStealingPool::new(threads);
            for bad in 0..n {
                let outcome = pool.run(n, |i| {
                    if i == bad {
                        panic!("injected at {i}");
                    }
                    i * 10
                });
                assert_eq!(outcome.results.len(), n);
                for (i, r) in outcome.results.iter().enumerate() {
                    if i == bad {
                        assert!(r.is_none(), "slot {i} must be poisoned");
                    } else {
                        assert_eq!(*r, Some(i * 10), "slot {i} must survive");
                    }
                }
                assert_eq!(outcome.panics.len(), 1);
                assert_eq!(outcome.panics[0].index, bad);
                assert!(outcome.panics[0].message.contains("injected"));
                assert_eq!(pool.last_stats().panics, 1);
            }
        }
    }

    #[test]
    fn stress_many_threads_many_chunks_injected_panics() {
        // Std-only loom stand-in: hammer the scheduler across thread
        // counts, sizes and panic densities, with a drop-counting payload
        // proving every written slot is dropped exactly once and no
        // poisoned slot is ever materialized (no double drop, no leak, no
        // uninitialized read).
        let _quiet = QuietPanics::new();
        static LIVE: AtomicUsize = AtomicUsize::new(0);

        struct Counted(usize);
        impl Counted {
            fn new(i: usize) -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Counted(i)
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }

        for threads in [1usize, 2, 4, 8] {
            for n in [1usize, 7, 64, 301] {
                for stride in [2usize, 3, 7] {
                    let pool = WorkStealingPool::new(threads);
                    let outcome = pool.run(n, |i| {
                        let v = Counted::new(i);
                        if i % stride == 0 {
                            // Unwinds with a live local: its drop must run
                            // during the unwind, not leak.
                            panic!("chaos {i}");
                        }
                        v
                    });
                    let expect_poisoned = n.div_ceil(stride);
                    let poisoned = outcome.results.iter().filter(|r| r.is_none()).count();
                    assert_eq!(
                        poisoned, expect_poisoned,
                        "threads {threads}, n {n}, stride {stride}"
                    );
                    assert_eq!(outcome.panics.len(), expect_poisoned);
                    for (k, p) in outcome.panics.iter().enumerate() {
                        assert_eq!(p.index, k * stride, "panics sorted by index");
                    }
                    for (i, r) in outcome.results.iter().enumerate() {
                        match r {
                            Some(c) => assert_eq!(c.0, i),
                            None => assert_eq!(i % stride, 0),
                        }
                    }
                    let stats = pool.last_stats();
                    assert_eq!(stats.panics, expect_poisoned);
                    assert_eq!(
                        stats.workers.iter().map(|w| w.panics).sum::<usize>(),
                        expect_poisoned
                    );
                    drop(outcome);
                    assert_eq!(
                        LIVE.load(Ordering::Relaxed),
                        0,
                        "every payload dropped exactly once"
                    );
                }
            }
        }
    }

    #[test]
    fn map_indexed_reraises_job_panics_in_aggregate() {
        let _quiet = QuietPanics::new();
        let pool = WorkStealingPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(10, |i| {
                if i == 4 {
                    panic!("boom");
                }
                i
            })
        }))
        .expect_err("the aggregate panic must surface");
        let msg = panic_message(err);
        assert!(msg.contains("1 job(s) panicked"), "{msg}");
        assert!(msg.contains("index 4"), "{msg}");
    }

    #[test]
    fn abandoned_slots_drop_only_written_entries() {
        // Dropping Slots without consuming it must free written entries
        // and skip poisoned ones.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let slots: Slots<Counted> = Slots::new(4);
        unsafe {
            slots.write(0, Counted::new());
            slots.write(2, Counted::new());
        }
        assert_eq!(LIVE.load(Ordering::Relaxed), 2);
        drop(slots);
        assert_eq!(LIVE.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn run_outcome_into_result_roundtrips() {
        let pool = WorkStealingPool::new(2);
        let ok = pool.run(5, |i| i + 1).into_result().unwrap();
        assert_eq!(ok, vec![1, 2, 3, 4, 5]);
    }
}
