//! A work-stealing scheduler built on std primitives only.
//!
//! This is the crate's own fine-grained engine (the PyMP-k role): a fixed
//! set of workers, a global injector seeded with index *ranges* (chunks),
//! per-worker LIFO deques and round-robin victim stealing. Because the
//! task set is closed (tasks never spawn tasks), termination is a simple
//! completed-items counter.
//!
//! Mutex-guarded `VecDeque`s stand in for lock-free deques; chunking keeps
//! queue traffic far off the hot path (one lock round-trip per chunk, not
//! per item), so the scheduler stays competitive while the workspace stays
//! dependency-free.
//!
//! Results are written into pre-allocated slots through a `Sync` unsafe
//! cell; safety rests on the scheduler's exactly-once dispatch of each
//! index, which the tests pound on.
//!
//! Every run also records [`PoolStats`] — per-worker busy time, item and
//! steal counts, and the chunk layout — which the observability layer
//! (`mea-obs`, wired in by `parma`) surfaces in machine-readable traces.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Write-once result slots shared across workers.
///
/// # Safety contract
/// Each index is written at most once, by the single worker that claimed
/// it from the scheduler, and only read after every worker has joined.
pub(crate) struct Slots<T> {
    data: Vec<UnsafeCell<MaybeUninit<T>>>,
}

// SAFETY: concurrent access is to *disjoint* indices (exactly-once
// dispatch), so sharing the container across threads is sound for any
// Send payload.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    pub(crate) fn new(n: usize) -> Self {
        Slots {
            data: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// # Safety
    /// `i` must be claimed exactly once across all workers.
    pub(crate) unsafe fn write(&self, i: usize, value: T) {
        (*self.data[i].get()).write(value);
    }

    /// # Safety
    /// Every slot must have been written and all workers joined.
    pub(crate) unsafe fn into_vec(self) -> Vec<T> {
        self.data
            .into_iter()
            .map(|cell| cell.into_inner().assume_init())
            .collect()
    }
}

/// Per-worker activity of one scheduler run.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Wall time the worker spent inside the run (spawn to exit).
    pub busy: Duration,
    /// Items this worker executed.
    pub items: usize,
    /// Chunks this worker obtained by raiding a peer's deque.
    pub steals: usize,
}

/// Scheduler-level telemetry of one `map_indexed` run.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// One entry per worker.
    pub workers: Vec<WorkerStats>,
    /// Number of chunks the index space was split into.
    pub chunks: usize,
    /// Items per chunk (the last chunk may be smaller).
    pub chunk_size: usize,
    /// Total items mapped.
    pub items: usize,
}

impl PoolStats {
    /// Total successful steals across workers.
    pub fn total_steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

/// A fixed-width work-stealing pool for index-space maps.
pub struct WorkStealingPool {
    threads: usize,
    last_busy: Mutex<Vec<Duration>>,
    last_stats: Mutex<PoolStats>,
}

impl WorkStealingPool {
    /// A pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        WorkStealingPool {
            threads: threads.max(1),
            last_busy: Mutex::new(Vec::new()),
            last_stats: Mutex::new(PoolStats::default()),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-worker busy durations of the most recent [`Self::map_indexed`].
    pub fn last_busy_times(&self) -> Vec<Duration> {
        self.last_busy.lock().expect("pool mutex poisoned").clone()
    }

    /// Full scheduler telemetry of the most recent [`Self::map_indexed`].
    pub fn last_stats(&self) -> PoolStats {
        self.last_stats.lock().expect("pool mutex poisoned").clone()
    }

    /// Computes `f(i)` for every `i in 0..n` with dynamic load balancing;
    /// results are returned in index order.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            *self.last_busy.lock().expect("pool mutex poisoned") =
                vec![Duration::ZERO; self.threads];
            *self.last_stats.lock().expect("pool mutex poisoned") = PoolStats {
                workers: vec![WorkerStats::default(); self.threads],
                ..PoolStats::default()
            };
            return Vec::new();
        }
        let slots = Slots::new(n);
        // Chunk the index space: big enough to amortize queue traffic,
        // small enough that stealing can still balance (≥ 8 chunks per
        // worker when possible).
        let chunk = (n / (self.threads * 8)).max(1);
        let mut injector: VecDeque<(usize, usize)> = VecDeque::new();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            injector.push_back((start, end));
            start = end;
        }
        let chunks = injector.len();
        let injector = Mutex::new(injector);
        let deques: Vec<Mutex<VecDeque<(usize, usize)>>> = (0..self.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let completed = AtomicUsize::new(0);
        let mut stats = vec![WorkerStats::default(); self.threads];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|me| {
                    let injector = &injector;
                    let deques = &deques;
                    let completed = &completed;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut local = WorkerStats::default();
                        loop {
                            let task = pop_local(&deques[me])
                                .or_else(|| refill_from_injector(injector, &deques[me]))
                                .or_else(|| {
                                    steal_from_peers(deques, me).inspect(|_| local.steals += 1)
                                });
                            match task {
                                Some((lo, hi)) => {
                                    for i in lo..hi {
                                        let value = f(i);
                                        // SAFETY: index i belongs to a chunk
                                        // claimed exactly once from the
                                        // scheduler.
                                        unsafe { slots.write(i, value) };
                                    }
                                    local.items += hi - lo;
                                    completed.fetch_add(hi - lo, Ordering::Release);
                                }
                                None => {
                                    if completed.load(Ordering::Acquire) >= n {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        local.busy = t0.elapsed();
                        local
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                stats[w] = h.join().expect("work-stealing worker panicked");
            }
        });
        debug_assert_eq!(completed.load(Ordering::Acquire), n);
        *self.last_busy.lock().expect("pool mutex poisoned") =
            stats.iter().map(|s| s.busy).collect();
        *self.last_stats.lock().expect("pool mutex poisoned") = PoolStats {
            workers: stats,
            chunks,
            chunk_size: chunk,
            items: n,
        };
        // SAFETY: the completed counter reached n, so every slot was
        // written exactly once, and all workers have joined.
        unsafe { slots.into_vec() }
    }
}

/// LIFO pop from the worker's own deque (depth-first on its own work).
fn pop_local(deque: &Mutex<VecDeque<(usize, usize)>>) -> Option<(usize, usize)> {
    deque.lock().expect("worker deque poisoned").pop_back()
}

/// Moves a batch of chunks from the injector into the local deque and
/// returns the first.
fn refill_from_injector(
    injector: &Mutex<VecDeque<(usize, usize)>>,
    local: &Mutex<VecDeque<(usize, usize)>>,
) -> Option<(usize, usize)> {
    let mut inj = injector.lock().expect("injector poisoned");
    let first = inj.pop_front()?;
    // Take up to three more in one lock round-trip; the batch keeps the
    // injector from becoming a convoy under many workers.
    let extra: Vec<_> = (0..3).filter_map(|_| inj.pop_front()).collect();
    drop(inj);
    if !extra.is_empty() {
        local.lock().expect("worker deque poisoned").extend(extra);
    }
    Some(first)
}

/// FIFO-steals one chunk from the first non-empty peer after `me`.
fn steal_from_peers(
    deques: &[Mutex<VecDeque<(usize, usize)>>],
    me: usize,
) -> Option<(usize, usize)> {
    let k = deques.len();
    for off in 1..k {
        let victim = (me + off) % k;
        if let Some(task) = deques[victim]
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
        {
            return Some(task);
        }
    }
    None
}

/// Dynamic self-scheduling map over `0..n` on `threads` workers: each
/// worker claims the next chunk from a shared atomic cursor (the classic
/// PyMP/OpenMP `schedule(dynamic)` loop). Returns results in index order
/// plus per-worker activity.
pub(crate) fn self_scheduling_map<T, F>(
    threads: usize,
    n: usize,
    f: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    if n == 0 {
        return (Vec::new(), vec![WorkerStats::default(); threads]);
    }
    let chunk = (n / (threads * 8)).max(1);
    let slots = Slots::new(n);
    let cursor = AtomicUsize::new(0);
    let mut stats = vec![WorkerStats::default(); threads];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let mut local = WorkerStats::default();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for i in lo..hi {
                            let value = f(i);
                            // SAFETY: the atomic cursor hands out each
                            // index exactly once.
                            unsafe { slots.write(i, value) };
                        }
                        local.items += hi - lo;
                    }
                    local.busy = t0.elapsed();
                    local
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            stats[w] = h.join().expect("self-scheduling worker panicked");
        }
    });
    // SAFETY: the cursor swept the whole range and all workers joined, so
    // every slot was written exactly once.
    (unsafe { slots.into_vec() }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_index_order() {
        let pool = WorkStealingPool::new(4);
        let out = pool.map_indexed(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkStealingPool::new(3);
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        let _ = pool.map_indexed(512, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "index {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn empty_and_tiny_workloads() {
        let pool = WorkStealingPool::new(8);
        let empty: Vec<usize> = pool.map_indexed(0, |i| i);
        assert!(empty.is_empty());
        let one = pool.map_indexed(1, |i| i + 41);
        assert_eq!(one, vec![41]);
        assert_eq!(pool.last_busy_times().len(), 8);
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkStealingPool::new(16);
        let out = pool.map_indexed(5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unbalanced_items_all_complete() {
        // Skewed costs: item 0 is 1000× heavier; stealing must still finish
        // everything.
        let pool = WorkStealingPool::new(2);
        let out = pool.map_indexed(64, |i| {
            let reps = if i == 0 { 100_000 } else { 100 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_thread_request_becomes_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.map_indexed(10, |i| i);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn non_copy_payloads_survive() {
        let pool = WorkStealingPool::new(4);
        let out = pool.map_indexed(100, |i| format!("value-{i}"));
        assert_eq!(out[99], "value-99");
        assert_eq!(out[0], "value-0");
    }

    #[test]
    fn busy_times_reported_per_worker() {
        let pool = WorkStealingPool::new(3);
        let _ = pool.map_indexed(300, |i| {
            std::hint::black_box((0..200).fold(i as u64, |a, b| a.wrapping_add(b)))
        });
        let busy = pool.last_busy_times();
        assert_eq!(busy.len(), 3);
    }

    #[test]
    fn stats_account_for_every_item() {
        let pool = WorkStealingPool::new(4);
        let _ = pool.map_indexed(777, |i| i);
        let stats = pool.last_stats();
        assert_eq!(stats.items, 777);
        assert_eq!(stats.workers.len(), 4);
        let executed: usize = stats.workers.iter().map(|w| w.items).sum();
        assert_eq!(
            executed, 777,
            "per-worker item counts must sum to the total"
        );
        assert!(stats.chunks >= 1 && stats.chunk_size >= 1);
        assert!(stats.chunks >= stats.items / stats.chunk_size);
    }

    #[test]
    fn empty_run_resets_stats() {
        let pool = WorkStealingPool::new(2);
        let _ = pool.map_indexed(100, |i| i);
        let _: Vec<usize> = pool.map_indexed(0, |i| i);
        let stats = pool.last_stats();
        assert_eq!(stats.items, 0);
        assert_eq!(stats.workers.len(), 2);
    }

    #[test]
    fn self_scheduling_maps_in_order() {
        let (out, stats) = self_scheduling_map(3, 500, |i| i * 2);
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), 500);
    }

    #[test]
    fn self_scheduling_handles_empty_and_single() {
        let (out, stats) = self_scheduling_map(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.len(), 4);
        let (one, _) = self_scheduling_map(4, 1, |i| i + 7);
        assert_eq!(one, vec![7]);
    }
}
