//! The strategy taxonomy and the order-preserving executor.

use crate::balanced::partition_lpt;
use crate::metrics::ExecutionReport;
use crate::pool::{self, PoolStats, WorkStealingPool};
use std::time::{Duration, Instant};

/// Number of §IV-A constraint categories.
pub const CATEGORY_COUNT: usize = 4;

/// One schedulable unit of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Dense identifier; results are returned in `id` order.
    pub id: usize,
    /// Constraint category (0..[`CATEGORY_COUNT`]); only *Parallel* cares.
    pub category: usize,
    /// Relative cost estimate (e.g. expected term count); only *Balanced
    /// Parallel* cares.
    pub cost: u64,
}

/// A parallel execution strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The serialized baseline of ref [15].
    SingleThread,
    /// One dedicated thread per constraint category (§IV-A). The paper
    /// notes this cannot use more than four threads and saturates early.
    Parallel4,
    /// Deterministic static balancing over `threads` workers via a
    /// longest-processing-time partition of the cost estimates (§IV-C.1).
    BalancedParallel {
        /// Worker count.
        threads: usize,
    },
    /// Fine-grained dynamic work sharing via a self-scheduling chunk
    /// cursor — the PyMP-k analogue (§IV-C.2).
    FineGrained {
        /// Worker count (the paper's `k`).
        threads: usize,
    },
    /// Fine-grained dynamic scheduling on this crate's own
    /// work-stealing pool.
    WorkStealing {
        /// Worker count.
        threads: usize,
    },
}

impl Strategy {
    /// Human-readable label used by the figure harness (matches the
    /// paper's legend names).
    pub fn label(&self) -> String {
        match self {
            Strategy::SingleThread => "Single-thread".into(),
            Strategy::Parallel4 => "Parallel".into(),
            Strategy::BalancedParallel { threads } => format!("Balanced Parallel ({threads})"),
            Strategy::FineGrained { threads } => format!("PyMP-{threads}"),
            Strategy::WorkStealing { threads } => format!("WorkSteal-{threads}"),
        }
    }

    /// The worker count this strategy will use.
    pub fn threads(&self) -> usize {
        match self {
            Strategy::SingleThread => 1,
            Strategy::Parallel4 => CATEGORY_COUNT,
            Strategy::BalancedParallel { threads }
            | Strategy::FineGrained { threads }
            | Strategy::WorkStealing { threads } => (*threads).max(1),
        }
    }
}

/// Maps `f` over `items` under a strategy; results return in `id` order.
///
/// `f` must be safe to call from multiple threads. Item `id`s must be the
/// dense range `0..items.len()` (checked).
pub fn execute<T, F>(strategy: Strategy, items: &[WorkItem], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&WorkItem) -> T + Sync,
{
    execute_with_report(strategy, items, f).0
}

/// Like [`execute`], also returning wall-clock, per-worker busy time and
/// (for dynamic strategies) full scheduler telemetry.
pub fn execute_with_report<T, F>(
    strategy: Strategy,
    items: &[WorkItem],
    f: F,
) -> (Vec<T>, ExecutionReport)
where
    T: Send,
    F: Fn(&WorkItem) -> T + Sync,
{
    debug_assert!(
        items.iter().enumerate().all(|(i, w)| w.id == i),
        "WorkItem ids must be dense and in order"
    );
    let start = Instant::now();
    let mut scheduler: Option<PoolStats> = None;
    let (results, busy, per_items) = match strategy {
        Strategy::SingleThread => {
            let t0 = Instant::now();
            let out: Vec<T> = items.iter().map(&f).collect();
            (out, vec![t0.elapsed()], vec![items.len()])
        }
        Strategy::Parallel4 => {
            let groups: Vec<Vec<usize>> = (0..CATEGORY_COUNT)
                .map(|c| {
                    items
                        .iter()
                        .filter(|w| w.category % CATEGORY_COUNT == c)
                        .map(|w| w.id)
                        .collect()
                })
                .collect();
            run_partitioned(items, &groups, &f)
        }
        Strategy::BalancedParallel { threads } => {
            let costs: Vec<u64> = items.iter().map(|w| w.cost).collect();
            let groups = partition_lpt(&costs, threads.max(1));
            run_partitioned(items, &groups, &f)
        }
        Strategy::FineGrained { threads } => {
            let (out, workers) =
                pool::self_scheduling_map(threads.max(1), items.len(), |i| f(&items[i]));
            let busy: Vec<Duration> = workers.iter().map(|w| w.busy).collect();
            let per_items: Vec<usize> = workers.iter().map(|w| w.items).collect();
            (out, busy, per_items)
        }
        Strategy::WorkStealing { threads } => {
            let pool = WorkStealingPool::new(threads.max(1));
            let out = pool.map_indexed(items.len(), |i| f(&items[i]));
            let stats = pool.last_stats();
            let busy: Vec<Duration> = stats.workers.iter().map(|w| w.busy).collect();
            let per_items: Vec<usize> = stats.workers.iter().map(|w| w.items).collect();
            scheduler = Some(stats);
            (out, busy, per_items)
        }
    };
    let report = ExecutionReport {
        strategy_label: strategy.label(),
        wall: start.elapsed(),
        per_worker_busy: busy,
        per_worker_items: per_items,
        items: items.len(),
        scheduler,
    };
    record_report(&report);
    (results, report)
}

/// Feeds an execution's telemetry into the process-global observability
/// registry (no-op when collection is off — trace *or* live mode records
/// it, since counters are bounded). Per-worker figures go into
/// per-worker counters so repeated executions — e.g. one sweep per solver
/// iteration — aggregate instead of growing the trace unboundedly.
fn record_report(report: &ExecutionReport) {
    if !mea_obs::is_active() {
        return;
    }
    mea_obs::counter_add("parallel.executions", 1);
    mea_obs::counter_add("parallel.items", report.items as u64);
    for (w, busy) in report.per_worker_busy.iter().enumerate() {
        mea_obs::counter_add(
            &format!("parallel.worker.{w}.busy_us"),
            busy.as_micros() as u64,
        );
    }
    for (w, items) in report.per_worker_items.iter().enumerate() {
        mea_obs::counter_add(&format!("parallel.worker.{w}.items"), *items as u64);
    }
    if let Some(stats) = &report.scheduler {
        mea_obs::counter_add("parallel.chunks", stats.chunks as u64);
        mea_obs::counter_add("parallel.steals", stats.total_steals() as u64);
        for (w, ws) in stats.workers.iter().enumerate() {
            mea_obs::counter_add(&format!("parallel.worker.{w}.steals"), ws.steals as u64);
        }
    }
}

/// Runs explicit index groups on scoped threads, one thread per group, and
/// reassembles results in id order.
fn run_partitioned<T, F>(
    items: &[WorkItem],
    groups: &[Vec<usize>],
    f: &F,
) -> (Vec<T>, Vec<Duration>, Vec<usize>)
where
    T: Send,
    F: Fn(&WorkItem) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let mut busy = vec![Duration::ZERO; groups.len()];
    let per_items: Vec<usize> = groups.iter().map(Vec::len).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .map(|group| {
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let produced: Vec<(usize, T)> =
                        group.iter().map(|&id| (id, f(&items[id]))).collect();
                    (produced, t0.elapsed())
                })
            })
            .collect();
        for (g, h) in handles.into_iter().enumerate() {
            let (produced, elapsed) = h.join().expect("partition worker panicked");
            busy[g] = elapsed;
            for (id, value) in produced {
                debug_assert!(slots[id].is_none(), "duplicate work item {id}");
                slots[id] = Some(value);
            }
        }
    });
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(id, s)| s.unwrap_or_else(|| panic!("work item {id} was never scheduled")))
        .collect();
    (results, busy, per_items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn items(n: usize) -> Vec<WorkItem> {
        (0..n)
            .map(|id| WorkItem {
                id,
                category: id % CATEGORY_COUNT,
                cost: (id as u64 % 7) + 1,
            })
            .collect()
    }

    fn all_strategies() -> Vec<Strategy> {
        vec![
            Strategy::SingleThread,
            Strategy::Parallel4,
            Strategy::BalancedParallel { threads: 3 },
            Strategy::FineGrained { threads: 2 },
            Strategy::WorkStealing { threads: 2 },
        ]
    }

    #[test]
    fn all_strategies_preserve_order_and_results() {
        let work = items(101);
        let expected: Vec<usize> = work.iter().map(|w| w.id * 3 + 1).collect();
        for s in all_strategies() {
            let got = execute(s, &work, |w| w.id * 3 + 1);
            assert_eq!(
                got, expected,
                "strategy {s:?} must match the sequential result"
            );
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        for s in all_strategies() {
            let counter = AtomicUsize::new(0);
            let work = items(64);
            let _ = execute(s, &work, |_| counter.fetch_add(1, Ordering::Relaxed));
            assert_eq!(counter.load(Ordering::Relaxed), 64, "{s:?}");
        }
    }

    #[test]
    fn empty_workload_is_fine() {
        for s in all_strategies() {
            let out: Vec<usize> = execute(s, &[], |w| w.id);
            assert!(out.is_empty(), "{s:?}");
        }
    }

    #[test]
    fn single_item_workload() {
        for s in all_strategies() {
            let work = items(1);
            let out = execute(s, &work, |w| w.cost);
            assert_eq!(out, vec![1], "{s:?}");
        }
    }

    #[test]
    fn report_carries_label_and_counts() {
        let work = items(16);
        let (_, report) =
            execute_with_report(Strategy::BalancedParallel { threads: 2 }, &work, |w| w.id);
        assert_eq!(report.items, 16);
        assert!(report.strategy_label.starts_with("Balanced"));
        assert_eq!(report.per_worker_busy.len(), 2);
        assert_eq!(report.per_worker_items.iter().sum::<usize>(), 16);
        assert!(report.wall >= Duration::ZERO);
    }

    #[test]
    fn parallel4_uses_four_workers() {
        let work = items(32);
        let (_, report) = execute_with_report(Strategy::Parallel4, &work, |w| w.id);
        assert_eq!(report.per_worker_busy.len(), CATEGORY_COUNT);
        assert_eq!(report.per_worker_items.iter().sum::<usize>(), 32);
        assert!(
            report.scheduler.is_none(),
            "static strategy has no pool stats"
        );
    }

    #[test]
    fn dynamic_strategies_attribute_every_item() {
        for s in [
            Strategy::FineGrained { threads: 3 },
            Strategy::WorkStealing { threads: 3 },
        ] {
            let work = items(200);
            let (_, report) = execute_with_report(s, &work, |w| w.id);
            assert_eq!(report.per_worker_busy.len(), 3, "{s:?}");
            assert_eq!(report.per_worker_items.len(), 3, "{s:?}");
            assert_eq!(report.per_worker_items.iter().sum::<usize>(), 200, "{s:?}");
        }
    }

    #[test]
    fn work_stealing_report_carries_pool_stats() {
        let work = items(128);
        let (_, report) =
            execute_with_report(Strategy::WorkStealing { threads: 2 }, &work, |w| w.id);
        let stats = report
            .scheduler
            .expect("work stealing must expose pool stats");
        assert_eq!(stats.items, 128);
        assert!(stats.chunks >= 1);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Strategy::SingleThread.label(), "Single-thread");
        assert_eq!(Strategy::Parallel4.label(), "Parallel");
        assert_eq!(Strategy::FineGrained { threads: 8 }.label(), "PyMP-8");
        assert_eq!(Strategy::Parallel4.threads(), 4);
        assert_eq!(Strategy::BalancedParallel { threads: 0 }.threads(), 1);
    }

    #[test]
    fn category_out_of_range_is_folded() {
        // Items with category ≥ 4 still get scheduled under Parallel4.
        let work: Vec<WorkItem> = (0..10)
            .map(|id| WorkItem {
                id,
                category: id,
                cost: 1,
            })
            .collect();
        let out = execute(Strategy::Parallel4, &work, |w| w.id);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
