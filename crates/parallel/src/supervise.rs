//! Cooperative cancellation and deadlines for supervised execution.
//!
//! A [`CancelToken`] carries a shared cancel flag plus an optional
//! deadline. Long-running loops (the Parma fixed-point iteration, the
//! full-Newton outer loop, batch coordinators) poll [`CancelToken::check`]
//! at iteration boundaries and unwind with a typed [`Interrupt`] instead
//! of hanging unboundedly. Checks happen *between* iterations only, so a
//! run that is never interrupted executes the exact same floating-point
//! work as an unsupervised one — the bitwise determinism contract
//! (DESIGN.md §13) depends on this.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a supervised computation was asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// [`CancelToken::cancel`] was called (explicitly, or by a parent).
    Cancelled,
    /// The token's deadline passed.
    TimedOut,
}

/// A cancellation handle: a shared flag plus an optional deadline.
///
/// Cloning shares the flag (cancelling one clone cancels all); the
/// deadline is per-instance so a child scope can run under a tighter
/// budget than its parent via [`CancelToken::child`].
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own: no deadline, not cancelled.
    /// Checking it is a single relaxed atomic load — cheap enough for
    /// per-iteration polling.
    pub fn unbounded() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token that times out `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// A child token sharing this token's cancel flag, optionally under a
    /// tighter budget. The child's deadline is the *earlier* of the
    /// parent's deadline and `now + budget`: a child can never outlive its
    /// parent's time budget.
    pub fn child(&self, budget: Option<Duration>) -> Self {
        let own = budget.and_then(|b| Instant::now().checked_add(b));
        let deadline = match (self.deadline, own) {
            (Some(p), Some(c)) => Some(p.min(c)),
            (p, c) => p.or(c),
        };
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline,
        }
    }

    /// Requests cancellation of this token and every clone/child sharing
    /// its flag.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Polls the token: `None` to keep going, `Some(interrupt)` to stop.
    /// Explicit cancellation wins over a passed deadline, and the clock is
    /// only consulted when a deadline is set.
    pub fn check(&self) -> Option<Interrupt> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(Interrupt::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(Interrupt::TimedOut),
            _ => None,
        }
    }

    /// Time remaining until the deadline; `None` for an unbounded token.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fires() {
        let token = CancelToken::unbounded();
        assert_eq!(token.check(), None);
        assert_eq!(token.remaining(), None);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_propagates_to_clones_and_children() {
        let token = CancelToken::unbounded();
        let clone = token.clone();
        let child = token.child(Some(Duration::from_secs(3600)));
        token.cancel();
        assert_eq!(clone.check(), Some(Interrupt::Cancelled));
        assert_eq!(child.check(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn zero_budget_times_out_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(token.check(), Some(Interrupt::TimedOut));
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(token.check(), None);
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn child_takes_the_tighter_deadline() {
        let parent = CancelToken::with_deadline(Duration::from_secs(3600));
        let tight = parent.child(Some(Duration::ZERO));
        assert_eq!(tight.check(), Some(Interrupt::TimedOut));
        // A loose child is clamped to the parent's budget.
        let loose = CancelToken::with_deadline(Duration::ZERO).child(Some(Duration::from_secs(60)));
        assert_eq!(loose.check(), Some(Interrupt::TimedOut));
        // A child of an unbounded parent keeps only its own budget.
        let own = CancelToken::unbounded().child(Some(Duration::from_secs(60)));
        assert_eq!(own.check(), None);
        let none = CancelToken::unbounded().child(None);
        assert_eq!(none.check(), None);
    }

    #[test]
    fn cancellation_wins_over_timeout() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        token.cancel();
        assert_eq!(token.check(), Some(Interrupt::Cancelled));
    }
}
