//! Property tests for the `parma-wire/v1` frame protocol, mirroring the
//! `binfmt_properties.rs` contracts for the dataset container:
//!
//! 1. **Round trip is the identity** on arbitrary frames — any kind, any
//!    payload length and content, including frame sequences on one
//!    stream.
//! 2. **Every single-byte corruption is detected.** The trailing
//!    FNV-1a-64 covers header and payload, and its per-byte transition
//!    is injective, so a one-byte change always lands in a typed
//!    [`FrameError`] — never a silently wrong frame.
//! 3. **Version bumps are rejected** before anything else is trusted,
//!    even when the frame is otherwise perfectly self-consistent
//!    (checksum recomputed over the bumped version field).
//! 4. **Every truncation is detected** — a torn frame (worker killed
//!    mid-write) surfaces as an I/O error, which the coordinator treats
//!    as a dead connection, not a result.

use mea_parallel::dist::{
    encode_frame, fnv1a64, read_frame, write_frame_with_version, Frame, FrameError, MsgKind,
};

const KINDS: [MsgKind; 6] = [
    MsgKind::Hello,
    MsgKind::HelloAck,
    MsgKind::Assign,
    MsgKind::Result,
    MsgKind::Heartbeat,
    MsgKind::Shutdown,
];

/// Deterministic arbitrary-looking payload bytes (SplitMix64).
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(64))]

    /// encode → read is the identity for every kind and payload.
    #[test]
    fn prop_roundtrip_is_the_identity(
        kind_idx in 0usize..6,
        len in 0usize..2048,
        seed in proptest::any::<u64>(),
    ) {
        let kind = KINDS[kind_idx];
        let body = payload(len, seed);
        let bytes = encode_frame(kind, &body);
        let frame = read_frame(&mut &bytes[..]).expect("a written frame must read");
        proptest::prop_assert_eq!(frame, Frame { kind, payload: body });
    }

    /// Several frames written back-to-back on one stream read back in
    /// order with nothing lost — the steady-state connection case.
    #[test]
    fn prop_frame_sequences_read_in_order(
        count in 1usize..6,
        seed in proptest::any::<u64>(),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for k in 0..count {
            let kind = KINDS[(seed as usize + k) % KINDS.len()];
            let body = payload((k * 37) % 200, seed ^ k as u64);
            stream.extend_from_slice(&encode_frame(kind, &body));
            expected.push(Frame { kind, payload: body });
        }
        let mut r = &stream[..];
        for want in &expected {
            let got = read_frame(&mut r).expect("frame in sequence must read");
            proptest::prop_assert_eq!(&got, want);
        }
        proptest::prop_assert!(r.is_empty());
    }

    /// A future protocol version is refused with a typed error naming
    /// the version, whatever the kind or payload.
    #[test]
    fn prop_version_mismatch_is_rejected(
        kind_idx in 0usize..6,
        version in 2u16..u16::MAX,
        len in 0usize..256,
        seed in proptest::any::<u64>(),
    ) {
        let mut buf = Vec::new();
        write_frame_with_version(&mut buf, version, KINDS[kind_idx], &payload(len, seed))
            .unwrap();
        match read_frame(&mut &buf[..]) {
            Err(FrameError::VersionMismatch { got }) => {
                proptest::prop_assert_eq!(got, version);
            }
            other => proptest::prop_assert!(false, "expected version rejection, got {:?}", other),
        }
    }
}

/// Exhaustive, not sampled: every byte of a frame, three flip patterns
/// each, must fail to read with a typed error. The checksum covers
/// header and payload; the checksum bytes themselves then disagree with
/// the recomputed value. A passing read of damaged bytes would mean an
/// FNV collision, which the injectivity argument rules out for
/// single-byte edits at a fixed offset.
#[test]
fn every_single_byte_corruption_is_detected() {
    let body = payload(257, 0xDEAD_BEEF);
    let bytes = encode_frame(MsgKind::Result, &body);
    for i in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut damaged = bytes.clone();
            damaged[i] ^= mask;
            match read_frame(&mut &damaged[..]) {
                Err(
                    FrameError::Io(_)
                    | FrameError::BadMagic(_)
                    | FrameError::VersionMismatch { .. }
                    | FrameError::BadKind(_)
                    | FrameError::TooLarge(_)
                    | FrameError::BadChecksum,
                ) => {}
                Ok(_) => panic!("byte {i} mask {mask:#x}: corrupt frame read successfully"),
            }
        }
    }
}

/// A kind byte flipped onto another *valid* kind is still caught — the
/// structural gates pass, so only the checksum can (and does) object.
#[test]
fn valid_but_wrong_kind_byte_is_caught_by_the_checksum() {
    let bytes = encode_frame(MsgKind::Assign, b"shard");
    let mut damaged = bytes.clone();
    // Assign = 3 → Result = 4: both valid kinds.
    assert_eq!(damaged[4], MsgKind::Assign as u8);
    damaged[4] = MsgKind::Result as u8;
    assert!(matches!(
        read_frame(&mut &damaged[..]),
        Err(FrameError::BadChecksum)
    ));
}

/// Every proper prefix fails as an I/O error — a worker SIGKILLed
/// mid-write can never deliver a shorter-but-valid frame.
#[test]
fn every_truncation_is_detected() {
    let bytes = encode_frame(MsgKind::Result, &payload(64, 42));
    for len in 0..bytes.len() {
        match read_frame(&mut &bytes[..len]) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "prefix {len}");
            }
            other => panic!("prefix {len}: expected EOF, got {other:?}"),
        }
    }
}

/// The frame hash is the workspace-standard FNV-1a-64 (same constants as
/// the journal and `parma-bin`), pinned against the reference values so
/// the three implementations can never drift apart.
#[test]
fn fnv_constants_match_the_reference_vectors() {
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
}
