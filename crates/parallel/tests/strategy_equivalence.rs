//! Strategy-equivalence property: for any work-item set, every execution
//! strategy returns exactly the same results in exactly the same (id)
//! order. Scheduling may only change *where and when* an item runs, never
//! its result or its slot — the contract the solver's bitwise determinism
//! rests on.

use mea_parallel::{execute, Strategy, WorkItem, CATEGORY_COUNT};

/// Builds a dense-id work set from raw random draws: categories and costs
/// vary arbitrarily; ids are 0..n as the executor requires.
fn work_items(raw: &[(u64, u64)]) -> Vec<WorkItem> {
    raw.iter()
        .enumerate()
        .map(|(id, &(cat, cost))| WorkItem {
            id,
            category: (cat % CATEGORY_COUNT as u64) as usize,
            cost: cost % 1_000,
        })
        .collect()
}

/// A payload whose value depends on everything an item carries, plus a
/// float computed with non-associative arithmetic — if a strategy
/// reordered per-item work or mixed up slots, both fields would betray it.
fn payload(w: &WorkItem) -> (u64, u64) {
    let mut acc = 1.0f64;
    for k in 1..=(w.cost % 17 + 3) {
        acc = acc * 1.000_1 + (w.id as f64) / (k as f64);
    }
    let fingerprint = (w.id as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(w.category as u64)
        .wrapping_add(w.cost);
    (fingerprint, acc.to_bits())
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::SingleThread,
        Strategy::Parallel4,
        Strategy::BalancedParallel { threads: 3 },
        Strategy::FineGrained { threads: 2 },
        Strategy::WorkStealing { threads: 4 },
    ]
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]

    /// Random work sets give identical id-order results under every
    /// strategy (values compared to the bit).
    #[test]
    fn prop_all_strategies_agree_in_id_order(
        raw in proptest::collection::vec(
            (proptest::any::<u64>(), proptest::any::<u64>()),
            0..80,
        ),
    ) {
        let items = work_items(&raw);
        let reference = execute(Strategy::SingleThread, &items, payload);
        proptest::prop_assert_eq!(reference.len(), items.len());
        // The single-thread result is the per-item function applied in
        // place — the ground truth for every parallel schedule.
        for (w, got) in items.iter().zip(&reference) {
            proptest::prop_assert_eq!(*got, payload(w));
        }
        for strategy in strategies() {
            let out = execute(strategy, &items, payload);
            proptest::prop_assert_eq!(
                &out,
                &reference,
                "{:?} disagreed with the single-thread reference", strategy
            );
        }
    }

    /// Thread-count sweeps never change results, only schedules.
    #[test]
    fn prop_thread_counts_are_interchangeable(
        raw in proptest::collection::vec(
            (proptest::any::<u64>(), proptest::any::<u64>()),
            1..60,
        ),
        threads in 1usize..9,
    ) {
        let items = work_items(&raw);
        let reference = execute(Strategy::SingleThread, &items, payload);
        for strategy in [
            Strategy::BalancedParallel { threads },
            Strategy::FineGrained { threads },
            Strategy::WorkStealing { threads },
        ] {
            let out = execute(strategy, &items, payload);
            proptest::prop_assert_eq!(
                &out,
                &reference,
                "{:?} disagreed with the single-thread reference", strategy
            );
        }
    }
}

#[test]
fn skewed_costs_still_agree() {
    // One pathological item 10⁶× heavier than the rest: balancing and
    // stealing take very different schedules, results must not move.
    let mut items: Vec<WorkItem> = (0..33)
        .map(|id| WorkItem {
            id,
            category: id % CATEGORY_COUNT,
            cost: 1,
        })
        .collect();
    items[7].cost = 1_000_000;
    let reference = execute(Strategy::SingleThread, &items, payload);
    for strategy in strategies() {
        assert_eq!(
            execute(strategy, &items, payload),
            reference,
            "{strategy:?}"
        );
    }
}
