//! Batched throughput solving: many measurements (or whole wet-lab
//! sessions) in flight at once over the work-stealing pool.
//!
//! The per-*pair* parallelism inside one solve (`crate::solver`) is fine-
//! grained and saturates quickly; when the workload is *many* devices —
//! a plate of MEA wells measured together, or a parameter sweep — the
//! right axis is one solve per work item. [`BatchSolver`] schedules whole
//! solves on `mea_parallel::WorkStealingPool`, splitting its thread
//! budget between the two axes ([`mea_parallel::ThreadBudget`]): the
//! batch (outer) axis is saturated first — `min(threads, items)` workers,
//! the historical single-thread-inner shape — and only a *surplus*
//! (threads > items, the paper-scale few-large-solves regime) flows to
//! the intra-solve axis, capped per item by its Betti parallelism bound
//! β₁ ([`crate::betti`]). Inner sweeps always run
//! [`Strategy::SingleThread`]; the intra-solve workers parallelize the
//! structured *factorization* stages instead.
//!
//! # Determinism
//!
//! Results come back in input order (`map_indexed` writes into per-index
//! slots), and each solve is bitwise identical to running
//! [`ParmaSolver::solve`] sequentially on the same measurement: the pair
//! updates inside a sweep are independent and reduced in id order
//! regardless of schedule, the batch engine shares one immutable
//! [`SolvePlan`] per topology (which `solver::tests::
//! plan_reuse_is_bitwise_identical` pins down), and the intra-solve
//! factorization stages use fixed row-chunk partitions that are
//! independent of the worker count. Thread count — on either axis — and
//! steal interleavings affect wall time only, never bits.

use crate::config::ParmaConfig;
use crate::error::ParmaError;
use crate::pipeline::{Pipeline, TimePointResult};
use crate::solver::{ParmaSolution, ParmaSolver, SolvePlan, SolveScratch};
use crate::stream::{IngestError, StreamingLoader};
use crate::supervisor::{supervise, FailureReport, SupervisorConfig};
use mea_model::{MeaGrid, WetLabDataset, ZMatrix};
use mea_parallel::{Interrupt, IoBudget, Strategy, ThreadBudget, WorkStealingPool};
use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Wall-clock per batch item (ms), attempts beyond the first included.
static ITEM_MS: mea_obs::hist::Hist = mea_obs::hist::Hist::new("parma.batch.item_ms");

thread_local! {
    /// One solve scratch per worker thread: items on the same worker share
    /// factorization buffers across solves. Carries no data-dependent
    /// state, so batch results stay bitwise independent of scheduling.
    static SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// A batch driver: one configuration, `threads` outer workers.
#[derive(Clone, Debug)]
pub struct BatchSolver {
    config: ParmaConfig,
    threads: usize,
}

impl BatchSolver {
    /// A batch solver with a total budget of `threads` workers (at least
    /// one), split between the batch and intra-solve axes by
    /// [`ThreadBudget::split`]. The configuration's `strategy` field is
    /// ignored: inner *sweeps* always run single-threaded (the batch axis
    /// owns the cores when items are plentiful); surplus threads
    /// parallelize each item's structured factorization instead. Returns
    /// [`ParmaError::InvalidConfig`] for out-of-range configurations.
    pub fn new(config: ParmaConfig, threads: usize) -> Result<Self, ParmaError> {
        config.validate()?;
        Ok(BatchSolver {
            config: config.with_strategy(Strategy::SingleThread),
            threads: threads.max(1),
        })
    }

    /// The (strategy-normalized) solver configuration.
    pub fn config(&self) -> &ParmaConfig {
        &self.config
    }

    /// Outer worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves every measurement, returning outcomes in input order.
    ///
    /// Per-topology [`SolvePlan`]s are built once and shared across items;
    /// each item gets its own obs span and its wall time lands in the
    /// `parma.batch.item_ms` series, id order, so traces stay comparable
    /// across runs.
    pub fn solve_all(&self, measurements: &[ZMatrix]) -> Vec<Result<ParmaSolution, ParmaError>> {
        let _span = mea_obs::span("parma/batch");
        let plans = plan_set(measurements.iter().map(|z| z.grid()));
        let solver = ParmaSolver::new(self.config);
        let budget = ThreadBudget::split(self.threads, measurements.len());
        let pool = WorkStealingPool::new(budget.outer);
        let timed: Vec<(Result<ParmaSolution, ParmaError>, f64)> =
            pool.map_indexed(measurements.len(), |i| {
                let _item = mea_obs::span("parma/batch/item");
                let _scope = mea_obs::events::item_scope(i as u64);
                let z = &measurements[i];
                let plan = lookup(&plans, z.grid());
                let t0 = Instant::now();
                let out = SCRATCH.with(|scratch| {
                    let mut scratch = scratch.borrow_mut();
                    scratch.set_intra_threads(intra_width(&budget, z.grid()));
                    solver.solve_with_scratch(plan, z, None, &mut scratch)
                });
                (out, t0.elapsed().as_secs_f64() * 1e3)
            });
        record_batch_obs(timed.iter().map(|(out, ms)| (out.is_err(), *ms)));
        timed.into_iter().map(|(out, _)| out).collect()
    }

    /// Runs the full measurement-to-detection pipeline over every session,
    /// one session per work item, results in input order.
    ///
    /// Time points *within* a session stay sequential — each warm-starts
    /// from the previous solution — so the parallel axis is across
    /// sessions, matching how a plate of wells is processed; session runs
    /// keep their inner solves fully sequential (no intra-solve split —
    /// the pipeline owns its own scratch). The outer `Err` is an up-front
    /// configuration failure; per-session failures come back in their
    /// slot without disturbing the rest of the batch.
    #[allow(clippy::type_complexity)]
    pub fn run_sessions(
        &self,
        datasets: &[WetLabDataset],
        detection_factor: f64,
    ) -> Result<Vec<Result<Vec<TimePointResult>, ParmaError>>, ParmaError> {
        let pipeline = Pipeline::new(self.config, detection_factor)?;
        let _span = mea_obs::span("parma/batch");
        let pool = WorkStealingPool::new(self.threads);
        let timed: Vec<(Result<Vec<TimePointResult>, ParmaError>, f64)> =
            pool.map_indexed(datasets.len(), |i| {
                let _item = mea_obs::span("parma/batch/item");
                let _scope = mea_obs::events::item_scope(i as u64);
                let t0 = Instant::now();
                let out = pipeline.run(&datasets[i]);
                (out, t0.elapsed().as_secs_f64() * 1e3)
            });
        record_batch_obs(timed.iter().map(|(out, ms)| (out.is_err(), *ms)));
        Ok(timed.into_iter().map(|(out, _)| out).collect())
    }

    /// Supervised throughput solving: like [`Self::solve_all`] but items
    /// that panic, time out, or diverge are retried per `sup` (escalating
    /// the recovery configuration on divergence/timeout) and quarantined
    /// with a classified [`FailureReport`] once retries are exhausted.
    /// Healthy items complete regardless.
    ///
    /// With `sup.max_retries == 0`, no deadlines and no chaos, successful
    /// results are bitwise identical to [`Self::solve_all`] (and therefore
    /// to the sequential solver).
    pub fn solve_all_supervised(
        &self,
        measurements: &[ZMatrix],
        sup: &SupervisorConfig,
    ) -> Vec<Result<ParmaSolution, FailureReport>> {
        let _span = mea_obs::span("parma/batch");
        let plans = plan_set(measurements.iter().map(|z| z.grid()));
        let budget = ThreadBudget::split(self.threads, measurements.len());
        let pool = WorkStealingPool::new(budget.outer);
        let times: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
        let out = supervise(
            &pool,
            measurements.len(),
            sup,
            &|i, escalation, token| {
                let _item = mea_obs::span("parma/batch/item");
                let z = &measurements[i];
                let plan = lookup(&plans, z.grid());
                let solver =
                    ParmaSolver::new(crate::supervisor::escalated(&self.config, escalation));
                let t0 = Instant::now();
                let res = SCRATCH.with(|scratch| {
                    let mut scratch = scratch.borrow_mut();
                    scratch.set_intra_threads(intra_width(&budget, z.grid()));
                    solver.solve_supervised(plan, z, None, &mut scratch, token)
                });
                times
                    .lock()
                    .expect("batch timing lock")
                    .push((i, t0.elapsed().as_secs_f64() * 1e3));
                res
            },
            &|_, _| {},
        );
        record_supervised_obs(&times, &out, |r| r.is_err());
        out
    }

    /// Supervised session runs: [`Self::run_sessions`] under the full
    /// retry/backoff/quarantine policy. `on_done` fires exactly once per
    /// dataset — as soon as it succeeds or is quarantined, possibly from a
    /// worker thread — which is what lets callers journal results
    /// incrementally (the CLI's `--resume` support).
    #[allow(clippy::type_complexity)]
    pub fn run_sessions_supervised(
        &self,
        datasets: &[WetLabDataset],
        detection_factor: f64,
        sup: &SupervisorConfig,
        on_done: &(dyn Fn(usize, &Result<Vec<TimePointResult>, FailureReport>) + Sync),
    ) -> Result<Vec<Result<Vec<TimePointResult>, FailureReport>>, ParmaError> {
        let base_pipeline = Pipeline::new(self.config, detection_factor)?;
        let _span = mea_obs::span("parma/batch");
        let pool = WorkStealingPool::new(self.threads);
        let times: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
        let out = supervise(
            &pool,
            datasets.len(),
            sup,
            &|i, escalation, token| {
                let _item = mea_obs::span("parma/batch/item");
                let pipeline = if escalation == 0 {
                    base_pipeline.clone()
                } else {
                    Pipeline::new(
                        crate::supervisor::escalated(&self.config, escalation),
                        detection_factor,
                    )?
                };
                let t0 = Instant::now();
                let res = pipeline.run_supervised(&datasets[i], token, sup.solve_deadline);
                times
                    .lock()
                    .expect("batch timing lock")
                    .push((i, t0.elapsed().as_secs_f64() * 1e3));
                res
            },
            on_done,
        );
        record_supervised_obs(&times, &out, |r| r.is_err());
        Ok(out)
    }

    /// Streamed supervised session runs: like
    /// [`Self::run_sessions_supervised`], but datasets are *paths* —
    /// loading and validation overlap the solves. [`IoBudget::carve`]
    /// splits the thread budget, a [`StreamingLoader`] prefetches on the
    /// I/O side, and each compute worker rendezvouses with its dataset as
    /// its work item comes up.
    ///
    /// Per-item semantics match the preloaded path exactly: a file that
    /// fails ingest (unreadable, corrupt, non-physical values) is
    /// quarantined as `non_finite_input` with no retries, without
    /// disturbing the rest of the batch, and solve results over streamed
    /// inputs are bitwise identical to preloading. The loaded dataset is
    /// cached per item across retry attempts, so escalation never re-reads
    /// the file; a take interrupted by cancellation or a deadline is
    /// classified as such (never as bad input) and is *not* cached, so a
    /// later attempt retries the load.
    #[allow(clippy::type_complexity)]
    pub fn run_streamed_supervised(
        &self,
        paths: &[PathBuf],
        detection_factor: f64,
        sup: &SupervisorConfig,
        on_done: &(dyn Fn(usize, &Result<Vec<TimePointResult>, FailureReport>) + Sync),
    ) -> Result<Vec<Result<Vec<TimePointResult>, FailureReport>>, ParmaError> {
        let base_pipeline = Pipeline::new(self.config, detection_factor)?;
        let _span = mea_obs::span("parma/batch");
        let budget = IoBudget::carve(self.threads);
        let pool = WorkStealingPool::new(budget.compute);
        // Window: every compute worker can have one item in flight plus a
        // full I/O side of lookahead — bounded memory, never gates takes.
        let loader =
            StreamingLoader::start(paths.to_vec(), budget.io, budget.compute + budget.io + 1);
        let cache: Vec<OnceLock<Result<Arc<WetLabDataset>, IngestError>>> =
            paths.iter().map(|_| OnceLock::new()).collect();
        let times: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
        let out = supervise(
            &pool,
            paths.len(),
            sup,
            &|i, escalation, token| {
                let _item = mea_obs::span("parma/batch/item");
                let dataset =
                    loop {
                        if let Some(cached) = cache[i].get() {
                            break Arc::clone(cached.as_ref().map_err(|e| {
                                ParmaError::Dataset(e.clone().into_dataset_error())
                            })?);
                        }
                        let res = loader.take(i, token);
                        if let Err(IngestError::Interrupted(interrupt)) = &res {
                            // The attempt was stopped, not the file — report
                            // the interrupt and leave the slot uncached so a
                            // retry reloads.
                            return Err(match interrupt {
                                Interrupt::Cancelled => ParmaError::Cancelled { iterations: 0 },
                                Interrupt::TimedOut => ParmaError::Timeout {
                                    iterations: 0,
                                    partial: None,
                                },
                            });
                        }
                        let _ = cache[i].set(res);
                    };
                let pipeline = if escalation == 0 {
                    base_pipeline.clone()
                } else {
                    Pipeline::new(
                        crate::supervisor::escalated(&self.config, escalation),
                        detection_factor,
                    )?
                };
                let t0 = Instant::now();
                let res = pipeline.run_supervised(&dataset, token, sup.solve_deadline);
                times
                    .lock()
                    .expect("batch timing lock")
                    .push((i, t0.elapsed().as_secs_f64() * 1e3));
                res
            },
            on_done,
        );
        record_supervised_obs(&times, &out, |r| r.is_err());
        Ok(out)
    }
}

/// Emits the batch counters and the id-ordered wall-time series for a
/// supervised run: the same schema as the plain path (`parma.batch.items`,
/// `parma.batch.failures`, `parma.batch.item_ms`), with attempts beyond
/// the first contributing extra timing samples under the same item id.
fn record_supervised_obs<T>(
    times: &Mutex<Vec<(usize, f64)>>,
    out: &[Result<T, FailureReport>],
    failed: impl Fn(&Result<T, FailureReport>) -> bool,
) {
    let mut times = times.lock().expect("batch timing lock").clone();
    times.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let ms: Vec<f64> = times.into_iter().map(|(_, ms)| ms).collect();
    mea_obs::counter_add("parma.batch.items", out.len() as u64);
    mea_obs::counter_add(
        "parma.batch.failures",
        out.iter().filter(|r| failed(r)).count() as u64,
    );
    for &v in &ms {
        ITEM_MS.record(v);
    }
    mea_obs::record_series("parma.batch.item_ms", &ms);
}

/// Intra-solve width for one item: the budget's inner share, capped by
/// the grid's Betti parallelism bound β₁ (more workers than independent
/// cycles buys nothing — `crate::betti`). Skips the homology computation
/// entirely in the common items-saturated regime where the batch axis
/// already owns the whole budget.
fn intra_width(budget: &ThreadBudget, grid: MeaGrid) -> usize {
    if budget.inner <= 1 {
        1
    } else {
        budget.inner_capped(crate::betti::parallelism_bound(grid))
    }
}

/// One plan per distinct geometry in the batch (batches are usually
/// homogeneous, so this is almost always a single entry).
fn plan_set(grids: impl Iterator<Item = MeaGrid>) -> Vec<SolvePlan> {
    let mut plans: Vec<SolvePlan> = Vec::new();
    for grid in grids {
        if !plans.iter().any(|p| p.grid() == grid) {
            plans.push(SolvePlan::new(grid));
        }
    }
    plans
}

fn lookup(plans: &[SolvePlan], grid: MeaGrid) -> &SolvePlan {
    plans
        .iter()
        .find(|p| p.grid() == grid)
        .expect("every batch geometry has a plan by construction")
}

/// Batch-level observability: item/failure counters plus the id-ordered
/// per-item wall-time series (the schema the golden-trace test pins).
fn record_batch_obs(items: impl Iterator<Item = (bool, f64)>) {
    let mut times = Vec::new();
    let mut failures = 0u64;
    for (failed, ms) in items {
        times.push(ms);
        failures += failed as u64;
    }
    mea_obs::counter_add("parma.batch.items", times.len() as u64);
    mea_obs::counter_add("parma.batch.failures", failures);
    for &v in &times {
        ITEM_MS.record(v);
    }
    mea_obs::record_series("parma.batch.item_ms", &times);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, CrossingMatrix, ForwardSolver};

    fn measurements(n: usize, count: usize) -> Vec<ZMatrix> {
        (0..count)
            .map(|k| {
                let (truth, _) =
                    AnomalyConfig::default().generate(MeaGrid::square(n), 900 + k as u64);
                ForwardSolver::new(&truth).unwrap().solve_all()
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let zs = measurements(5, 6);
        let solver = ParmaSolver::new(ParmaConfig::default());
        let batch = BatchSolver::new(ParmaConfig::default(), 4).unwrap();
        let batched = batch.solve_all(&zs);
        assert_eq!(batched.len(), zs.len());
        for (z, out) in zs.iter().zip(&batched) {
            let sequential = solver.solve(z).unwrap();
            let b = out.as_ref().unwrap();
            assert_eq!(b.iterations, sequential.iterations);
            for (x, y) in b
                .resistors
                .as_slice()
                .iter()
                .zip(sequential.resistors.as_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        let zs = measurements(4, 5);
        let one = BatchSolver::new(ParmaConfig::default(), 1)
            .unwrap()
            .solve_all(&zs);
        for threads in [2usize, 3, 8] {
            let many = BatchSolver::new(ParmaConfig::default(), threads)
                .unwrap()
                .solve_all(&zs);
            for (a, b) in one.iter().zip(&many) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.iterations, b.iterations, "{threads} threads");
                for (x, y) in a.resistors.as_slice().iter().zip(b.resistors.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn surplus_threads_flow_to_the_intra_solve_axis_without_changing_bits() {
        // Few large items, many threads: ThreadBudget routes the surplus
        // to each item's structured factorization (dim = 2n−1 = 49 ≥
        // STRUCTURED_MIN_DIM at n = 25, so the auto dispatch takes the
        // structured path and the intra pool actually runs). Capped
        // iterations keep the test cheap; partial results must still be
        // bitwise identical to the single-thread run.
        let zs = measurements(25, 2);
        let cfg = ParmaConfig {
            max_iter: 3,
            tol: 1e-15,
            ..Default::default()
        };
        let bits_for = |threads: usize| -> Vec<Vec<u64>> {
            BatchSolver::new(cfg, threads)
                .unwrap()
                .solve_all(&zs)
                .into_iter()
                .map(|r| match r {
                    Ok(sol) => sol
                        .resistors
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect(),
                    Err(ParmaError::NoConvergence { partial, .. }) => {
                        partial.as_slice().iter().map(|v| v.to_bits()).collect()
                    }
                    Err(e) => panic!("unexpected failure: {e}"),
                })
                .collect()
        };
        assert_eq!(
            bits_for(1),
            bits_for(8),
            "intra-solve width must not change bits"
        );
    }

    #[test]
    fn failures_stay_in_their_slot() {
        let mut zs = measurements(3, 3);
        // Item 1 cannot converge in one iteration at an absurd tolerance.
        let cfg = ParmaConfig {
            max_iter: 1,
            tol: 1e-16,
            ..Default::default()
        };
        zs.insert(1, zs[0].clone());
        let out = BatchSolver::new(cfg, 2).unwrap().solve_all(&zs);
        assert_eq!(out.len(), 4);
        for res in &out {
            assert!(matches!(
                res,
                Err(ParmaError::NoConvergence { partial, .. }) if partial.is_physical()
            ));
        }
    }

    #[test]
    fn mixed_geometries_share_nothing_wrongly() {
        let mut zs = measurements(3, 2);
        zs.extend(measurements(5, 2));
        let solver = ParmaSolver::new(ParmaConfig::default());
        let out = BatchSolver::new(ParmaConfig::default(), 3)
            .unwrap()
            .solve_all(&zs);
        for (z, res) in zs.iter().zip(&out) {
            let b = res.as_ref().unwrap();
            assert_eq!(b.resistors.grid(), z.grid());
            let sequential = solver.solve(z).unwrap();
            assert_eq!(
                b.resistors.rel_max_diff(&sequential.resistors),
                0.0,
                "plan sharing must not leak across geometries"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = BatchSolver::new(ParmaConfig::default(), 4)
            .unwrap()
            .solve_all(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let cfg = ParmaConfig {
            damping: 2.0,
            ..Default::default()
        };
        assert!(matches!(
            BatchSolver::new(cfg, 4),
            Err(ParmaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_item_is_reported_not_panicked() {
        let mut zs = measurements(3, 2);
        zs.push(CrossingMatrix::filled(MeaGrid::square(3), -2.0));
        let out = BatchSolver::new(ParmaConfig::default(), 2)
            .unwrap()
            .solve_all(&zs);
        assert!(out[0].is_ok() && out[1].is_ok());
        assert!(matches!(out[2], Err(ParmaError::InvalidMeasurement(_))));
    }

    #[test]
    fn sessions_match_the_sequential_pipeline() {
        let datasets: Vec<WetLabDataset> = (0..3)
            .map(|k| {
                WetLabDataset::generate(MeaGrid::square(4), &AnomalyConfig::default(), 70 + k)
                    .unwrap()
            })
            .collect();
        let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        let out = batch.run_sessions(&datasets, 1.5).unwrap();
        assert_eq!(out.len(), 3);
        for (ds, res) in datasets.iter().zip(&out) {
            let batched = res.as_ref().unwrap();
            let sequential = pipeline.run(ds).unwrap();
            assert_eq!(batched.len(), sequential.len());
            for (b, s) in batched.iter().zip(&sequential) {
                assert_eq!(b.hours, s.hours);
                assert_eq!(b.solution.iterations, s.solution.iterations);
                for (x, y) in b
                    .solution
                    .resistors
                    .as_slice()
                    .iter()
                    .zip(s.solution.resistors.as_slice())
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn supervised_with_retries_disabled_matches_plain_bitwise() {
        // The determinism contract: no retries, no deadlines, no chaos →
        // the supervised path is the plain path, bit for bit.
        let zs = measurements(5, 4);
        let batch = BatchSolver::new(ParmaConfig::default(), 3).unwrap();
        let plain = batch.solve_all(&zs);
        let sup = SupervisorConfig {
            max_retries: 0,
            ..Default::default()
        };
        let supervised = batch.solve_all_supervised(&zs, &sup);
        for (a, b) in plain.iter().zip(&supervised) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.iterations, b.iterations);
            for (x, y) in a.resistors.as_slice().iter().zip(b.resistors.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn supervised_escalation_rescues_a_tight_budget() {
        // Base config too tight to converge (1 iteration) and recovery off:
        // the first attempt diverges, the escalated retries widen the
        // budget and arm the ladder until the solve lands.
        let zs = measurements(4, 3);
        let cfg = ParmaConfig {
            max_iter: 1,
            recovery: false,
            ..Default::default()
        };
        let batch = BatchSolver::new(cfg, 2).unwrap();
        let sup = SupervisorConfig {
            max_retries: 8,
            backoff: std::time::Duration::ZERO,
            ..Default::default()
        };
        let out = batch.solve_all_supervised(&zs, &sup);
        for (i, r) in out.iter().enumerate() {
            let sol = r
                .as_ref()
                .unwrap_or_else(|rep| panic!("item {i} should be rescued, got {rep}"));
            assert!(sol.residual <= ParmaConfig::default().tol);
        }
    }

    #[test]
    fn supervised_quarantines_bad_items_and_finishes_the_rest() {
        let mut zs = measurements(4, 3);
        zs.insert(1, CrossingMatrix::filled(MeaGrid::square(4), -2.0));
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        let out = batch.solve_all_supervised(&zs, &SupervisorConfig::default());
        assert_eq!(out.len(), 4);
        let report = out[1].as_ref().unwrap_err();
        assert_eq!(report.kind, crate::supervisor::FailureKind::NonFiniteInput);
        assert_eq!(report.item, 1);
        assert_eq!(report.attempts.len(), 1, "bad input gets no retries");
        for i in [0usize, 2, 3] {
            assert!(out[i].is_ok(), "healthy item {i} must complete");
        }
    }

    #[test]
    fn supervised_sessions_match_plain_sessions_bitwise() {
        let datasets: Vec<WetLabDataset> = (0..3)
            .map(|k| {
                WetLabDataset::generate(MeaGrid::square(4), &AnomalyConfig::default(), 80 + k)
                    .unwrap()
            })
            .collect();
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        let plain = batch.run_sessions(&datasets, 1.5).unwrap();
        let sup = SupervisorConfig {
            max_retries: 0,
            ..Default::default()
        };
        let done_count = std::sync::atomic::AtomicUsize::new(0);
        let supervised = batch
            .run_sessions_supervised(&datasets, 1.5, &sup, &|_, result| {
                assert!(result.is_ok());
                done_count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(done_count.load(std::sync::atomic::Ordering::SeqCst), 3);
        for (p, s) in plain.iter().zip(&supervised) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.len(), s.len());
            for (a, b) in p.iter().zip(s) {
                assert_eq!(a.solution.iterations, b.solution.iterations);
                for (x, y) in a
                    .solution
                    .resistors
                    .as_slice()
                    .iter()
                    .zip(b.solution.resistors.as_slice())
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn supervised_solve_deadline_quarantines_as_timeout() {
        let zs = measurements(4, 2);
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        let sup = SupervisorConfig {
            max_retries: 1,
            solve_deadline: Some(std::time::Duration::ZERO),
            backoff: std::time::Duration::ZERO,
            ..Default::default()
        };
        let out = batch.solve_all_supervised(&zs, &sup);
        for r in &out {
            let report = r.as_ref().unwrap_err();
            assert_eq!(report.kind, crate::supervisor::FailureKind::Timeout);
            assert_eq!(report.attempts.len(), 2, "timeout retries then quarantines");
        }
    }

    #[test]
    fn streamed_sessions_match_preloaded_sessions_bitwise() {
        // The tentpole's determinism gate: solving from a mixed
        // text/binary directory through the streaming loader is bitwise
        // identical to preloading every dataset first.
        let dir = std::env::temp_dir().join("parma-batch-streamed");
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        let mut datasets = Vec::new();
        for k in 0..6u64 {
            let ds = WetLabDataset::generate(MeaGrid::square(4), &AnomalyConfig::default(), 30 + k)
                .unwrap();
            let path = if k % 2 == 0 {
                let p = dir.join(format!("s{k}.pbin"));
                ds.save_binary(&p).unwrap();
                p
            } else {
                let p = dir.join(format!("s{k}.txt"));
                ds.save(&p).unwrap();
                p
            };
            paths.push(path);
            datasets.push(ds);
        }
        let batch = BatchSolver::new(ParmaConfig::default(), 3).unwrap();
        let sup = SupervisorConfig {
            max_retries: 0,
            ..Default::default()
        };
        let preloaded = batch
            .run_sessions_supervised(&datasets, 1.5, &sup, &|_, _| {})
            .unwrap();
        let streamed = batch
            .run_streamed_supervised(&paths, 1.5, &sup, &|_, r| assert!(r.is_ok()))
            .unwrap();
        assert_eq!(preloaded.len(), streamed.len());
        for (p, s) in preloaded.iter().zip(&streamed) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.len(), s.len());
            for (a, b) in p.iter().zip(s) {
                assert_eq!(a.solution.iterations, b.solution.iterations);
                for (x, y) in a
                    .solution
                    .resistors
                    .as_slice()
                    .iter()
                    .zip(b.solution.resistors.as_slice())
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_ingest_failures_quarantine_without_retries_or_spread() {
        let dir = std::env::temp_dir().join("parma-batch-streamed-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for k in 0..3u64 {
            let ds = WetLabDataset::generate(MeaGrid::square(4), &AnomalyConfig::default(), 40 + k)
                .unwrap();
            let p = dir.join(format!("s{k}.pbin"));
            ds.save_binary(&p).unwrap();
            paths.push(p);
        }
        // Item 1: flip a payload byte — the checksum pass must catch it.
        let corrupt = dir.join("corrupt.pbin");
        let mut bytes = std::fs::read(&paths[1]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        std::fs::write(&corrupt, &bytes).unwrap();
        paths[1] = corrupt;
        // Item 3: missing file.
        paths.push(dir.join("missing.pbin"));
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        let out = batch
            .run_streamed_supervised(&paths, 1.5, &SupervisorConfig::default(), &|_, _| {})
            .unwrap();
        assert_eq!(out.len(), 4);
        for i in [1usize, 3] {
            let report = out[i].as_ref().unwrap_err();
            assert_eq!(report.kind, crate::supervisor::FailureKind::NonFiniteInput);
            assert_eq!(report.attempts.len(), 1, "ingest failures get no retries");
        }
        for i in [0usize, 2] {
            assert!(out[i].is_ok(), "healthy item {i} must complete");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_detection_factor_fails_the_whole_call() {
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        assert!(matches!(
            batch.run_sessions(&[], 0.5),
            Err(ParmaError::InvalidConfig(_))
        ));
    }
}
