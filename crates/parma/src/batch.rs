//! Batched throughput solving: many measurements (or whole wet-lab
//! sessions) in flight at once over the work-stealing pool.
//!
//! The per-*pair* parallelism inside one solve (`crate::solver`) is fine-
//! grained and saturates quickly; when the workload is *many* devices —
//! a plate of MEA wells measured together, or a parameter sweep — the
//! right axis is one solve per work item. [`BatchSolver`] schedules whole
//! solves on `mea_parallel::WorkStealingPool`, forcing each inner solve to
//! [`Strategy::SingleThread`] so the outer pool owns every core and solves
//! never fight each other for threads.
//!
//! # Determinism
//!
//! Results come back in input order (`map_indexed` writes into per-index
//! slots), and each solve is bitwise identical to running
//! [`ParmaSolver::solve`] sequentially on the same measurement: the pair
//! updates inside a sweep are independent and reduced in id order
//! regardless of schedule, and the batch engine shares one immutable
//! [`SolvePlan`] per topology, which `solver::tests::
//! plan_reuse_is_bitwise_identical` pins down. Thread count and steal
//! interleavings affect wall time only, never bits.

use crate::config::ParmaConfig;
use crate::error::ParmaError;
use crate::pipeline::{Pipeline, TimePointResult};
use crate::solver::{ParmaSolution, ParmaSolver, SolvePlan, SolveScratch};
use mea_model::{MeaGrid, WetLabDataset, ZMatrix};
use mea_parallel::{Strategy, WorkStealingPool};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// One solve scratch per worker thread: items on the same worker share
    /// factorization buffers across solves. Carries no data-dependent
    /// state, so batch results stay bitwise independent of scheduling.
    static SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// A batch driver: one configuration, `threads` outer workers.
#[derive(Clone, Debug)]
pub struct BatchSolver {
    config: ParmaConfig,
    threads: usize,
}

impl BatchSolver {
    /// A batch solver with `threads` outer workers (at least one). The
    /// configuration's `strategy` field is ignored: inner solves always run
    /// single-threaded because the batch axis owns the cores. Returns
    /// [`ParmaError::InvalidConfig`] for out-of-range configurations.
    pub fn new(config: ParmaConfig, threads: usize) -> Result<Self, ParmaError> {
        config.validate()?;
        Ok(BatchSolver {
            config: config.with_strategy(Strategy::SingleThread),
            threads: threads.max(1),
        })
    }

    /// The (strategy-normalized) solver configuration.
    pub fn config(&self) -> &ParmaConfig {
        &self.config
    }

    /// Outer worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves every measurement, returning outcomes in input order.
    ///
    /// Per-topology [`SolvePlan`]s are built once and shared across items;
    /// each item gets its own obs span and its wall time lands in the
    /// `parma.batch.item_ms` series, id order, so traces stay comparable
    /// across runs.
    pub fn solve_all(&self, measurements: &[ZMatrix]) -> Vec<Result<ParmaSolution, ParmaError>> {
        let _span = mea_obs::span("parma/batch");
        let plans = plan_set(measurements.iter().map(|z| z.grid()));
        let solver = ParmaSolver::new(self.config);
        let pool = WorkStealingPool::new(self.threads);
        let timed: Vec<(Result<ParmaSolution, ParmaError>, f64)> =
            pool.map_indexed(measurements.len(), |i| {
                let _item = mea_obs::span("parma/batch/item");
                let z = &measurements[i];
                let plan = lookup(&plans, z.grid());
                let t0 = Instant::now();
                let out = SCRATCH.with(|scratch| {
                    solver.solve_with_scratch(plan, z, None, &mut scratch.borrow_mut())
                });
                (out, t0.elapsed().as_secs_f64() * 1e3)
            });
        record_batch_obs(timed.iter().map(|(out, ms)| (out.is_err(), *ms)));
        timed.into_iter().map(|(out, _)| out).collect()
    }

    /// Runs the full measurement-to-detection pipeline over every session,
    /// one session per work item, results in input order.
    ///
    /// Time points *within* a session stay sequential — each warm-starts
    /// from the previous solution — so the parallel axis is across
    /// sessions, matching how a plate of wells is processed. The outer
    /// `Err` is an up-front configuration failure; per-session failures
    /// come back in their slot without disturbing the rest of the batch.
    #[allow(clippy::type_complexity)]
    pub fn run_sessions(
        &self,
        datasets: &[WetLabDataset],
        detection_factor: f64,
    ) -> Result<Vec<Result<Vec<TimePointResult>, ParmaError>>, ParmaError> {
        let pipeline = Pipeline::new(self.config, detection_factor)?;
        let _span = mea_obs::span("parma/batch");
        let pool = WorkStealingPool::new(self.threads);
        let timed: Vec<(Result<Vec<TimePointResult>, ParmaError>, f64)> =
            pool.map_indexed(datasets.len(), |i| {
                let _item = mea_obs::span("parma/batch/item");
                let t0 = Instant::now();
                let out = pipeline.run(&datasets[i]);
                (out, t0.elapsed().as_secs_f64() * 1e3)
            });
        record_batch_obs(timed.iter().map(|(out, ms)| (out.is_err(), *ms)));
        Ok(timed.into_iter().map(|(out, _)| out).collect())
    }
}

/// One plan per distinct geometry in the batch (batches are usually
/// homogeneous, so this is almost always a single entry).
fn plan_set(grids: impl Iterator<Item = MeaGrid>) -> Vec<SolvePlan> {
    let mut plans: Vec<SolvePlan> = Vec::new();
    for grid in grids {
        if !plans.iter().any(|p| p.grid() == grid) {
            plans.push(SolvePlan::new(grid));
        }
    }
    plans
}

fn lookup(plans: &[SolvePlan], grid: MeaGrid) -> &SolvePlan {
    plans
        .iter()
        .find(|p| p.grid() == grid)
        .expect("every batch geometry has a plan by construction")
}

/// Batch-level observability: item/failure counters plus the id-ordered
/// per-item wall-time series (the schema the golden-trace test pins).
fn record_batch_obs(items: impl Iterator<Item = (bool, f64)>) {
    let mut times = Vec::new();
    let mut failures = 0u64;
    for (failed, ms) in items {
        times.push(ms);
        failures += failed as u64;
    }
    mea_obs::counter_add("parma.batch.items", times.len() as u64);
    mea_obs::counter_add("parma.batch.failures", failures);
    mea_obs::record_series("parma.batch.item_ms", &times);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, CrossingMatrix, ForwardSolver};

    fn measurements(n: usize, count: usize) -> Vec<ZMatrix> {
        (0..count)
            .map(|k| {
                let (truth, _) =
                    AnomalyConfig::default().generate(MeaGrid::square(n), 900 + k as u64);
                ForwardSolver::new(&truth).unwrap().solve_all()
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let zs = measurements(5, 6);
        let solver = ParmaSolver::new(ParmaConfig::default());
        let batch = BatchSolver::new(ParmaConfig::default(), 4).unwrap();
        let batched = batch.solve_all(&zs);
        assert_eq!(batched.len(), zs.len());
        for (z, out) in zs.iter().zip(&batched) {
            let sequential = solver.solve(z).unwrap();
            let b = out.as_ref().unwrap();
            assert_eq!(b.iterations, sequential.iterations);
            for (x, y) in b
                .resistors
                .as_slice()
                .iter()
                .zip(sequential.resistors.as_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        let zs = measurements(4, 5);
        let one = BatchSolver::new(ParmaConfig::default(), 1)
            .unwrap()
            .solve_all(&zs);
        for threads in [2usize, 3, 8] {
            let many = BatchSolver::new(ParmaConfig::default(), threads)
                .unwrap()
                .solve_all(&zs);
            for (a, b) in one.iter().zip(&many) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.iterations, b.iterations, "{threads} threads");
                for (x, y) in a.resistors.as_slice().iter().zip(b.resistors.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn failures_stay_in_their_slot() {
        let mut zs = measurements(3, 3);
        // Item 1 cannot converge in one iteration at an absurd tolerance.
        let cfg = ParmaConfig {
            max_iter: 1,
            tol: 1e-16,
            ..Default::default()
        };
        zs.insert(1, zs[0].clone());
        let out = BatchSolver::new(cfg, 2).unwrap().solve_all(&zs);
        assert_eq!(out.len(), 4);
        for res in &out {
            assert!(matches!(
                res,
                Err(ParmaError::NoConvergence { partial, .. }) if partial.is_physical()
            ));
        }
    }

    #[test]
    fn mixed_geometries_share_nothing_wrongly() {
        let mut zs = measurements(3, 2);
        zs.extend(measurements(5, 2));
        let solver = ParmaSolver::new(ParmaConfig::default());
        let out = BatchSolver::new(ParmaConfig::default(), 3)
            .unwrap()
            .solve_all(&zs);
        for (z, res) in zs.iter().zip(&out) {
            let b = res.as_ref().unwrap();
            assert_eq!(b.resistors.grid(), z.grid());
            let sequential = solver.solve(z).unwrap();
            assert_eq!(
                b.resistors.rel_max_diff(&sequential.resistors),
                0.0,
                "plan sharing must not leak across geometries"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = BatchSolver::new(ParmaConfig::default(), 4)
            .unwrap()
            .solve_all(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let cfg = ParmaConfig {
            damping: 2.0,
            ..Default::default()
        };
        assert!(matches!(
            BatchSolver::new(cfg, 4),
            Err(ParmaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_item_is_reported_not_panicked() {
        let mut zs = measurements(3, 2);
        zs.push(CrossingMatrix::filled(MeaGrid::square(3), -2.0));
        let out = BatchSolver::new(ParmaConfig::default(), 2)
            .unwrap()
            .solve_all(&zs);
        assert!(out[0].is_ok() && out[1].is_ok());
        assert!(matches!(out[2], Err(ParmaError::InvalidMeasurement(_))));
    }

    #[test]
    fn sessions_match_the_sequential_pipeline() {
        let datasets: Vec<WetLabDataset> = (0..3)
            .map(|k| {
                WetLabDataset::generate(MeaGrid::square(4), &AnomalyConfig::default(), 70 + k)
                    .unwrap()
            })
            .collect();
        let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        let out = batch.run_sessions(&datasets, 1.5).unwrap();
        assert_eq!(out.len(), 3);
        for (ds, res) in datasets.iter().zip(&out) {
            let batched = res.as_ref().unwrap();
            let sequential = pipeline.run(ds).unwrap();
            assert_eq!(batched.len(), sequential.len());
            for (b, s) in batched.iter().zip(&sequential) {
                assert_eq!(b.hours, s.hours);
                assert_eq!(b.solution.iterations, s.solution.iterations);
                for (x, y) in b
                    .solution
                    .resistors
                    .as_slice()
                    .iter()
                    .zip(s.solution.resistors.as_slice())
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn bad_detection_factor_fails_the_whole_call() {
        let batch = BatchSolver::new(ParmaConfig::default(), 2).unwrap();
        assert!(matches!(
            batch.run_sessions(&[], 0.5),
            Err(ParmaError::InvalidConfig(_))
        ));
    }
}
