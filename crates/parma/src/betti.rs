//! Betti-aware work decomposition — the bridge from §III's homology to
//! §IV's parallel schedules.
//!
//! The first Betti number of the MEA complex counts its independent
//! Kirchhoff cycles: `β₁ = (m−1)(n−1)`. Parma's runtime work units (pairs
//! and per-pair constraint categories) inherit their independence from
//! those cycles; this module computes the bound from the actual homology
//! (not the closed form) and manufactures the corresponding
//! [`WorkItem`] lists for the formation and solver sweeps.

use mea_model::MeaGrid;
use mea_parallel::{WorkItem, CATEGORY_COUNT};
use mea_topology::{betti_numbers, mea_complex};

/// The intrinsic parallelism of a device: `β₁` of the joint-level
/// simplicial complex.
///
/// Equal to `(rows−1)(cols−1)` — the paper's `(n−1)^k` for `k = 2`. Up to
/// 2,500 crossings the value is *derived* by actually computing the
/// homology (GF(2) boundary ranks); beyond that the closed form is used —
/// the two are proven equal on the computable range by test, and the GF(2)
/// elimination on a 100×100 device's 20,000×29,800 boundary matrix would
/// dominate formation time for no information gain.
pub fn parallelism_bound(grid: MeaGrid) -> usize {
    if grid.crossings() <= 2_500 {
        let complex = mea_complex::mea_to_complex(grid.rows(), grid.cols());
        let betti = betti_numbers(&complex);
        betti.get(1).copied().unwrap_or(0)
    } else {
        (grid.rows() - 1) * (grid.cols() - 1)
    }
}

/// A Betti-aware schedule: work items for the two sweep granularities
/// Parma uses.
#[derive(Clone, Debug)]
pub struct BettiSchedule {
    grid: MeaGrid,
    bound: usize,
}

impl BettiSchedule {
    /// Builds the schedule (computes the homology once).
    pub fn new(grid: MeaGrid) -> Self {
        BettiSchedule {
            grid,
            bound: parallelism_bound(grid),
        }
    }

    /// The geometry.
    pub fn grid(&self) -> MeaGrid {
        self.grid
    }

    /// `β₁` — the maximum useful fine-grained parallelism.
    pub fn parallelism_bound(&self) -> usize {
        self.bound
    }

    /// Caps a requested worker count at the useful parallelism (requesting
    /// more workers than independent cycles wastes threads, the effect the
    /// paper observes at small `n`).
    pub fn effective_workers(&self, requested: usize) -> usize {
        requested.clamp(1, self.bound.max(1))
    }

    /// One work item per endpoint pair (the solver sweep granularity).
    /// Costs are uniform: pair updates are O(1) after the shared
    /// factorization.
    pub fn pair_items(&self) -> Vec<WorkItem> {
        (0..self.grid.pairs())
            .map(|id| WorkItem {
                id,
                category: id % CATEGORY_COUNT,
                cost: 1,
            })
            .collect()
    }

    /// One work item per (pair, constraint category) — the formation
    /// granularity. `id = pair·4 + category`; costs carry the §IV-C skew:
    /// the two intermediate categories are `(n−1)`-fold heavier.
    pub fn formation_items(&self) -> Vec<WorkItem> {
        let (rows, cols) = (self.grid.rows(), self.grid.cols());
        // Expected term counts per category block (see FormationCensus).
        let costs = [
            cols as u64,                // source: n terms
            rows as u64,                // destination: m terms
            ((cols - 1) * rows) as u64, // Ua block: (n−1)·m terms
            ((rows - 1) * cols) as u64, // Ub block: (m−1)·n terms
        ];
        (0..self.grid.pairs() * CATEGORY_COUNT)
            .map(|id| {
                let category = id % CATEGORY_COUNT;
                WorkItem {
                    id,
                    category,
                    cost: costs[category].max(1),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_matches_closed_form() {
        for (m, n) in [(2usize, 2usize), (3, 3), (4, 6), (5, 5)] {
            assert_eq!(parallelism_bound(MeaGrid::new(m, n)), (m - 1) * (n - 1));
        }
    }

    #[test]
    fn single_wire_pair_has_no_parallel_cycles() {
        assert_eq!(parallelism_bound(MeaGrid::square(1)), 0);
        let s = BettiSchedule::new(MeaGrid::square(1));
        assert_eq!(s.effective_workers(16), 1);
    }

    #[test]
    fn effective_workers_clamps_to_bound() {
        let s = BettiSchedule::new(MeaGrid::square(4)); // β₁ = 9
        assert_eq!(s.effective_workers(4), 4);
        assert_eq!(s.effective_workers(100), 9);
        assert_eq!(s.effective_workers(0), 1);
    }

    #[test]
    fn pair_items_are_dense_and_uniform() {
        let s = BettiSchedule::new(MeaGrid::square(3));
        let items = s.pair_items();
        assert_eq!(items.len(), 9);
        for (i, w) in items.iter().enumerate() {
            assert_eq!(w.id, i);
            assert_eq!(w.cost, 1);
        }
    }

    #[test]
    fn formation_items_carry_the_category_skew() {
        let s = BettiSchedule::new(MeaGrid::square(5));
        let items = s.formation_items();
        assert_eq!(items.len(), 25 * 4);
        // Intermediate blocks must be heavier than source/destination.
        assert!(items[2].cost > items[0].cost);
        assert!(items[3].cost > items[1].cost);
        // Category pattern repeats per pair.
        assert_eq!(items[4].category, 0);
        assert_eq!(items[7].category, 3);
    }
}
