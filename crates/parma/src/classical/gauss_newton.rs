//! Dense Gauss-Newton on the conductance least-squares problem
//! `min ‖Z_model(g) − Z_meas‖²` — the reference among the classical
//! methods (Landweber and Tikhonov are its gradient and regularized
//! variants).

use crate::classical::jacobian::{g_to_resistors, resistors_to_g, FullJacobian};
use crate::error::ParmaError;
use mea_model::{ResistorGrid, ZMatrix};

/// Options for [`gauss_newton`].
#[derive(Clone, Copy, Debug)]
pub struct GaussNewtonOptions {
    /// Convergence target on the relative impedance mismatch.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Levenberg ridge added to `JᵀJ` (0 = pure Gauss-Newton; a small
    /// positive value rescues near-singular steps).
    pub levenberg: f64,
    /// Conductance floor (mS) keeping iterates physical.
    pub g_floor: f64,
}

impl Default for GaussNewtonOptions {
    fn default() -> Self {
        GaussNewtonOptions {
            tol: 1e-10,
            max_iter: 50,
            levenberg: 0.0,
            g_floor: 1e-12,
        }
    }
}

/// Runs Gauss-Newton from `initial`, returning the recovered map.
pub fn gauss_newton(
    z: &ZMatrix,
    initial: &ResistorGrid,
    opts: &GaussNewtonOptions,
) -> Result<ResistorGrid, ParmaError> {
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    if initial.grid() != z.grid() || !initial.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "initial map must match the grid and be physical".into(),
        ));
    }
    let grid = z.grid();
    let mut g = resistors_to_g(initial);
    let mut last_residual = f64::INFINITY;
    // One LU factor refactored in place per iteration, plus a step buffer,
    // instead of a fresh factorization allocation per normal-equation solve.
    let mut lu = mea_linalg::LuFactor::empty();
    let mut delta = vec![0.0; g.len()];
    for it in 0..opts.max_iter {
        let r = g_to_resistors(grid, &g, opts.g_floor);
        let fj = FullJacobian::assemble(&r, z)?;
        let rel = max_rel(&fj.residual, z);
        if rel <= opts.tol {
            return Ok(r);
        }
        last_residual = rel;
        // Solve (JᵀJ + λI)·δ = −Jᵀr.
        let mut normal = fj.normal_matrix();
        if opts.levenberg > 0.0 {
            for d in 0..normal.rows() {
                normal[(d, d)] += opts.levenberg;
            }
        }
        let rhs: Vec<f64> = fj.gradient().into_iter().map(|v| -v).collect();
        lu.refactor_from(&normal).map_err(ParmaError::Linalg)?;
        lu.solve_into(&rhs, &mut delta);
        // Damped line step: halve until the iterate stays physical.
        let mut step = 1.0;
        loop {
            let candidate: Vec<f64> = g
                .iter()
                .zip(&delta)
                .map(|(gi, di)| gi + step * di)
                .collect();
            if candidate.iter().all(|v| *v > opts.g_floor) {
                g = candidate;
                break;
            }
            step *= 0.5;
            if step < 1e-6 {
                // Clamp instead of shrinking forever.
                g = g
                    .iter()
                    .zip(&delta)
                    .map(|(gi, di)| (gi + di).max(opts.g_floor))
                    .collect();
                break;
            }
        }
        let _ = it;
    }
    let r = g_to_resistors(grid, &g, opts.g_floor);
    let fj = FullJacobian::assemble(&r, z)?;
    let rel = max_rel(&fj.residual, z);
    if rel <= opts.tol {
        Ok(r)
    } else {
        Err(ParmaError::NoConvergence {
            iterations: opts.max_iter,
            residual: rel.min(last_residual),
            partial: r,
        })
    }
}

fn max_rel(residual: &[f64], z: &ZMatrix) -> f64 {
    residual
        .iter()
        .zip(z.as_slice())
        .fold(0.0f64, |m, (r, zm)| m.max(r.abs() / zm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, ForwardSolver, MeaGrid};

    fn setup(n: usize, seed: u64) -> (ResistorGrid, ZMatrix) {
        let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        (truth, z)
    }

    #[test]
    fn converges_quadratically_on_clean_data() {
        let (truth, z) = setup(5, 61);
        // Seed: measured Z scaled to the uniform-mode estimate.
        let kappa = 25.0 / 9.0;
        let mut seed = z.clone();
        for v in seed.as_mut_slice() {
            *v *= kappa;
        }
        let got = gauss_newton(&z, &seed, &GaussNewtonOptions::default()).unwrap();
        assert!(
            got.rel_max_diff(&truth) < 1e-7,
            "rel error {}",
            got.rel_max_diff(&truth)
        );
    }

    #[test]
    fn agrees_with_the_parma_fixed_point() {
        let (_, z) = setup(4, 62);
        let kappa = 16.0 / 7.0;
        let mut seed = z.clone();
        for v in seed.as_mut_slice() {
            *v *= kappa;
        }
        let gn = gauss_newton(&z, &seed, &GaussNewtonOptions::default()).unwrap();
        let fp = crate::solver::ParmaSolver::new(crate::config::ParmaConfig::default())
            .solve(&z)
            .unwrap();
        assert!(gn.rel_max_diff(&fp.resistors) < 1e-6);
    }

    #[test]
    fn levenberg_ridge_still_converges() {
        let (truth, z) = setup(4, 63);
        let opts = GaussNewtonOptions {
            levenberg: 1e-9,
            max_iter: 80,
            ..Default::default()
        };
        let got = gauss_newton(&z, &z, &opts).unwrap();
        assert!(got.rel_max_diff(&truth) < 1e-5);
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let (_, z) = setup(4, 64);
        let opts = GaussNewtonOptions {
            max_iter: 1,
            tol: 1e-14,
            ..Default::default()
        };
        match gauss_newton(&z, &z, &opts) {
            Err(ParmaError::NoConvergence { partial, .. }) => assert!(partial.is_physical()),
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let (truth, z) = setup(3, 65);
        let bad = mea_model::CrossingMatrix::filled(MeaGrid::square(3), -1.0);
        assert!(gauss_newton(&bad, &truth, &GaussNewtonOptions::default()).is_err());
        let wrong_grid = mea_model::CrossingMatrix::filled(MeaGrid::square(4), 1000.0);
        assert!(gauss_newton(&z, &wrong_grid, &GaussNewtonOptions::default()).is_err());
    }
}
