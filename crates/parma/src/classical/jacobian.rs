//! Dense sensitivity-Jacobian assembly and ill-posedness diagnostics.

use mea_linalg::{DenseMatrix, LinalgError};
use mea_model::{ForwardSolver, MeaGrid, ResistorGrid, ZMatrix};

/// The full dense Jacobian `J[pair][crossing] = ∂Z_ij/∂g_kl` of the forward
/// map at a resistor estimate, with the matching residual vector.
#[derive(Clone, Debug)]
pub struct FullJacobian {
    grid: MeaGrid,
    /// `pairs × crossings` sensitivity matrix (all entries ≤ 0).
    pub j: DenseMatrix,
    /// Residual `Z_model − Z_meas`, pair-major, kΩ.
    pub residual: Vec<f64>,
}

impl FullJacobian {
    /// Assembles `J` and the residual at estimate `r` against measured `z`.
    /// One forward factorization serves the whole assembly; total cost
    /// `O((m+n)³ + (mn)²)`.
    pub fn assemble(r: &ResistorGrid, z: &ZMatrix) -> Result<Self, LinalgError> {
        let grid = r.grid();
        assert_eq!(grid, z.grid(), "grid mismatch");
        let fs = ForwardSolver::new(r)?;
        let pairs = grid.pairs();
        let crossings = grid.crossings();
        let mut j = DenseMatrix::zeros(pairs, crossings);
        let mut residual = Vec::with_capacity(pairs);
        for (p, (i, jj)) in grid.pair_iter().enumerate() {
            let sens = fs.sensitivity(i, jj);
            j.row_mut(p).copy_from_slice(sens.as_slice());
            residual.push(fs.effective_resistance(i, jj) - z.get(i, jj));
        }
        Ok(FullJacobian { grid, j, residual })
    }

    /// The geometry.
    pub fn grid(&self) -> MeaGrid {
        self.grid
    }

    /// `Jᵀ·r` — the least-squares gradient direction (Landweber's step).
    pub fn gradient(&self) -> Vec<f64> {
        self.j.transpose().mul_vec(&self.residual)
    }

    /// A row-scaled copy: row `p` of `J` and `residual[p]` are both
    /// multiplied by `scales[p]`. With `scales = 1/Z_meas` this converts
    /// the least squares to *relative* residuals, which balances the rows
    /// and is what makes the Landweber iteration practical.
    pub fn row_scaled(&self, scales: &[f64]) -> FullJacobian {
        assert_eq!(scales.len(), self.j.rows(), "scale length mismatch");
        let mut j = self.j.clone();
        for (p, &s) in scales.iter().enumerate() {
            for v in j.row_mut(p) {
                *v *= s;
            }
        }
        let residual = self
            .residual
            .iter()
            .zip(scales)
            .map(|(r, s)| r * s)
            .collect();
        FullJacobian {
            grid: self.grid,
            j,
            residual,
        }
    }

    /// Mean diagonal entry of `JᵀJ` — the natural unit for relative
    /// regularization weights.
    pub fn mean_normal_diagonal(&self) -> f64 {
        let cols = self.j.cols();
        let mut acc = 0.0;
        for p in 0..self.j.rows() {
            for v in self.j.row(p) {
                acc += v * v;
            }
        }
        acc / cols as f64
    }

    /// The Gauss-Newton normal matrix `JᵀJ` (symmetric PSD).
    pub fn normal_matrix(&self) -> DenseMatrix {
        self.j.transpose().mul(&self.j)
    }

    /// Largest singular value of `J` (√ of the top `JᵀJ` eigenvalue, by
    /// power iteration).
    pub fn sigma_max(&self, iterations: usize) -> f64 {
        let jtj = self.normal_matrix();
        mea_linalg::power_iteration(&jtj, iterations, 1e-12)
            .map(|e| e.value.max(0.0).sqrt())
            .unwrap_or(0.0)
    }

    /// Estimated 2-norm condition number `σ_max/σ_min` of `J`, the
    /// quantitative form of the paper's ill-posedness claim. Returns
    /// `f64::INFINITY` when the normal matrix is numerically singular.
    pub fn condition_estimate(&self, iterations: usize) -> f64 {
        let jtj = self.normal_matrix();
        mea_linalg::condition_estimate(&jtj, iterations, 1e-12).sqrt()
    }
}

/// Converts a conductance vector to a resistor map, clamping to the
/// physical domain (shared by the classical iterations).
pub(crate) fn g_to_resistors(grid: MeaGrid, g: &[f64], g_floor: f64) -> ResistorGrid {
    let values = g.iter().map(|&gi| 1.0 / gi.max(g_floor)).collect();
    ResistorGrid::from_vec(grid, values)
}

/// Extracts the conductance vector of a resistor map.
pub(crate) fn resistors_to_g(r: &ResistorGrid) -> Vec<f64> {
    r.as_slice().iter().map(|&ri| 1.0 / ri).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, CrossingMatrix};

    fn setup(n: usize, seed: u64) -> (ResistorGrid, ZMatrix) {
        let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        (truth, z)
    }

    #[test]
    fn residual_vanishes_at_truth() {
        let (truth, z) = setup(4, 1);
        let fj = FullJacobian::assemble(&truth, &z).unwrap();
        for r in &fj.residual {
            assert!(r.abs() < 1e-9);
        }
        assert_eq!(fj.j.rows(), 16);
        assert_eq!(fj.j.cols(), 16);
    }

    #[test]
    fn jacobian_entries_are_nonpositive() {
        let (truth, z) = setup(3, 2);
        let fj = FullJacobian::assemble(&truth, &z).unwrap();
        for p in 0..fj.j.rows() {
            for c in 0..fj.j.cols() {
                assert!(fj.j[(p, c)] <= 0.0);
            }
        }
    }

    #[test]
    fn gradient_is_jt_r() {
        let (truth, mut z) = setup(3, 3);
        // Perturb one measurement to get a nonzero residual.
        z.set(1, 1, z.get(1, 1) * 1.1);
        let fj = FullJacobian::assemble(&truth, &z).unwrap();
        let grad = fj.gradient();
        let manual = fj.j.transpose().mul_vec(&fj.residual);
        assert_eq!(grad, manual);
        assert!(mea_linalg::vec_ops::norm2(&grad) > 0.0);
    }

    #[test]
    fn condition_number_grows_with_scale() {
        // The measurable form of the paper's ill-posedness claim: the
        // sensitivity matrix becomes worse conditioned as the array grows.
        let (t3, z3) = setup(3, 4);
        let (t6, z6) = setup(6, 4);
        let c3 = FullJacobian::assemble(&t3, &z3)
            .unwrap()
            .condition_estimate(60);
        let c6 = FullJacobian::assemble(&t6, &z6)
            .unwrap()
            .condition_estimate(60);
        assert!(c3.is_finite() && c3 > 1.0);
        assert!(c6 > c3, "conditioning must degrade with n: {c3} vs {c6}");
    }

    #[test]
    fn sigma_max_positive_and_consistent() {
        let (truth, z) = setup(4, 5);
        let fj = FullJacobian::assemble(&truth, &z).unwrap();
        let s = fj.sigma_max(50);
        assert!(s > 0.0);
        // σ_max² must be ≤ the Frobenius norm² of J.
        assert!(s * s <= fj.j.norm_fro().powi(2) + 1e-9);
    }

    #[test]
    fn g_conversions_roundtrip() {
        let grid = MeaGrid::square(2);
        let r = CrossingMatrix::from_vec(grid, vec![100.0, 200.0, 400.0, 800.0]);
        let g = resistors_to_g(&r);
        let back = g_to_resistors(grid, &g, 1e-12);
        assert!(back.rel_max_diff(&r) < 1e-15);
    }
}
