//! The Landweber iteration (the paper's ref [10] family): plain gradient
//! descent on the conductance least squares,
//! `g ← g − τ·Jᵀ(Z_model − Z_meas)`, with the step `τ < 2/σ_max²` required
//! for convergence. Slow by design — its per-iteration cost is low but its
//! iteration count is governed by the (bad) conditioning of `J`, which is
//! exactly the behaviour the paper cites it for.

use crate::classical::jacobian::{g_to_resistors, resistors_to_g, FullJacobian};
use crate::error::ParmaError;
use mea_model::{ResistorGrid, ZMatrix};

/// Options for [`landweber`].
#[derive(Clone, Copy, Debug)]
pub struct LandweberOptions {
    /// Step as a fraction of the stability limit `2/σ_max²` (must be in
    /// (0, 1); 0.9 is a sensible default).
    pub step_fraction: f64,
    /// Iteration budget (Landweber needs many).
    pub max_iter: usize,
    /// Convergence target on the relative impedance mismatch.
    pub tol: f64,
    /// Conductance floor (mS).
    pub g_floor: f64,
    /// Power-iteration count for the σ_max estimate.
    pub sigma_iters: usize,
}

impl Default for LandweberOptions {
    fn default() -> Self {
        LandweberOptions {
            step_fraction: 0.9,
            max_iter: 20_000,
            tol: 1e-8,
            g_floor: 1e-12,
            sigma_iters: 40,
        }
    }
}

/// Outcome of a Landweber run (iteration count matters for the
/// conditioning story, so it is reported).
#[derive(Clone, Debug)]
pub struct LandweberOutcome {
    /// The recovered map.
    pub resistors: ResistorGrid,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative impedance mismatch.
    pub residual: f64,
}

/// Runs the Landweber iteration from `initial`.
pub fn landweber(
    z: &ZMatrix,
    initial: &ResistorGrid,
    opts: &LandweberOptions,
) -> Result<LandweberOutcome, ParmaError> {
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    if initial.grid() != z.grid() || !initial.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "initial map must match the grid and be physical".into(),
        ));
    }
    if !(opts.step_fraction > 0.0 && opts.step_fraction < 1.0) {
        return Err(ParmaError::InvalidMeasurement(
            "step_fraction must be in (0, 1)".into(),
        ));
    }
    let grid = z.grid();
    let mut g = resistors_to_g(initial);
    // Work with *relative* residuals (rows scaled by 1/Z_meas): the raw
    // rows span orders of magnitude and make the stability-limited step
    // uselessly small. The step comes from the current scaled Jacobian's
    // spectral estimate and is additionally shrunk whenever the residual
    // norm fails to decrease (the spectrum grows along the iteration, and
    // a fixed initial step eventually overshoots into a limit cycle).
    let inv_z: Vec<f64> = z.as_slice().iter().map(|zi| 1.0 / zi).collect();
    let mut shrink = 1.0f64;
    let mut last_norm = f64::INFINITY;
    let mut last_rel = f64::INFINITY;
    for it in 0..opts.max_iter {
        let r = g_to_resistors(grid, &g, opts.g_floor);
        let fj = FullJacobian::assemble(&r, z)?.row_scaled(&inv_z);
        // The scaled residual IS the relative mismatch.
        let rel = fj.residual.iter().fold(0.0f64, |m, res| m.max(res.abs()));
        if rel <= opts.tol {
            return Ok(LandweberOutcome {
                resistors: r,
                iterations: it,
                residual: rel,
            });
        }
        last_rel = rel;
        let norm = mea_linalg::vec_ops::norm2(&fj.residual);
        if norm > last_norm {
            shrink *= 0.5;
            if shrink < 1e-8 {
                break; // step has collapsed: report no convergence below
            }
        }
        last_norm = norm;
        let sigma = fj.sigma_max(opts.sigma_iters);
        if sigma <= 0.0 {
            return Err(ParmaError::InvalidMeasurement(
                "degenerate sensitivity".into(),
            ));
        }
        let tau = shrink * opts.step_fraction * 2.0 / (sigma * sigma);
        let grad = fj.gradient();
        for (gi, gr) in g.iter_mut().zip(&grad) {
            *gi = (*gi - tau * gr).max(opts.g_floor);
        }
    }
    let r = g_to_resistors(grid, &g, opts.g_floor);
    Err(ParmaError::NoConvergence {
        iterations: opts.max_iter,
        residual: last_rel,
        partial: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, ForwardSolver, MeaGrid};

    fn setup(n: usize, seed: u64) -> (ResistorGrid, ZMatrix) {
        let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        (truth, z)
    }

    fn kappa_seed(z: &ZMatrix) -> ResistorGrid {
        let grid = z.grid();
        let kappa = (grid.rows() * grid.cols()) as f64 / (grid.rows() + grid.cols() - 1) as f64;
        let mut seed = z.clone();
        for v in seed.as_mut_slice() {
            *v *= kappa;
        }
        seed
    }

    #[test]
    fn converges_eventually_on_small_arrays() {
        let (truth, z) = setup(3, 81);
        let out = landweber(&z, &kappa_seed(&z), &LandweberOptions::default()).unwrap();
        assert!(out.residual <= 1e-8);
        assert!(
            out.resistors.rel_max_diff(&truth) < 1e-4,
            "rel error {}",
            out.resistors.rel_max_diff(&truth)
        );
    }

    #[test]
    fn needs_more_iterations_than_parma() {
        // The conditioning story: the gradient method pays per-iteration
        // cost O(n⁴) (full Jacobian assembly plus a spectral estimate) AND
        // needs more iterations than the Parma fixed point, whose sweeps
        // are O(n³).
        let (_, z) = setup(4, 82);
        let lw = landweber(
            &z,
            &kappa_seed(&z),
            &LandweberOptions {
                tol: 1e-6,
                ..Default::default()
            },
        )
        .unwrap();
        let cfg = crate::config::ParmaConfig {
            tol: 1e-6,
            ..Default::default()
        };
        let fp = crate::solver::ParmaSolver::new(cfg).solve(&z).unwrap();
        assert!(
            lw.iterations > fp.iterations,
            "Landweber {} vs Parma {}",
            lw.iterations,
            fp.iterations
        );
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let (_, z) = setup(4, 83);
        let opts = LandweberOptions {
            max_iter: 3,
            tol: 1e-14,
            ..Default::default()
        };
        match landweber(&z, &kappa_seed(&z), &opts) {
            Err(ParmaError::NoConvergence {
                iterations,
                partial,
                ..
            }) => {
                assert_eq!(iterations, 3);
                assert!(partial.is_physical());
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_step_fraction() {
        let (truth, z) = setup(3, 84);
        for bad in [0.0, 1.0, 1.5] {
            let opts = LandweberOptions {
                step_fraction: bad,
                ..Default::default()
            };
            assert!(landweber(&z, &truth, &opts).is_err(), "step {bad}");
        }
    }
}
