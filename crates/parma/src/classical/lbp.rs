//! Linear back projection (the paper's ref [11] family): the one-shot,
//! no-iteration estimate used by fast tomography pipelines.
//!
//! Starting from a uniform reference map `g_ref`, the measured deviation
//! is smeared back through the normalized transpose sensitivity:
//!
//! ```text
//! Δ(1/z) = 1/Z_meas − 1/Z_ref
//! g_est  = g_ref · (1 + (normalize(|J|ᵀ) · scale(Δ)))
//! ```
//!
//! LBP localizes anomalies well (its raison d'être) but its magnitudes are
//! qualitative at best — both facts are pinned by tests. It is the extreme
//! point of the speed/accuracy spectrum the paper's related work spans.

use crate::classical::jacobian::FullJacobian;
use crate::error::ParmaError;
use mea_model::{ForwardSolver, ResistorGrid, ZMatrix};

/// Computes the one-shot LBP estimate from measurements alone.
///
/// The reference map is uniform at the measurements' uniform-mode scale
/// `κ·mean(Z)` — the same seed the iterative methods use.
pub fn linear_back_projection(z: &ZMatrix) -> Result<ResistorGrid, ParmaError> {
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    let grid = z.grid();
    let kappa = (grid.rows() * grid.cols()) as f64 / (grid.rows() + grid.cols() - 1) as f64;
    let r_ref = ResistorGrid::filled(grid, z.mean() * kappa);
    let z_ref = ForwardSolver::new(&r_ref)?.solve_all();
    let fj = FullJacobian::assemble(&r_ref, z)?;

    // Relative measurement deviation per pair (dimensionless).
    let dev: Vec<f64> = grid
        .pair_iter()
        .map(|(i, j)| (z.get(i, j) - z_ref.get(i, j)) / z_ref.get(i, j))
        .collect();
    // Back-project through row-normalized |J|ᵀ: crossing c receives the
    // sensitivity-weighted average of the deviations of the pairs that see
    // it.
    let crossings = grid.crossings();
    let mut projected = vec![0.0f64; crossings];
    let mut weight = vec![0.0f64; crossings];
    for (p, &devp) in dev.iter().enumerate() {
        for c in 0..crossings {
            let w = fj.j[(p, c)].abs();
            projected[c] += w * devp;
            weight[c] += w;
        }
    }
    let mut out = r_ref.clone();
    for (idx, (i, j)) in grid.pair_iter().enumerate() {
        let avg = if weight[idx] > 0.0 {
            projected[idx] / weight[idx]
        } else {
            0.0
        };
        // A positive Z deviation means higher local resistance; apply the
        // smeared relative deviation multiplicatively, clamped physical.
        let factor = (1.0 + kappa * avg).max(0.05);
        out.set(i, j, r_ref.get(i, j) * factor);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_anomalies;
    use mea_model::{AnomalyConfig, CrossingMatrix, MeaGrid};

    fn setup(n: usize, seed: u64) -> (ResistorGrid, ZMatrix, Vec<mea_model::AnomalyRegion>) {
        let cfg = AnomalyConfig {
            regions: 1,
            ..Default::default()
        };
        let (truth, regions) = cfg.generate(MeaGrid::square(n), seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        (truth, z, regions)
    }

    #[test]
    fn uniform_measurements_give_uniform_estimate() {
        let grid = MeaGrid::square(4);
        let truth = CrossingMatrix::filled(grid, 3000.0);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let est = linear_back_projection(&z).unwrap();
        let first = est.get(0, 0);
        for (i, j) in grid.pair_iter() {
            assert!((est.get(i, j) - first).abs() / first < 1e-9);
        }
        // And the scale is right for the uniform case.
        assert!((first - 3000.0).abs() / 3000.0 < 0.05);
    }

    #[test]
    fn localizes_the_anomaly_peak() {
        let (truth, z, _) = setup(10, 91);
        let est = linear_back_projection(&z).unwrap();
        // The estimate's hottest crossing must be inside the truth's
        // hottest neighbourhood (within one crossing).
        let hottest = |m: &ResistorGrid| {
            m.grid()
                .pair_iter()
                .max_by(|a, b| m.get(a.0, a.1).total_cmp(&m.get(b.0, b.1)))
                .unwrap()
        };
        let (ti, tj) = hottest(&truth);
        let (ei, ej) = hottest(&est);
        assert!(
            ti.abs_diff(ei) <= 1 && tj.abs_diff(ej) <= 1,
            "LBP peak ({ei},{ej}) must sit near the true peak ({ti},{tj})"
        );
    }

    #[test]
    fn magnitudes_are_only_qualitative() {
        // LBP is *not* quantitative: parameter error stays large even on
        // clean data — the ill-posedness the paper cites.
        let (truth, z, _) = setup(8, 92);
        let est = linear_back_projection(&z).unwrap();
        let err = est.rel_max_diff(&truth);
        assert!(
            err > 0.05,
            "LBP being quantitative would be surprising: {err}"
        );
    }

    #[test]
    fn detection_on_lbp_estimate_finds_the_region() {
        let (_, z, regions) = setup(12, 93);
        let est = linear_back_projection(&z).unwrap();
        let report = detect_anomalies(&est, 1.2);
        let (precision, recall) = report.score(&est, &regions, 1000.0);
        // LBP smears the anomaly, so precision is modest by nature; the
        // value of the method is that recall stays usable at zero
        // iteration cost.
        assert!(recall > 0.4, "recall {recall}");
        assert!(precision > 0.15, "precision {precision}");
    }

    #[test]
    fn rejects_bad_measurements() {
        let bad = CrossingMatrix::filled(MeaGrid::square(3), f64::NAN);
        assert!(linear_back_projection(&bad).is_err());
    }
}
