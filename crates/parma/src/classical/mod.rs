//! The conventional inverse methods the paper positions Parma against.
//!
//! §I of the paper: "Conventional computational approaches include
//! Landweber method, linear back projection, and Tikhonov regularization
//! methods, all of which exhibit an ill-posed computational problem: the
//! solution is largely dependent on the input and results in an
//! unacceptable variance." This module implements all three — plus the
//! dense Gauss-Newton they are variations of — on top of the *analytic*
//! sensitivity Jacobian `∂Z/∂g` (see `mea_model::ForwardSolver::sensitivity`),
//! so the ill-posedness claims can be measured rather than cited:
//!
//! * [`FullJacobian`] — dense `n²×n²` sensitivity assembly with condition
//!   number estimation,
//! * [`gauss_newton`] — damped Gauss-Newton (optionally Levenberg),
//! * [`tikhonov`] — Tikhonov-regularized Gauss-Newton with a prior map,
//! * [`landweber`] — the Landweber gradient iteration,
//! * [`linear_back_projection`] — the one-shot LBP estimate.
//!
//! All methods operate in conductance space (`g = 1/R`, millisiemens) and
//! return resistor maps.

mod gauss_newton;
mod jacobian;
mod landweber;
mod lbp;
mod tikhonov;

pub use gauss_newton::{gauss_newton, GaussNewtonOptions};
pub use jacobian::FullJacobian;
pub use landweber::{landweber, LandweberOptions};
pub use lbp::linear_back_projection;
pub use tikhonov::{tikhonov, Regularizer, TikhonovOptions};
