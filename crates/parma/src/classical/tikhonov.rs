//! Tikhonov-regularized inversion (the paper's ref [12] family).
//!
//! Gauss-Newton on the penalized objective
//! `‖Z_model(g) − Z_meas‖² + λ·‖g − g_prior‖²`: the ridge trades data fit
//! for stability, which is what rescues the ill-posed problem under
//! measurement noise — and what biases the answer toward the prior on
//! clean data. Both effects are pinned by tests.

use crate::classical::jacobian::{g_to_resistors, resistors_to_g, FullJacobian};
use crate::error::ParmaError;
use mea_linalg::DenseMatrix;
use mea_model::{MeaGrid, ResistorGrid, ZMatrix};

/// Which penalty operator the Tikhonov term applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regularizer {
    /// Standard ridge `‖g − g_prior‖²` (zeroth-order Tikhonov).
    Identity,
    /// First-difference smoothness `‖D·g‖²` over grid-adjacent crossings
    /// (first-order Tikhonov). Pixel-level noise artifacts are
    /// high-frequency while real anomalies are smooth blobs, so this
    /// denoises far more effectively than the flat ridge.
    Smoothness,
}

/// Options for [`tikhonov`].
#[derive(Clone, Copy, Debug)]
pub struct TikhonovOptions {
    /// *Relative* regularization weight λ ≥ 0: the penalty actually added
    /// is `λ · mean(diag(JᵀJ)) · LᵀL` (with `L` the chosen regularizer),
    /// so useful values live on a scale-free range (≈ 1e-6 barely
    /// regularized, ≈ 1 heavily biased) regardless of array size or
    /// resistance units.
    pub lambda: f64,
    /// Penalty operator.
    pub regularizer: Regularizer,
    /// Iteration budget.
    pub max_iter: usize,
    /// Stop when the relative impedance mismatch falls below this — with
    /// λ > 0 the iteration converges to a *biased* point, so callers
    /// should expect a stall above solver precision.
    pub tol: f64,
    /// Conductance floor (mS).
    pub g_floor: f64,
}

impl Default for TikhonovOptions {
    fn default() -> Self {
        TikhonovOptions {
            lambda: 1e-3,
            regularizer: Regularizer::Smoothness,
            max_iter: 60,
            tol: 1e-10,
            g_floor: 1e-12,
        }
    }
}

/// Builds `LᵀL` for the chosen regularizer on a grid (crossing-indexed).
fn penalty_matrix(grid: MeaGrid, reg: Regularizer) -> DenseMatrix {
    let n = grid.crossings();
    match reg {
        Regularizer::Identity => DenseMatrix::identity(n),
        Regularizer::Smoothness => {
            // LᵀL for first differences over the 4-neighbour crossing
            // lattice is the (unnormalized) graph Laplacian of the grid.
            let mut m = DenseMatrix::zeros(n, n);
            for (i, j) in grid.pair_iter() {
                let a = grid.pair_index(i, j);
                let mut couple = |b: usize| {
                    m[(a, a)] += 1.0;
                    m[(b, b)] += 1.0;
                    m[(a, b)] -= 1.0;
                    m[(b, a)] -= 1.0;
                };
                if j + 1 < grid.cols() {
                    couple(grid.pair_index(i, j + 1));
                }
                if i + 1 < grid.rows() {
                    couple(grid.pair_index(i + 1, j));
                }
            }
            m
        }
    }
}

/// Runs Tikhonov-regularized Gauss-Newton. `prior` doubles as the initial
/// iterate and the penalty anchor `g_prior`.
///
/// Unlike the unregularized methods this *always* returns the final
/// iterate: the regularized stationary point generally has a nonzero data
/// residual, so "no convergence below tol" is the expected outcome, not an
/// error.
pub fn tikhonov(
    z: &ZMatrix,
    prior: &ResistorGrid,
    opts: &TikhonovOptions,
) -> Result<ResistorGrid, ParmaError> {
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    if prior.grid() != z.grid() || !prior.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "prior map must match the grid and be physical".into(),
        ));
    }
    if !(opts.lambda >= 0.0 && opts.lambda.is_finite()) {
        return Err(ParmaError::InvalidMeasurement(
            "lambda must be finite and ≥ 0".into(),
        ));
    }
    let grid = z.grid();
    let g_prior = resistors_to_g(prior);
    let mut g = g_prior.clone();
    let penalty = penalty_matrix(grid, opts.regularizer);
    // One LU factor refactored in place per iteration, plus a step buffer,
    // instead of a fresh factorization allocation per normal-equation solve.
    let mut lu = mea_linalg::LuFactor::empty();
    let mut delta = vec![0.0; g.len()];
    for _ in 0..opts.max_iter {
        let r = g_to_resistors(grid, &g, opts.g_floor);
        let fj = FullJacobian::assemble(&r, z)?;
        let rel = fj
            .residual
            .iter()
            .zip(z.as_slice())
            .fold(0.0f64, |m, (res, zm)| m.max(res.abs() / zm));
        if rel <= opts.tol {
            return Ok(r);
        }
        // (JᵀJ + λ'·P)·δ = −Jᵀr − λ'·P·(g − g_prior), with P = LᵀL and λ'
        // scaled to the problem's own sensitivity magnitude.
        let ridge = opts.lambda * fj.mean_normal_diagonal();
        let mut normal = fj.normal_matrix();
        for a in 0..normal.rows() {
            for b in 0..normal.cols() {
                normal[(a, b)] += ridge * penalty[(a, b)];
            }
        }
        let grad = fj.gradient();
        let dev: Vec<f64> = g.iter().zip(&g_prior).map(|(gi, gp)| gi - gp).collect();
        let pull = penalty.mul_vec(&dev);
        let rhs: Vec<f64> = grad
            .iter()
            .zip(&pull)
            .map(|(gr, pl)| -gr - ridge * pl)
            .collect();
        lu.refactor_from(&normal).map_err(ParmaError::Linalg)?;
        lu.solve_into(&rhs, &mut delta);
        for (gi, di) in g.iter_mut().zip(&delta) {
            *gi = (*gi + di).max(opts.g_floor);
        }
    }
    Ok(g_to_resistors(grid, &g, opts.g_floor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::gauss_newton::{gauss_newton, GaussNewtonOptions};
    use mea_model::{AnomalyConfig, ForwardSolver, MeaGrid, NoiseModel};

    fn setup(n: usize, seed: u64) -> (ResistorGrid, ZMatrix) {
        let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        (truth, z)
    }

    fn uniform_prior(z: &ZMatrix) -> ResistorGrid {
        // A flat prior at the uniform-mode scale of the measurements.
        let grid = z.grid();
        let kappa = (grid.rows() * grid.cols()) as f64 / (grid.rows() + grid.cols() - 1) as f64;
        ResistorGrid::filled(grid, z.mean() * kappa)
    }

    #[test]
    fn zero_lambda_reduces_to_gauss_newton() {
        let (truth, z) = setup(4, 71);
        let prior = uniform_prior(&z);
        let tk = tikhonov(
            &z,
            &prior,
            &TikhonovOptions {
                lambda: 0.0,
                max_iter: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let gn = gauss_newton(
            &z,
            &prior,
            &GaussNewtonOptions {
                max_iter: 60,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tk.rel_max_diff(&gn) < 1e-6);
        assert!(tk.rel_max_diff(&truth) < 1e-5);
    }

    #[test]
    fn regularization_biases_clean_data_toward_prior() {
        let (truth, z) = setup(4, 72);
        let prior = uniform_prior(&z);
        let strong = tikhonov(
            &z,
            &prior,
            &TikhonovOptions {
                lambda: 10.0,
                max_iter: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let weak = tikhonov(
            &z,
            &prior,
            &TikhonovOptions {
                lambda: 1e-9,
                max_iter: 40,
                ..Default::default()
            },
        )
        .unwrap();
        // Stronger λ ⇒ closer to the prior, farther from the truth.
        assert!(strong.rel_max_diff(&prior) < weak.rel_max_diff(&prior));
        assert!(strong.rel_max_diff(&truth) > weak.rel_max_diff(&truth));
    }

    #[test]
    fn noise_amplification_demonstrates_ill_posedness() {
        // 1 % measurement noise blows up to tens-of-percent max parameter
        // error — the quantitative form of the paper's "unacceptable
        // variance" claim about the classical formulations.
        let (truth, z) = setup(6, 73);
        let noisy = NoiseModel::Gaussian { sigma: 0.01 }.apply(&z, 5);
        let prior = uniform_prior(&noisy);
        let unreg = tikhonov(
            &noisy,
            &prior,
            &TikhonovOptions {
                lambda: 0.0,
                max_iter: 40,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            unreg.rel_max_diff(&truth) > 0.1,
            "max error must be amplified ≥ 10×"
        );
        assert!(
            unreg.rel_mean_diff(&truth) > 0.02,
            "mean error must be amplified ≥ 2×"
        );
    }

    #[test]
    fn regularization_stabilizes_noisy_inversion() {
        // The L-curve: under measurement noise, some λ on a coarse grid
        // strictly improves the aggregate (mean) parameter error over the
        // unregularized solve. The smoothness regularizer targets the
        // pixel-level noise artifacts that the flat ridge cannot.
        let (truth, z) = setup(6, 73);
        let noisy = NoiseModel::Gaussian { sigma: 0.01 }.apply(&z, 5);
        let prior = uniform_prior(&noisy);
        let err_at = |lambda: f64, regularizer: Regularizer| {
            tikhonov(
                &noisy,
                &prior,
                &TikhonovOptions {
                    lambda,
                    regularizer,
                    max_iter: 40,
                    tol: 1e-12,
                    ..Default::default()
                },
            )
            .unwrap()
            .rel_mean_diff(&truth)
        };
        let e_unreg = err_at(0.0, Regularizer::Smoothness);
        let best = [1e-3, 1e-2, 1e-1]
            .into_iter()
            .map(|l| err_at(l, Regularizer::Smoothness))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < e_unreg,
            "a tuned smoothness λ must beat unregularized under noise: {best} vs {e_unreg}"
        );
    }

    #[test]
    fn rejects_invalid_lambda_and_inputs() {
        let (truth, z) = setup(3, 74);
        assert!(tikhonov(
            &z,
            &truth,
            &TikhonovOptions {
                lambda: f64::NAN,
                ..Default::default()
            }
        )
        .is_err());
        let bad = mea_model::CrossingMatrix::filled(MeaGrid::square(3), 0.0);
        assert!(tikhonov(&bad, &truth, &TikhonovOptions::default()).is_err());
    }
}
