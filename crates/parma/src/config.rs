//! Solver configuration.

use mea_parallel::Strategy;

/// Configuration of [`crate::ParmaSolver`].
#[derive(Clone, Copy, Debug)]
pub struct ParmaConfig {
    /// Applied end-to-end voltage `U_ij` (volts; 5 V in the paper's lab).
    pub voltage: f64,
    /// Damping factor α of the conductance fixed point, in (0, 1].
    pub damping: f64,
    /// Convergence target on the relative impedance mismatch
    /// `maxᵢⱼ |Z_model − Z_meas| / Z_meas`.
    pub tol: f64,
    /// Outer-iteration budget.
    pub max_iter: usize,
    /// Execution strategy for the per-pair updates.
    pub strategy: Strategy,
    /// Smallest admissible resistance (kΩ); updates are clamped here to
    /// keep iterates physical.
    pub min_resistance: f64,
}

impl Default for ParmaConfig {
    fn default() -> Self {
        ParmaConfig {
            voltage: 5.0,
            damping: 1.0,
            tol: 1e-10,
            max_iter: 500,
            strategy: Strategy::SingleThread,
            min_resistance: 1e-6,
        }
    }
}

impl ParmaConfig {
    /// Same configuration under a different execution strategy.
    pub fn with_strategy(self, strategy: Strategy) -> Self {
        ParmaConfig { strategy, ..self }
    }

    /// Panics if values are out of range (called by the solver).
    pub fn validate(&self) {
        assert!(self.voltage > 0.0 && self.voltage.is_finite(), "voltage must be positive");
        assert!(
            self.damping > 0.0 && self.damping <= 1.0,
            "damping must be in (0, 1], got {}",
            self.damping
        );
        assert!(self.tol > 0.0, "tolerance must be positive");
        assert!(self.max_iter > 0, "need at least one iteration");
        assert!(self.min_resistance > 0.0, "minimum resistance must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ParmaConfig::default().validate();
    }

    #[test]
    fn with_strategy_replaces_only_strategy() {
        let c = ParmaConfig::default().with_strategy(Strategy::FineGrained { threads: 4 });
        assert_eq!(c.strategy, Strategy::FineGrained { threads: 4 });
        assert_eq!(c.voltage, 5.0);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_rejected() {
        ParmaConfig { damping: 1.5, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "voltage")]
    fn bad_voltage_rejected() {
        ParmaConfig { voltage: 0.0, ..Default::default() }.validate();
    }
}
