//! Solver configuration.

use crate::error::ParmaError;
use mea_parallel::Strategy;

/// Configuration of [`crate::ParmaSolver`].
#[derive(Clone, Copy, Debug)]
pub struct ParmaConfig {
    /// Applied end-to-end voltage `U_ij` (volts; 5 V in the paper's lab).
    pub voltage: f64,
    /// Damping factor α of the conductance fixed point, in (0, 1].
    pub damping: f64,
    /// Convergence target on the relative impedance mismatch
    /// `maxᵢⱼ |Z_model − Z_meas| / Z_meas`.
    pub tol: f64,
    /// Outer-iteration budget.
    pub max_iter: usize,
    /// Execution strategy for the per-pair updates.
    pub strategy: Strategy,
    /// Smallest admissible resistance (kΩ); updates are clamped here to
    /// keep iterates physical.
    pub min_resistance: f64,
    /// Whether the convergence-failure recovery ladder is armed. On by
    /// default; turning it off gives the plain damped sweep (useful for
    /// A/B-ing an intervention and for the paper's original behavior).
    pub recovery: bool,
}

impl Default for ParmaConfig {
    fn default() -> Self {
        ParmaConfig {
            voltage: 5.0,
            damping: 1.0,
            tol: 1e-10,
            max_iter: 500,
            strategy: Strategy::SingleThread,
            min_resistance: 1e-6,
            recovery: true,
        }
    }
}

impl ParmaConfig {
    /// Same configuration under a different execution strategy.
    pub fn with_strategy(self, strategy: Strategy) -> Self {
        ParmaConfig { strategy, ..self }
    }

    /// Checks that every value is in range; the solver calls this before
    /// the first sweep, so a bad configuration surfaces as a recoverable
    /// [`ParmaError::InvalidConfig`] instead of a panic.
    pub fn validate(&self) -> Result<(), ParmaError> {
        let fail = |msg: String| Err(ParmaError::InvalidConfig(msg));
        if !(self.voltage > 0.0 && self.voltage.is_finite()) {
            return fail(format!(
                "voltage must be positive and finite, got {}",
                self.voltage
            ));
        }
        if !(self.damping > 0.0 && self.damping <= 1.0) {
            return fail(format!("damping must be in (0, 1], got {}", self.damping));
        }
        if self.tol.is_nan() || self.tol <= 0.0 {
            return fail(format!("tolerance must be positive, got {}", self.tol));
        }
        if self.max_iter == 0 {
            return fail("need at least one iteration".into());
        }
        if self.min_resistance.is_nan() || self.min_resistance <= 0.0 {
            return fail(format!(
                "minimum resistance must be positive, got {}",
                self.min_resistance
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ParmaConfig::default().validate().unwrap();
    }

    #[test]
    fn with_strategy_replaces_only_strategy() {
        let c = ParmaConfig::default().with_strategy(Strategy::FineGrained { threads: 4 });
        assert_eq!(c.strategy, Strategy::FineGrained { threads: 4 });
        assert_eq!(c.voltage, 5.0);
    }

    #[test]
    fn bad_values_are_reported_not_panicked() {
        for (cfg, word) in [
            (
                ParmaConfig {
                    damping: 1.5,
                    ..Default::default()
                },
                "damping",
            ),
            (
                ParmaConfig {
                    damping: 0.0,
                    ..Default::default()
                },
                "damping",
            ),
            (
                ParmaConfig {
                    voltage: 0.0,
                    ..Default::default()
                },
                "voltage",
            ),
            (
                ParmaConfig {
                    voltage: f64::NAN,
                    ..Default::default()
                },
                "voltage",
            ),
            (
                ParmaConfig {
                    tol: 0.0,
                    ..Default::default()
                },
                "tolerance",
            ),
            (
                ParmaConfig {
                    max_iter: 0,
                    ..Default::default()
                },
                "iteration",
            ),
            (
                ParmaConfig {
                    min_resistance: -1.0,
                    ..Default::default()
                },
                "resistance",
            ),
        ] {
            let err = cfg.validate().unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, crate::ParmaError::InvalidConfig(_)) && msg.contains(word),
                "expected InvalidConfig mentioning {word:?}, got: {msg}"
            );
        }
    }
}
