//! Anomaly detection on recovered resistor maps — the application workload
//! of §II-C ("once the R values are known, the anomaly can be simply
//! detected").
//!
//! Healthy medium sits near a common baseline; anomalies raise local
//! resistance by integer factors. Detection is a robust threshold: the
//! baseline is estimated as the *median* crossing resistance (anomalies
//! cover a minority of the array) and any crossing above
//! `baseline × factor` is flagged.

use mea_model::{AnomalyRegion, ResistorGrid};

/// Result of a detection pass.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectionReport {
    /// Estimated healthy baseline (kΩ).
    pub baseline: f64,
    /// Threshold actually applied (kΩ).
    pub threshold: f64,
    /// Flagged crossings `(i, j)`, row-major order.
    pub anomalies: Vec<(usize, usize)>,
}

impl DetectionReport {
    /// Fraction of flagged crossings among all crossings.
    pub fn coverage(&self, r: &ResistorGrid) -> f64 {
        self.anomalies.len() as f64 / r.grid().crossings() as f64
    }

    /// Precision/recall against known ground-truth regions (available only
    /// for synthetic data): a crossing counts as truly anomalous when some
    /// region's contribution there exceeds `min_contribution` kΩ.
    pub fn score(
        &self,
        r: &ResistorGrid,
        regions: &[AnomalyRegion],
        min_contribution: f64,
    ) -> (f64, f64) {
        let grid = r.grid();
        let truth: Vec<(usize, usize)> = grid
            .pair_iter()
            .filter(|&(i, j)| {
                regions
                    .iter()
                    .map(|reg| reg.contribution(i, j))
                    .sum::<f64>()
                    > min_contribution
            })
            .collect();
        if truth.is_empty() {
            let precision = if self.anomalies.is_empty() { 1.0 } else { 0.0 };
            return (precision, 1.0);
        }
        let hit = |p: &(usize, usize)| truth.contains(p);
        let tp = self.anomalies.iter().filter(|p| hit(p)).count() as f64;
        let precision = if self.anomalies.is_empty() {
            1.0
        } else {
            tp / self.anomalies.len() as f64
        };
        let recall = tp / truth.len() as f64;
        (precision, recall)
    }
}

/// Flags crossings whose resistance exceeds `median × factor`.
///
/// `factor` must exceed 1; values around 1.5–2 suit the paper's range
/// (baseline ≈ 2,000 kΩ, anomalies up to 11,000 kΩ).
pub fn detect_anomalies(r: &ResistorGrid, factor: f64) -> DetectionReport {
    assert!(factor > 1.0, "detection factor must exceed 1");
    let baseline = median(r.as_slice());
    let threshold = baseline * factor;
    let anomalies = r
        .grid()
        .pair_iter()
        .filter(|&(i, j)| r.get(i, j) > threshold)
        .collect();
    DetectionReport {
        baseline,
        threshold,
        anomalies,
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("resistances are finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, CrossingMatrix, MeaGrid};

    #[test]
    fn clean_map_flags_nothing() {
        let r = CrossingMatrix::filled(MeaGrid::square(6), 2000.0);
        let rep = detect_anomalies(&r, 1.5);
        assert!(rep.anomalies.is_empty());
        assert!((rep.baseline - 2000.0).abs() < 1e-12);
    }

    #[test]
    fn single_hot_crossing_is_found() {
        let mut r = CrossingMatrix::filled(MeaGrid::square(5), 2000.0);
        r.set(3, 1, 9000.0);
        let rep = detect_anomalies(&r, 1.5);
        assert_eq!(rep.anomalies, vec![(3, 1)]);
        assert!((rep.coverage(&r) - 1.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn median_baseline_resists_anomalies() {
        // Even with 40% of crossings anomalous, the median stays at the
        // baseline (unlike a mean threshold).
        let grid = MeaGrid::square(5);
        let mut r = CrossingMatrix::filled(grid, 2000.0);
        for k in 0..10 {
            r.set(k / 5, k % 5, 10_000.0);
        }
        let rep = detect_anomalies(&r, 1.5);
        assert!((rep.baseline - 2000.0).abs() < 1e-9);
        assert_eq!(rep.anomalies.len(), 10);
    }

    #[test]
    fn detection_on_generated_map_scores_well() {
        let grid = MeaGrid::square(20);
        let cfg = AnomalyConfig::default();
        let (r, regions) = cfg.generate(grid, 12);
        let rep = detect_anomalies(&r, 1.5);
        let (precision, recall) = rep.score(&r, &regions, 0.5 * cfg.baseline);
        assert!(precision > 0.7, "precision {precision}");
        assert!(recall > 0.7, "recall {recall}");
    }

    #[test]
    fn score_with_no_true_regions() {
        let r = CrossingMatrix::filled(MeaGrid::square(4), 2000.0);
        let rep = detect_anomalies(&r, 2.0);
        let (p, rcl) = rep.score(&r, &[], 100.0);
        assert_eq!((p, rcl), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn factor_must_exceed_one() {
        let r = CrossingMatrix::filled(MeaGrid::square(2), 1.0);
        let _ = detect_anomalies(&r, 0.9);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
