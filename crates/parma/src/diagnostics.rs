//! Solver-theory diagnostics: measuring the quantities the damping
//! derivation in [`crate::solver`] *assumes*, so the theory is tested
//! rather than trusted.
//!
//! The fixed point updates `g_ij ← g_ij + α·(1/Z_meas − 1/Z_model)`; its
//! linearization around an iterate is governed by the coupling matrix
//! `K = ∂(1/Z)/∂g` (entrywise non-negative: raising any conductance raises
//! every terminal conductance). The derivation claims its Perron
//! eigenvalue is `κ = mn/(m+n−1)`, exactly attained by the uniform mode,
//! giving the optimal damping `α* = 2/(1+κ)` and the per-sweep contraction
//! `(κ−1)/(κ+1)`. This module computes the empirical Perron eigenvalue by
//! power iteration on the true `K` and extracts observed contraction
//! factors from solve histories.

use mea_model::{ForwardSolver, MeaGrid, ResistorGrid};

/// The theoretical extreme coupling eigenvalue `κ = mn/(m+n−1)`.
pub fn theoretical_coupling(grid: MeaGrid) -> f64 {
    let (m, n) = (grid.rows() as f64, grid.cols() as f64);
    m * n / (m + n - 1.0)
}

/// The theoretical per-sweep contraction factor `(κ−1)/(κ+1)` under the
/// optimal damping.
pub fn theoretical_contraction(grid: MeaGrid) -> f64 {
    let k = theoretical_coupling(grid);
    (k - 1.0) / (k + 1.0)
}

/// Builds the symmetrized coupling matrix `K̃ = D^½·S·D^½`, where
/// `K = D·S` is the true coupling (`D = diag(1/Z²)`,
/// `S[ij][kl] = −∂Z_ij/∂g_kl = [(eᵢ−eⱼ)ᵀL⁺(eₖ−eₗ)]²`). `S` is the
/// entrywise square of a Gram matrix, hence PSD (Schur product theorem),
/// and `K̃` is similar to `K` — so `K`'s spectrum is real, non-negative,
/// and readable off a symmetric matrix. This is also the convergence
/// proof of the fixed point: all eigenvalues lie in `(0, κ]`, so
/// `|1 − α·λ| < 1` for the chosen damping.
fn symmetrized_coupling(r: &ResistorGrid) -> mea_linalg::DenseMatrix {
    let grid = r.grid();
    let fs = ForwardSolver::new(r).expect("physical resistor map");
    let crossings = grid.crossings();
    let mut s = mea_linalg::DenseMatrix::zeros(crossings, crossings);
    let mut d_sqrt = vec![0.0f64; crossings];
    for (p, (i, j)) in grid.pair_iter().enumerate() {
        let z = fs.effective_resistance(i, j);
        d_sqrt[p] = 1.0 / z;
        let sens = fs.sensitivity(i, j);
        for c in 0..crossings {
            s[(p, c)] = -sens.as_slice()[c]; // ≥ 0
        }
    }
    let mut kt = mea_linalg::DenseMatrix::zeros(crossings, crossings);
    for a in 0..crossings {
        for b in 0..crossings {
            kt[(a, b)] = d_sqrt[a] * s[(a, b)] * d_sqrt[b];
        }
    }
    kt
}

/// Measures the largest eigenvalue of the true coupling matrix
/// `K = ∂(1/Z)/∂g` at a resistor map (via its symmetrization).
pub fn empirical_coupling(r: &ResistorGrid, iterations: usize) -> f64 {
    let kt = symmetrized_coupling(r);
    mea_linalg::power_iteration(&kt, iterations, 1e-10)
        .map(|e| e.value)
        .unwrap_or(0.0)
}

/// Measures both spectral extremes `(λ_min, λ_max)` of the coupling.
/// The slow modes sit *below* 1 (the `[1, κ]` idealization of the damping
/// derivation is one-sided), which is what sets the true asymptotic rate.
pub fn coupling_extremes(r: &ResistorGrid, iterations: usize) -> (f64, f64) {
    let kt = symmetrized_coupling(r);
    let max = mea_linalg::power_iteration(&kt, iterations, 1e-10)
        .map(|e| e.value)
        .unwrap_or(0.0);
    let min = mea_linalg::inverse_power_iteration(&kt, iterations, 1e-10)
        .map(|e| e.value)
        .unwrap_or(0.0);
    (min, max)
}

/// The contraction factor the damped sweep should exhibit given measured
/// spectral extremes: `max(|1 − α·λ_min|, |1 − α·λ_max|)` with
/// `α = multiplier·2/(1+κ)` (the solver's damping rule).
pub fn predicted_contraction(
    grid: MeaGrid,
    lambda_min: f64,
    lambda_max: f64,
    damping_multiplier: f64,
) -> f64 {
    let alpha = damping_multiplier * 2.0 / (1.0 + theoretical_coupling(grid));
    (1.0 - alpha * lambda_min)
        .abs()
        .max((1.0 - alpha * lambda_max).abs())
}

/// The observed asymptotic contraction factor of a residual history: the
/// geometric mean of successive ratios over the trailing half (skipping
/// the transient). Returns `None` when the history is too short.
pub fn observed_contraction(history: &[f64]) -> Option<f64> {
    if history.len() < 4 {
        return None;
    }
    let tail = &history[history.len() / 2..];
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for w in tail.windows(2) {
        if w[0] > 0.0 && w[1] > 0.0 {
            log_sum += (w[1] / w[0]).ln();
            count += 1;
        }
    }
    if count == 0 {
        return None;
    }
    Some((log_sum / count as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParmaConfig;
    use crate::solver::ParmaSolver;
    use mea_model::{AnomalyConfig, CrossingMatrix};

    #[test]
    fn uniform_map_attains_the_theoretical_coupling_exactly() {
        for n in [2usize, 3, 5, 8] {
            let grid = MeaGrid::square(n);
            let r = CrossingMatrix::filled(grid, 2500.0);
            let empirical = empirical_coupling(&r, 200);
            let theory = theoretical_coupling(grid);
            assert!(
                (empirical - theory).abs() / theory < 1e-6,
                "n = {n}: empirical {empirical} vs theory {theory}"
            );
        }
    }

    #[test]
    fn rectangular_grids_too() {
        let grid = MeaGrid::new(3, 6);
        let r = CrossingMatrix::filled(grid, 1000.0);
        let empirical = empirical_coupling(&r, 200);
        assert!((empirical - 18.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn anomalous_maps_stay_near_the_bound() {
        // The damping derivation only needs the coupling not to blow past
        // κ; real anomaly maps wobble around it mildly.
        let grid = MeaGrid::square(6);
        let (r, _) = AnomalyConfig::default().generate(grid, 17);
        let empirical = empirical_coupling(&r, 200);
        let theory = theoretical_coupling(grid);
        assert!(empirical > 1.0);
        assert!(
            empirical < 1.3 * theory,
            "coupling {empirical} strayed too far from κ = {theory}"
        );
    }

    #[test]
    fn observed_contraction_is_geometric_and_theory_tracks_it() {
        // The derivation's spectrum assumption ([1, κ]) is exact only for
        // uniform maps; anomaly maps spread the spectrum on both sides, so
        // the observed asymptotic factor sits above the idealized
        // (κ−1)/(κ+1) but must remain a solid geometric contraction.
        let grid = MeaGrid::square(8);
        let (truth, _) = AnomalyConfig::default().generate(grid, 23);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let sol = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
        let observed = observed_contraction(&sol.history).expect("long history");
        let theory = theoretical_contraction(grid);
        assert!(
            observed < 0.92,
            "iteration must contract geometrically, got {observed}"
        );
        assert!(
            observed >= theory - 0.05,
            "nothing can beat the idealized bound by much: {observed} vs {theory}"
        );
    }

    #[test]
    fn measured_spectrum_predicts_the_observed_rate() {
        // The full story: measure (λ_min, λ_max) of the true coupling,
        // predict max(|1−αλ_min|, |1−αλ_max|), and compare with the rate
        // actually observed in the solve history.
        let grid = MeaGrid::square(8);
        let mut truth = CrossingMatrix::filled(grid, 3000.0);
        truth.set(3, 4, 3090.0); // gentle perturbation: excites local modes
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let cfg = ParmaConfig {
            tol: 1e-12,
            ..Default::default()
        };
        let sol = ParmaSolver::new(cfg).solve(&z).unwrap();
        let observed = observed_contraction(&sol.history).expect("long history");
        let (lo, hi) = coupling_extremes(&truth, 500);
        assert!(
            lo > 0.0 && lo < 1.0,
            "slow modes sit below 1, got λ_min = {lo}"
        );
        assert!(
            hi <= 1.01 * theoretical_coupling(grid),
            "λ_max ≈ κ, got {hi}"
        );
        let predicted = predicted_contraction(grid, lo, hi, 1.0);
        assert!(
            (observed - predicted).abs() < 0.05,
            "observed {observed} vs spectrum-predicted {predicted} (λ ∈ [{lo}, {hi}])"
        );
    }

    #[test]
    fn coupling_spectrum_is_positive_and_bounded() {
        // Convergence proof in numbers: every eigenvalue of the coupling
        // is strictly positive and at most ~κ, so |1 − α·λ| < 1.
        let grid = MeaGrid::square(5);
        let (r, _) = AnomalyConfig::default().generate(grid, 31);
        let (lo, hi) = coupling_extremes(&r, 500);
        assert!(lo > 0.0);
        assert!(hi < 1.4 * theoretical_coupling(grid));
        let alpha = 2.0 / (1.0 + theoretical_coupling(grid));
        assert!((1.0 - alpha * lo).abs() < 1.0);
        assert!((1.0 - alpha * hi).abs() < 1.0);
    }

    #[test]
    fn single_crossing_has_unit_coupling() {
        let grid = MeaGrid::square(1);
        let r = CrossingMatrix::filled(grid, 500.0);
        assert!((empirical_coupling(&r, 50) - 1.0).abs() < 1e-9);
        assert_eq!(theoretical_contraction(grid), 0.0);
    }

    #[test]
    fn observed_contraction_of_geometric_series() {
        let history: Vec<f64> = (0..20).map(|i| 0.5f64.powi(i)).collect();
        let c = observed_contraction(&history).unwrap();
        assert!((c - 0.5).abs() < 1e-12);
        assert!(observed_contraction(&[1.0, 0.5]).is_none());
    }
}
