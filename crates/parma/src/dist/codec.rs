//! Payload codecs for the distributed solve protocol: the byte layouts
//! carried *inside* `parma-wire/v1` frames (`mea_parallel::dist`).
//!
//! Everything numeric travels as IEEE-754 bit patterns (`PayloadWriter::
//! put_f64` writes `to_bits`), so a result decoded on the coordinator is
//! **bitwise identical** to the solve the worker ran — the property the
//! resharding tests pin. The coordinator core treats task and result
//! payloads as opaque blobs; these codecs are the `parma`-level meaning
//! of those blobs for whole-dataset solve tasks. (The bench harness
//! defines its own pair-range blob with the same primitives.)
//!
//! Every blob leads with a tag byte so a worker handed a payload it does
//! not understand fails with a typed [`DecodeError::BadTag`] instead of
//! misreading bytes.

use crate::pipeline::TimePointResult;
use crate::solver::{ParmaSolution, RecoveryAction, RecoveryEvent};
use crate::supervisor::{AttemptFailure, FailureKind, FailureReport};
use crate::DetectionReport;
use mea_model::{CrossingMatrix, MeaGrid};
use mea_parallel::dist::{DecodeError, PayloadReader, PayloadWriter};

/// Tag byte of a whole-dataset solve task blob.
pub const TAG_SOLVE_TASK: u8 = 1;
/// Tag byte of a solved time-point-series result blob.
pub const TAG_SOLVE_OK: u8 = 2;
/// Tag byte of a quarantine (failure report) result blob.
pub const TAG_SOLVE_FAILED: u8 = 3;

/// One whole-array solve shipped to a worker: the dataset itself (as
/// `parma-bin/v1` bytes — checksummed end to end) plus every knob that
/// shapes the numeric output, so the worker reproduces the coordinator's
/// in-process solve bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveTask {
    /// Dataset file name (the journal key).
    pub name: String,
    /// The dataset, encoded as `parma-bin/v1`.
    pub dataset: Vec<u8>,
    /// Solver tolerance.
    pub tol: f64,
    /// Detection threshold factor.
    pub detect: f64,
    /// Supervisor retry budget.
    pub max_retries: u64,
    /// Per-solve deadline in milliseconds; 0 = none.
    pub solve_deadline_ms: u64,
    /// Supervisor backoff base in milliseconds.
    pub backoff_ms: u64,
}

impl SolveTask {
    /// Serializes the task blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.put_u8(TAG_SOLVE_TASK);
        w.put_str(&self.name);
        w.put_bytes(&self.dataset);
        w.put_f64(self.tol);
        w.put_f64(self.detect);
        w.put_u64(self.max_retries);
        w.put_u64(self.solve_deadline_ms);
        w.put_u64(self.backoff_ms);
        w.into_bytes()
    }

    /// Deserializes a task blob.
    pub fn decode(bytes: &[u8]) -> Result<SolveTask, DecodeError> {
        let mut r = PayloadReader::new(bytes);
        let tag = r.take_u8()?;
        if tag != TAG_SOLVE_TASK {
            return Err(DecodeError::BadTag(tag));
        }
        Ok(SolveTask {
            name: r.take_str()?.to_string(),
            dataset: r.take_bytes()?.to_vec(),
            tol: r.take_f64()?,
            detect: r.take_f64()?,
            max_retries: r.take_u64()?,
            solve_deadline_ms: r.take_u64()?,
            backoff_ms: r.take_u64()?,
        })
    }
}

/// Serializes a successful solve: the full time-point series, every field
/// bit-exact, so the coordinator can journal it (or serve it over HTTP)
/// exactly as if it had solved in-process.
pub fn encode_time_points(tps: &[TimePointResult]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u8(TAG_SOLVE_OK);
    w.put_u64(tps.len() as u64);
    for tp in tps {
        w.put_u32(tp.hours);
        let grid = tp.solution.resistors.grid();
        w.put_u32(grid.rows() as u32);
        w.put_u32(grid.cols() as u32);
        w.put_u64(tp.solution.resistors.as_slice().len() as u64);
        for &v in tp.solution.resistors.as_slice() {
            w.put_f64(v);
        }
        w.put_u64(tp.solution.iterations as u64);
        w.put_f64(tp.solution.residual);
        w.put_u64(tp.solution.history.len() as u64);
        for &v in &tp.solution.history {
            w.put_f64(v);
        }
        w.put_u64(tp.solution.recovery.len() as u64);
        for ev in &tp.solution.recovery {
            w.put_u8(recovery_action_code(ev.action));
            w.put_u64(ev.at_iteration as u64);
            w.put_f64(ev.residual);
        }
        w.put_f64(tp.detection.baseline);
        w.put_f64(tp.detection.threshold);
        w.put_u64(tp.detection.anomalies.len() as u64);
        for &(i, j) in &tp.detection.anomalies {
            w.put_u64(i as u64);
            w.put_u64(j as u64);
        }
        match tp.ground_truth_error {
            Some(e) => {
                w.put_u8(1);
                w.put_f64(e);
            }
            None => w.put_u8(0),
        }
    }
    w.into_bytes()
}

/// Deserializes a successful solve result blob.
pub fn decode_time_points(bytes: &[u8]) -> Result<Vec<TimePointResult>, DecodeError> {
    let mut r = PayloadReader::new(bytes);
    let tag = r.take_u8()?;
    if tag != TAG_SOLVE_OK {
        return Err(DecodeError::BadTag(tag));
    }
    let count = r.take_u64()? as usize;
    let mut tps = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let hours = r.take_u32()?;
        let rows = r.take_u32()? as usize;
        let cols = r.take_u32()? as usize;
        let grid = MeaGrid::new(rows, cols);
        let n = r.take_u64()? as usize;
        if n != grid.crossings() {
            return Err(DecodeError::Truncated);
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.take_f64()?);
        }
        let resistors = CrossingMatrix::from_vec(grid, values);
        let iterations = r.take_u64()? as usize;
        let residual = r.take_f64()?;
        let h = r.take_u64()? as usize;
        let mut history = Vec::with_capacity(h.min(1 << 20));
        for _ in 0..h {
            history.push(r.take_f64()?);
        }
        let rc = r.take_u64()? as usize;
        let mut recovery = Vec::with_capacity(rc.min(1 << 16));
        for _ in 0..rc {
            recovery.push(RecoveryEvent {
                action: recovery_action_from(r.take_u8()?)?,
                at_iteration: r.take_u64()? as usize,
                residual: r.take_f64()?,
            });
        }
        let baseline = r.take_f64()?;
        let threshold = r.take_f64()?;
        let ac = r.take_u64()? as usize;
        let mut anomalies = Vec::with_capacity(ac.min(1 << 20));
        for _ in 0..ac {
            let i = r.take_u64()? as usize;
            let j = r.take_u64()? as usize;
            anomalies.push((i, j));
        }
        let ground_truth_error = match r.take_u8()? {
            0 => None,
            _ => Some(r.take_f64()?),
        };
        tps.push(TimePointResult {
            hours,
            solution: ParmaSolution {
                resistors,
                iterations,
                residual,
                history,
                recovery,
            },
            detection: DetectionReport {
                baseline,
                threshold,
                anomalies,
            },
            ground_truth_error,
        });
    }
    Ok(tps)
}

/// Serializes a quarantine, including the embedded flight-recorder tail —
/// the worker-side forensics that would otherwise die with the worker's
/// process. (Before `parma-wire/v2` the tail was dropped on the grounds
/// that it described the worker's process; with trace-scoped events it
/// describes the dispatch, so it ships.)
pub fn encode_failure(report: &FailureReport) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u8(TAG_SOLVE_FAILED);
    w.put_u64(report.item as u64);
    w.put_u8(failure_kind_code(report.kind));
    w.put_str(&report.detail);
    w.put_u64(report.attempts.len() as u64);
    for a in &report.attempts {
        w.put_u64(a.attempt as u64);
        w.put_u8(failure_kind_code(a.kind));
        w.put_str(&a.detail);
    }
    // Optional tail (absent in pre-v2 blobs): the embedded events.
    w.put_u64(report.events.len() as u64);
    for e in &report.events {
        w.put_u64(e.seq);
        w.put_u64(e.t_us);
        w.put_u8(e.kind.code());
        w.put_u64(e.item);
        w.put_u64(e.info);
        w.put_f64(e.value);
    }
    w.into_bytes()
}

/// Deserializes a quarantine result blob. A pre-v2 blob simply ends
/// before the event tail and decodes with an empty `events` array.
pub fn decode_failure(bytes: &[u8]) -> Result<FailureReport, DecodeError> {
    let mut r = PayloadReader::new(bytes);
    let tag = r.take_u8()?;
    if tag != TAG_SOLVE_FAILED {
        return Err(DecodeError::BadTag(tag));
    }
    let item = r.take_u64()? as usize;
    let kind = failure_kind_from(r.take_u8()?)?;
    let detail = r.take_str()?.to_string();
    let count = r.take_u64()? as usize;
    let mut attempts = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        attempts.push(AttemptFailure {
            attempt: r.take_u64()? as usize,
            kind: failure_kind_from(r.take_u8()?)?,
            detail: r.take_str()?.to_string(),
        });
    }
    let mut events = Vec::new();
    if r.remaining() > 0 {
        let ec = r.take_u64()? as usize;
        if ec > 1 << 12 {
            return Err(DecodeError::Truncated);
        }
        events.reserve(ec);
        for _ in 0..ec {
            let seq = r.take_u64()?;
            let t_us = r.take_u64()?;
            let code = r.take_u8()?;
            let ekind =
                mea_obs::events::EventKind::from_code(code).ok_or(DecodeError::BadTag(code))?;
            events.push(mea_obs::events::Event {
                seq,
                t_us,
                kind: ekind,
                item: r.take_u64()?,
                info: r.take_u64()?,
                value: r.take_f64()?,
            });
        }
    }
    Ok(FailureReport {
        item,
        kind,
        detail,
        attempts,
        events,
    })
}

fn failure_kind_code(kind: FailureKind) -> u8 {
    match kind {
        FailureKind::Panic => 1,
        FailureKind::Timeout => 2,
        FailureKind::Cancelled => 3,
        FailureKind::Divergence => 4,
        FailureKind::NonFiniteInput => 5,
        FailureKind::Internal => 6,
    }
}

fn failure_kind_from(code: u8) -> Result<FailureKind, DecodeError> {
    Ok(match code {
        1 => FailureKind::Panic,
        2 => FailureKind::Timeout,
        3 => FailureKind::Cancelled,
        4 => FailureKind::Divergence,
        5 => FailureKind::NonFiniteInput,
        6 => FailureKind::Internal,
        other => return Err(DecodeError::BadTag(other)),
    })
}

fn recovery_action_code(action: RecoveryAction) -> u8 {
    match action {
        RecoveryAction::Extrapolate => 1,
        RecoveryAction::ReduceDamping => 2,
        RecoveryAction::Regularize => 3,
        RecoveryAction::ColdRestart => 4,
    }
}

fn recovery_action_from(code: u8) -> Result<RecoveryAction, DecodeError> {
    Ok(match code {
        1 => RecoveryAction::Extrapolate,
        2 => RecoveryAction::ReduceDamping,
        3 => RecoveryAction::Regularize,
        4 => RecoveryAction::ColdRestart,
        other => return Err(DecodeError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParmaConfig;
    use crate::pipeline::Pipeline;
    use mea_model::{AnomalyConfig, WetLabDataset};

    #[test]
    fn solve_task_round_trips() {
        let task = SolveTask {
            name: "s0.pbin".into(),
            dataset: vec![7, 8, 9, 0, 255],
            tol: 1e-10,
            detect: 1.5,
            max_retries: 2,
            solve_deadline_ms: 0,
            backoff_ms: 25,
        };
        let back = SolveTask::decode(&task.encode()).unwrap();
        assert_eq!(back, task);
    }

    #[test]
    fn wrong_tags_are_typed_errors() {
        let task = SolveTask {
            name: "x".into(),
            dataset: Vec::new(),
            tol: 1e-10,
            detect: 1.5,
            max_retries: 0,
            solve_deadline_ms: 0,
            backoff_ms: 0,
        };
        let bytes = task.encode();
        assert!(matches!(
            decode_time_points(&bytes),
            Err(DecodeError::BadTag(TAG_SOLVE_TASK))
        ));
        assert!(matches!(
            decode_failure(&bytes),
            Err(DecodeError::BadTag(TAG_SOLVE_TASK))
        ));
    }

    #[test]
    fn time_points_round_trip_bitwise() {
        let ds =
            WetLabDataset::generate(MeaGrid::square(4), &AnomalyConfig::default(), 17).unwrap();
        let tps = Pipeline::new(ParmaConfig::default(), 1.5)
            .unwrap()
            .run(&ds)
            .unwrap();
        let back = decode_time_points(&encode_time_points(&tps)).unwrap();
        assert_eq!(back.len(), tps.len());
        for (a, b) in tps.iter().zip(&back) {
            assert_eq!(a.hours, b.hours);
            assert_eq!(a.solution.iterations, b.solution.iterations);
            assert_eq!(a.solution.residual.to_bits(), b.solution.residual.to_bits());
            assert_eq!(a.solution.history.len(), b.solution.history.len());
            for (x, y) in a
                .solution
                .resistors
                .as_slice()
                .iter()
                .zip(b.solution.resistors.as_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.detection.anomalies, b.detection.anomalies);
            assert_eq!(
                a.detection.baseline.to_bits(),
                b.detection.baseline.to_bits()
            );
            assert_eq!(
                a.ground_truth_error.map(f64::to_bits),
                b.ground_truth_error.map(f64::to_bits)
            );
        }
        // The journal line — the resharding comparison key — is identical
        // whether the solve stayed local or round-tripped the wire.
        assert_eq!(tps[0].solution.recovery, back[0].solution.recovery);
    }

    #[test]
    fn failure_report_round_trips_with_the_event_tail() {
        let report = FailureReport {
            item: 4,
            kind: FailureKind::Timeout,
            detail: "took too long".into(),
            attempts: vec![
                AttemptFailure {
                    attempt: 0,
                    kind: FailureKind::Divergence,
                    detail: "diverged".into(),
                },
                AttemptFailure {
                    attempt: 1,
                    kind: FailureKind::Timeout,
                    detail: "took too long".into(),
                },
            ],
            events: vec![mea_obs::events::Event {
                seq: 41,
                t_us: 1_234,
                kind: mea_obs::events::EventKind::SolveFailed,
                item: mea_obs::events::job_key(4),
                info: 1,
                value: 250.0,
            }],
        };
        let bytes = encode_failure(&report);
        let back = decode_failure(&bytes).unwrap();
        assert_eq!(back.item, report.item);
        assert_eq!(back.kind, report.kind);
        assert_eq!(back.detail, report.detail);
        assert_eq!(back.attempts.len(), 2);
        assert_eq!(back.attempts[0].kind, FailureKind::Divergence);
        assert_eq!(back.attempts[1].attempt, 1);
        assert_eq!(back.events.len(), 1, "the flight-recorder tail ships");
        assert_eq!(back.events[0].seq, 41);
        assert_eq!(back.events[0].item, mea_obs::events::job_key(4));

        // A pre-v2 blob ends right after the attempts: still decodes,
        // with an empty tail.
        let tail_len = 8 + report.events.len() * (8 + 8 + 1 + 8 + 8 + 8);
        let legacy = &bytes[..bytes.len() - tail_len];
        let old = decode_failure(legacy).unwrap();
        assert_eq!(old.attempts.len(), 2);
        assert!(old.events.is_empty());
    }

    #[test]
    fn truncated_blobs_never_panic() {
        let ds = WetLabDataset::generate(MeaGrid::square(3), &AnomalyConfig::default(), 3).unwrap();
        let tps = Pipeline::new(ParmaConfig::default(), 1.5)
            .unwrap()
            .run(&ds)
            .unwrap();
        let bytes = encode_time_points(&tps);
        for len in 0..bytes.len().min(200) {
            assert!(decode_time_points(&bytes[..len]).is_err());
        }
        // And from the tail end, where the per-tp loop is mid-record.
        for cut in 1..50 {
            assert!(decode_time_points(&bytes[..bytes.len() - cut]).is_err());
        }
    }
}
