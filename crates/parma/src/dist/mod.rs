//! Fault-tolerant multi-process sharding: the coordinator side.
//!
//! A [`Coordinator`] listens for `parma worker` processes, shards work
//! over them with the **same deterministic block partition `mpi_sim`
//! uses** ([`mea_parallel::dist::shard_ranges`]), and survives worker
//! death: heartbeats with deadline-based death detection, automatic
//! reassignment of in-flight tasks to surviving workers, and graceful
//! degradation to in-process solving when the last worker dies.
//!
//! # Exactly-once effects, at-least-once dispatch
//!
//! A task may be *dispatched* more than once — its worker died, or
//! stalled past the heartbeat deadline and was declared dead — but it is
//! *decided* exactly once: every terminal transition goes through one
//! `decide` call under the state mutex, and a late result for an
//! already-decided task is counted (`parma.dist.duplicates`) and
//! discarded, never double-applied. Callers consume each decision once
//! via [`Coordinator::take_decided`], which is where journaling happens —
//! so the fsync'd journal inherits the exactly-once property.
//!
//! # Why redispatch preserves bitwise determinism
//!
//! Tasks are whole datasets (or pure functions of the task blob), solved
//! by the same supervised pipeline whichever process runs them, and
//! warm-starting never crosses a dataset boundary. Re-running a task on a
//! different worker — or in-process after total worker loss — therefore
//! produces bit-identical output, which is what lets the chaos tests
//! demand byte-identical journals under SIGKILL.

pub mod codec;
pub mod telemetry;
pub mod worker;

use mea_obs::events::{emit_for, now_us, EventKind};
use mea_obs::fleet::FleetStore;
use mea_obs::timeline::DispatchTrace;
use mea_parallel::dist::{
    read_frame, write_frame, FrameError, HeartbeatPolicy, MsgKind, PayloadReader, PayloadWriter,
};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coordinator-side robustness policy.
#[derive(Clone, Copy, Debug)]
pub struct DistPolicy {
    /// Heartbeat cadence pushed to workers and the death deadline.
    pub heartbeat: HeartbeatPolicy,
    /// How many times a task may be dispatched before a worker death
    /// quarantines it as lost instead of requeueing it.
    pub max_dispatches: usize,
}

impl Default for DistPolicy {
    fn default() -> Self {
        DistPolicy {
            heartbeat: HeartbeatPolicy::default(),
            max_dispatches: 3,
        }
    }
}

/// Terminal state of one submitted task.
#[derive(Debug)]
pub enum TaskOutcome {
    /// A worker returned a success blob.
    Ok {
        /// The worker that produced it (journaled as the `worker` field).
        worker: u64,
        /// Caller-defined result payload.
        blob: Vec<u8>,
    },
    /// A worker returned a failure blob (a quarantine it decided).
    Failed {
        /// The worker that produced it.
        worker: u64,
        /// Caller-defined failure payload.
        blob: Vec<u8>,
    },
    /// Never ran remotely: the last worker died (or none ever connected)
    /// while this task was pending. The caller runs it in-process — the
    /// graceful-degradation path.
    NoWorkers,
    /// Dispatched [`DistPolicy::max_dispatches`] times, every worker died
    /// mid-task. The caller decides whether to run it in-process or
    /// quarantine it as a worker-death failure.
    WorkerLost {
        /// Total dispatch attempts consumed.
        dispatches: usize,
    },
}

struct TaskMeta {
    blob: Arc<Vec<u8>>,
    /// (index, total) for the deterministic block-partition affinity.
    affinity: (usize, usize),
    dispatches: usize,
}

#[derive(Default)]
struct State {
    /// Undecided tasks, keyed by ticket.
    tasks: HashMap<u64, TaskMeta>,
    /// Tickets ready to claim, ascending (deterministic steal order).
    pending: BTreeSet<u64>,
    /// Ticket → worker currently solving it.
    in_flight: HashMap<u64, u64>,
    /// Decided tasks awaiting [`Coordinator::take_decided`].
    decided: HashMap<u64, TaskOutcome>,
    /// Live worker ids, ascending (rank = position).
    live: BTreeSet<u64>,
    /// Late results for already-decided tasks, discarded not applied.
    duplicates: u64,
    next_ticket: u64,
    next_worker: u64,
    ever_joined: bool,
    shutting_down: bool,
}

/// Per-ticket dispatch history: the raw material of `parma obs timeline`.
/// Its own mutex, never held together with the scheduling state — trace
/// recording must not add contention to the decide path.
#[derive(Default)]
struct TraceLog {
    jobs: HashMap<u64, Vec<DispatchTrace>>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    policy: DistPolicy,
    /// The batch-wide trace id, minted at bind.
    trace_id: u64,
    /// Everything workers have shipped back on heartbeats.
    fleet: Arc<FleetStore>,
    /// Dispatch/ack records per ticket.
    trace: Mutex<TraceLog>,
    /// Clock-probe sequence numbers (0 is the handshake probe).
    probe_seq: AtomicU64,
}

impl Shared {
    fn new(policy: DistPolicy) -> Shared {
        Shared {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            policy,
            trace_id: mea_obs::context::mint_id(),
            fleet: Arc::new(FleetStore::new()),
            trace: Mutex::new(TraceLog::default()),
            probe_seq: AtomicU64::new(1),
        }
    }
}

/// The worker-facing coordinator: a TCP listener plus the shared task
/// queue. See the module docs for the fault model.
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the worker listener (use port 0 for an ephemeral port) and
    /// starts accepting workers.
    pub fn bind(addr: &str, policy: DistPolicy) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(policy));
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("parma-dist-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn coordinator accept thread");
        Ok(Coordinator {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound listener address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The batch-wide trace id every dispatch of this coordinator runs
    /// under (minted at bind, nonzero, 48-bit).
    pub fn trace_id(&self) -> u64 {
        self.shared.trace_id
    }

    /// The fleet telemetry store: per-worker counters, histograms,
    /// retained flight-recorder tails and clock offsets, merged from
    /// heartbeat telemetry. Share it with a metrics exporter.
    pub fn fleet(&self) -> Arc<FleetStore> {
        Arc::clone(&self.shared.fleet)
    }

    /// The dispatch history of one ticket, with each record's clock
    /// offset filled from the freshest per-worker estimate. Empty if the
    /// ticket was never dispatched (e.g. decided `NoWorkers`).
    pub fn job_trace(&self, ticket: u64) -> Vec<DispatchTrace> {
        let mut records = self
            .shared
            .trace
            .lock()
            .expect("dist trace log")
            .jobs
            .get(&ticket)
            .cloned()
            .unwrap_or_default();
        for d in &mut records {
            if let Some(w) = self.shared.fleet.worker(d.worker) {
                d.offset_us = w.offset_us;
            }
        }
        records
    }

    /// Currently connected (live) workers.
    pub fn worker_count(&self) -> usize {
        self.shared.state.lock().expect("dist state").live.len()
    }

    /// Blocks until at least `n` workers are connected, or the timeout
    /// elapses. Returns whether the quorum arrived.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("dist state");
        while state.live.len() < n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(state, left)
                .expect("dist state poisoned");
            state = guard;
        }
        true
    }

    /// Submits one task. `affinity` is the task's (index, total) within
    /// its batch: workers prefer tasks whose index falls in their
    /// deterministic block of `0..total` and steal ascending otherwise.
    /// Returns the ticket to pass to [`Self::take_decided`].
    pub fn submit(&self, blob: Vec<u8>, affinity: (usize, usize)) -> u64 {
        let mut state = self.shared.state.lock().expect("dist state");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.tasks.insert(
            ticket,
            TaskMeta {
                blob: Arc::new(blob),
                affinity,
                dispatches: 0,
            },
        );
        state.pending.insert(ticket);
        // Nobody to run it and nobody coming: degrade immediately rather
        // than hanging the caller. (Before the first worker ever joins,
        // tasks wait — the children are still connecting.)
        if state.ever_joined && state.live.is_empty() {
            decide(&mut state, ticket, TaskOutcome::NoWorkers);
        }
        self.shared.cv.notify_all();
        ticket
    }

    /// Blocks until one of `tickets` is decided, removes it from the set,
    /// and returns it with its outcome. Each decision is consumed exactly
    /// once — this is the serialization point callers journal behind.
    ///
    /// # Panics
    /// Panics if `tickets` is empty.
    pub fn take_decided(&self, tickets: &mut BTreeSet<u64>) -> (u64, TaskOutcome) {
        assert!(!tickets.is_empty(), "take_decided on an empty ticket set");
        let mut state = self.shared.state.lock().expect("dist state");
        loop {
            if let Some(&t) = tickets.iter().find(|t| state.decided.contains_key(t)) {
                tickets.remove(&t);
                let outcome = state.decided.remove(&t).expect("checked above");
                return (t, outcome);
            }
            state = self.shared.cv.wait(state).expect("dist state poisoned");
        }
    }

    /// Signals shutdown without joining: dispatchers send `Shutdown` to
    /// their workers and exit, the accept loop stops. For callers that
    /// hold the coordinator in an `Arc` (the serve daemon); the `Drop`
    /// impl joins the accept thread when the last reference goes.
    pub fn begin_shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("dist state");
            state.shutting_down = true;
            self.shared.cv.notify_all();
        }
        // Wake the blocking accept() so the thread can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Sends `Shutdown` to connected workers, stops accepting, and joins
    /// the accept thread. In-flight state is dropped; call only after the
    /// submitted work is fully consumed.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.begin_shutdown();
            h.join().ok();
        }
    }
}

/// The single terminal transition: first decision wins, later ones are
/// duplicates. Only call with the state lock held.
fn decide(state: &mut State, ticket: u64, outcome: TaskOutcome) -> bool {
    if state.tasks.remove(&ticket).is_none() {
        state.duplicates += 1;
        mea_obs::counter_add("parma.dist.duplicates", 1);
        emit_for(EventKind::DistDuplicate, ticket, 0, 0.0);
        return false;
    }
    state.pending.remove(&ticket);
    state.in_flight.remove(&ticket);
    state.decided.insert(ticket, outcome);
    true
}

/// Removes a dead worker and reassigns (or quarantines) its in-flight
/// task. Idempotent — the reader and dispatcher may both report the same
/// death.
fn worker_dead(shared: &Shared, id: u64) {
    {
        let mut state = shared.state.lock().expect("dist state");
        if !state.live.remove(&id) {
            return;
        }
        mea_obs::counter_add("parma.dist.worker_deaths", 1);
        mea_obs::gauge_set("parma.dist.workers", state.live.len() as f64);
        emit_for(EventKind::DistWorkerDead, id, 0, 0.0);
        let lost: Vec<u64> = state
            .in_flight
            .iter()
            .filter(|&(_, w)| *w == id)
            .map(|(&t, _)| t)
            .collect();
        for t in lost {
            state.in_flight.remove(&t);
            let dispatches = state.tasks.get(&t).map_or(0, |m| m.dispatches);
            if dispatches >= shared.policy.max_dispatches {
                decide(&mut state, t, TaskOutcome::WorkerLost { dispatches });
            } else {
                state.pending.insert(t);
                mea_obs::counter_add("parma.dist.reassigned", 1);
                emit_for(EventKind::DistReassign, t, id, dispatches as f64);
            }
        }
        // Last worker gone: everything still pending degrades to in-process.
        if state.live.is_empty() {
            let pending: Vec<u64> = state.pending.iter().copied().collect();
            for t in pending {
                decide(&mut state, t, TaskOutcome::NoWorkers);
            }
        }
        shared.cv.notify_all();
    }
    // Outside the scheduling lock: the worker's labels drop from the
    // exposition (its retained flight-recorder tail stays readable), and
    // every dispatch it never acked becomes a "lost" timeline edge.
    shared.fleet.mark_dead(id);
    let mut trace = shared.trace.lock().expect("dist trace log");
    for records in trace.jobs.values_mut() {
        for d in records.iter_mut() {
            if d.worker == id && d.ack_us == 0 && d.outcome.is_empty() {
                d.outcome = "lost".into();
            }
        }
    }
}

/// Picks the next task for `worker`: its own deterministic block first
/// (the `mpi_sim` partition over the task's batch), then the lowest
/// pending ticket (steal). Lock held by the caller.
fn claim(state: &State, worker: u64) -> Option<u64> {
    let first = *state.pending.iter().next()?;
    let rank = state.live.iter().position(|&w| w == worker)?;
    let live = state.live.len();
    for &t in &state.pending {
        let Some(meta) = state.tasks.get(&t) else {
            continue;
        };
        let (index, total) = meta.affinity;
        if total == 0 {
            continue;
        }
        let block = mea_parallel::mpi_sim::block_range(total, live.min(total).max(1), {
            let p = live.min(total).max(1);
            rank.min(p - 1)
        });
        if block.contains(&index) {
            return Some(t);
        }
    }
    Some(first)
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shared.state.lock().expect("dist state").shutting_down {
            return;
        }
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("parma-dist-worker-io".into())
            .spawn(move || {
                let _ = serve_worker(stream, &shared);
            })
            .expect("spawn worker service thread");
    }
}

/// Handshakes one worker connection, then splits into the reader (this
/// thread: heartbeats, results, death detection) and a dispatcher thread
/// (assignments, idle keepalives) over a cloned stream.
fn serve_worker(mut stream: TcpStream, shared: &Shared) -> Result<(), FrameError> {
    let policy = shared.policy;
    stream.set_read_timeout(Some(policy.heartbeat.deadline))?;
    stream.set_nodelay(true).ok();
    let hello = read_frame(&mut stream)?;
    if hello.kind != MsgKind::Hello {
        return Err(FrameError::BadKind(hello.kind as u8));
    }
    let mut r = PayloadReader::new(&hello.payload);
    let name = r
        .take_str()
        .map_err(|_| FrameError::BadChecksum)?
        .to_string();

    let id = {
        let mut state = shared.state.lock().expect("dist state");
        let id = state.next_worker;
        state.next_worker += 1;
        state.live.insert(id);
        state.ever_joined = true;
        mea_obs::counter_add("parma.dist.worker_joins", 1);
        mea_obs::gauge_set("parma.dist.workers", state.live.len() as f64);
        emit_for(EventKind::DistWorkerJoin, id, 0, 0.0);
        shared.cv.notify_all();
        id
    };
    shared.fleet.join(id, &name);
    let mut ack = PayloadWriter::new();
    ack.put_u64(id);
    ack.put_u64(policy.heartbeat.interval.as_millis() as u64);
    // v2 tail (a v1 worker never reads this far): telemetry flags and the
    // handshake clock probe, echoed on the worker's first beat.
    ack.put_u8(if mea_obs::is_live() { 1 } else { 0 });
    ack.put_u64(0); // probe seq 0 = the handshake probe
    ack.put_u64(now_us());
    if write_frame(&mut stream, MsgKind::HelloAck, &ack.into_bytes()).is_err() {
        worker_dead(shared, id);
        return Ok(());
    }

    // Dispatcher: waits for claimable work, writes Assign frames, sends
    // idle keepalives so the worker can detect a dead coordinator.
    let dispatch_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            worker_dead(shared, id);
            return Ok(());
        }
    };
    std::thread::scope(|scope| {
        scope.spawn(|| dispatch_loop(dispatch_stream, shared, id));
        reader_loop(&mut stream, shared, id);
    });
    Ok(())
}

/// Claims tasks for `id` and writes `Assign` frames. Exits when the
/// worker dies (observed via the live set) or the coordinator drains.
fn dispatch_loop(mut stream: TcpStream, shared: &Shared, id: u64) {
    loop {
        let assignment = {
            let mut state = shared.state.lock().expect("dist state");
            loop {
                if !state.live.contains(&id) {
                    return;
                }
                if state.shutting_down {
                    let _ = write_frame(&mut stream, MsgKind::Shutdown, &[]);
                    return;
                }
                let busy = state.in_flight.values().any(|&w| w == id);
                if !busy {
                    if let Some(t) = claim(&state, id) {
                        state.pending.remove(&t);
                        state.in_flight.insert(t, id);
                        let meta = state.tasks.get_mut(&t).expect("claimed tasks exist");
                        meta.dispatches += 1;
                        let blob = Arc::clone(&meta.blob);
                        break Some((t, blob, meta.dispatches));
                    }
                }
                let (guard, timeout) = shared
                    .cv
                    .wait_timeout(state, shared.policy.heartbeat.interval)
                    .expect("dist state poisoned");
                state = guard;
                if timeout.timed_out() {
                    // Idle keepalive: lets the worker's read deadline see a
                    // live coordinator, and lets us notice a dead worker
                    // even with no work to hand it. v2 keepalives double as
                    // clock probes — the worker echoes them on its next
                    // beat, re-estimating its offset each round trip.
                    drop(state);
                    let probe = telemetry::encode_probe(telemetry::Probe {
                        seq: shared.probe_seq.fetch_add(1, Ordering::Relaxed),
                        t_c_send_us: now_us(),
                    });
                    if write_frame(&mut stream, MsgKind::Heartbeat, &probe).is_err() {
                        worker_dead(shared, id);
                        return;
                    }
                    state = shared.state.lock().expect("dist state");
                }
            }
        };
        let Some((ticket, blob, _)) = assignment else {
            return;
        };
        // Mint this attempt's span; a redispatch chains to the previous
        // attempt's span so `parma obs timeline` can follow the lineage.
        let span_id = mea_obs::context::mint_id();
        let worker_name = shared
            .fleet
            .worker(id)
            .map(|w| w.name)
            .unwrap_or_else(|| format!("w?{id}"));
        let parent_span = {
            let mut trace = shared.trace.lock().expect("dist trace log");
            let records = trace.jobs.entry(ticket).or_default();
            let parent = records.last().map_or(0, |d| d.span_id);
            records.push(DispatchTrace {
                span_id,
                parent_span: parent,
                worker: id,
                worker_name,
                dispatch_us: now_us(),
                ..Default::default()
            });
            parent
        };
        let mut payload = PayloadWriter::new();
        payload.put_u64(ticket);
        payload.put_bytes(&blob);
        // v2 tail: the trace context this dispatch runs under.
        payload.put_u64(shared.trace_id);
        payload.put_u64(span_id);
        payload.put_u64(parent_span);
        mea_obs::counter_add("parma.dist.dispatched", 1);
        emit_for(EventKind::DistDispatch, ticket, id, 0.0);
        if write_frame(&mut stream, MsgKind::Assign, &payload.into_bytes()).is_err() {
            worker_dead(shared, id);
            return;
        }
    }
}

/// Reads frames from one worker until it dies: heartbeats refresh the
/// deadline (each successful read restarts the socket timeout), results
/// decide tasks, anything else — timeout, EOF, a torn or corrupt frame —
/// is a death.
fn reader_loop(stream: &mut TcpStream, shared: &Shared, id: u64) {
    loop {
        match read_frame(stream) {
            Ok(frame) => match frame.kind {
                MsgKind::Heartbeat => {
                    mea_obs::counter_add("parma.dist.heartbeats", 1);
                    // v2 beats ship telemetry; v1 beats (empty payload)
                    // are plain keepalives. A beat that fails to decode is
                    // dropped — telemetry is best-effort, liveness is what
                    // the frame itself proved.
                    if !frame.payload.is_empty() {
                        if let Ok(beat) = telemetry::TelemetryBeat::decode(&frame.payload) {
                            if let Some(echo) = beat.echo {
                                let t_c_recv = now_us();
                                let rtt = t_c_recv.saturating_sub(echo.t_c_send_us);
                                let mid = echo.t_c_send_us + rtt / 2;
                                let offset = echo.t_w_recv_us as i64 - mid as i64;
                                shared.fleet.update_clock(id, offset, rtt);
                            }
                            let drops = beat.drops;
                            let mut update = beat.into_update();
                            if drops > 0 {
                                update
                                    .counters
                                    .push(("parma.dist.worker.telemetry_drops".into(), drops));
                            }
                            shared.fleet.merge(id, update);
                        }
                    }
                }
                MsgKind::Result => {
                    let t_c_recv = now_us();
                    let mut r = PayloadReader::new(&frame.payload);
                    let parsed = (|| {
                        let ticket = r.take_u64()?;
                        let status = r.take_u8()?;
                        let blob = r.take_bytes()?.to_vec();
                        // v2 tail: the worker's own solve timestamps.
                        let stamps = if r.remaining() >= 16 {
                            Some((r.take_u64()?, r.take_u64()?))
                        } else {
                            None
                        };
                        Ok::<_, mea_parallel::dist::DecodeError>((ticket, status, blob, stamps))
                    })();
                    let Ok((ticket, status, blob, stamps)) = parsed else {
                        worker_dead(shared, id);
                        return;
                    };
                    {
                        let mut trace = shared.trace.lock().expect("dist trace log");
                        if let Some(d) = trace
                            .jobs
                            .get_mut(&ticket)
                            .and_then(|r| r.iter_mut().rev().find(|d| d.worker == id))
                        {
                            d.ack_us = t_c_recv;
                            if let Some((start, end)) = stamps {
                                d.solve_start_us = start;
                                d.solve_end_us = end;
                            }
                            d.outcome = if status == 0 { "ok" } else { "failed" }.into();
                        }
                    }
                    let outcome = if status == 0 {
                        TaskOutcome::Ok { worker: id, blob }
                    } else {
                        TaskOutcome::Failed { worker: id, blob }
                    };
                    let mut state = shared.state.lock().expect("dist state");
                    // Only a result for a task this worker holds counts;
                    // anything else is late (already decided or reassigned)
                    // and is discarded as a duplicate.
                    if state.in_flight.get(&ticket) == Some(&id) {
                        decide(&mut state, ticket, outcome);
                    } else {
                        state.duplicates += 1;
                        mea_obs::counter_add("parma.dist.duplicates", 1);
                        emit_for(EventKind::DistDuplicate, ticket, id, 0.0);
                    }
                    shared.cv.notify_all();
                }
                MsgKind::Shutdown => {
                    worker_dead(shared, id);
                    return;
                }
                _ => {
                    worker_dead(shared, id);
                    return;
                }
            },
            Err(_) => {
                worker_dead(shared, id);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_ok(worker: u64) -> TaskOutcome {
        TaskOutcome::Ok {
            worker,
            blob: vec![1],
        }
    }

    #[test]
    fn decide_is_exactly_once_and_counts_duplicates() {
        let mut state = State::default();
        state.tasks.insert(
            7,
            TaskMeta {
                blob: Arc::new(vec![0]),
                affinity: (0, 1),
                dispatches: 1,
            },
        );
        state.in_flight.insert(7, 0);
        assert!(decide(&mut state, 7, outcome_ok(0)));
        assert!(!decide(&mut state, 7, outcome_ok(1)), "second decide loses");
        assert_eq!(state.duplicates, 1);
        assert!(
            matches!(
                state.decided.get(&7),
                Some(TaskOutcome::Ok { worker: 0, .. })
            ),
            "the first decision's payload survives"
        );
    }

    #[test]
    fn claim_prefers_the_deterministic_block_then_steals() {
        let mut state = State::default();
        for t in 0..10u64 {
            state.tasks.insert(
                t,
                TaskMeta {
                    blob: Arc::new(vec![]),
                    affinity: (t as usize, 10),
                    dispatches: 0,
                },
            );
            state.pending.insert(t);
        }
        state.live.insert(3);
        state.live.insert(8);
        // Worker 3 has rank 0 → block [0,5); worker 8 rank 1 → block [5,10).
        assert_eq!(claim(&state, 3), Some(0));
        assert_eq!(claim(&state, 8), Some(5));
        // Rank-1's block exhausted → steals the global minimum.
        for t in 5..10u64 {
            state.pending.remove(&t);
        }
        assert_eq!(claim(&state, 8), Some(0));
        // An unknown worker (already removed from live) claims nothing.
        assert_eq!(claim(&state, 99), None);
    }

    #[test]
    fn worker_death_requeues_then_quarantines_at_the_cap() {
        let shared = Shared::new(DistPolicy {
            max_dispatches: 2,
            ..Default::default()
        });
        {
            let mut state = shared.state.lock().unwrap();
            state.ever_joined = true;
            state.live.insert(0);
            state.live.insert(1);
            state.tasks.insert(
                4,
                TaskMeta {
                    blob: Arc::new(vec![]),
                    affinity: (0, 1),
                    dispatches: 1,
                },
            );
            state.in_flight.insert(4, 0);
        }
        // First death: below the cap → requeued for worker 1.
        worker_dead(&shared, 0);
        {
            let mut state = shared.state.lock().unwrap();
            assert!(state.pending.contains(&4));
            assert!(state.decided.is_empty());
            // Redispatch to worker 1.
            state.pending.remove(&4);
            state.in_flight.insert(4, 1);
            state.tasks.get_mut(&4).unwrap().dispatches = 2;
        }
        // Second death: at the cap → quarantined as lost, and since no
        // workers remain, nothing else would have run anyway.
        worker_dead(&shared, 1);
        let state = shared.state.lock().unwrap();
        assert!(matches!(
            state.decided.get(&4),
            Some(TaskOutcome::WorkerLost { dispatches: 2 })
        ));
    }

    #[test]
    fn last_death_degrades_pending_tasks_to_no_workers() {
        let shared = Shared::new(DistPolicy::default());
        {
            let mut state = shared.state.lock().unwrap();
            state.ever_joined = true;
            state.live.insert(0);
            for t in 0..3u64 {
                state.tasks.insert(
                    t,
                    TaskMeta {
                        blob: Arc::new(vec![]),
                        affinity: (t as usize, 3),
                        dispatches: 0,
                    },
                );
                state.pending.insert(t);
            }
        }
        worker_dead(&shared, 0);
        let state = shared.state.lock().unwrap();
        assert_eq!(state.decided.len(), 3);
        assert!(state
            .decided
            .values()
            .all(|o| matches!(o, TaskOutcome::NoWorkers)));
    }

    #[test]
    fn submit_after_total_worker_loss_degrades_immediately() {
        let coord = Coordinator::bind("127.0.0.1:0", DistPolicy::default()).unwrap();
        {
            let mut state = coord.shared.state.lock().unwrap();
            state.ever_joined = true; // a worker joined and died earlier
        }
        let t = coord.submit(vec![1, 2], (0, 1));
        let mut tickets: BTreeSet<u64> = [t].into_iter().collect();
        let (ticket, outcome) = coord.take_decided(&mut tickets);
        assert_eq!(ticket, t);
        assert!(matches!(outcome, TaskOutcome::NoWorkers));
        assert!(tickets.is_empty());
        coord.shutdown();
    }
}
