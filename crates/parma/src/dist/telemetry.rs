//! Telemetry and clock-probe payloads carried on `parma-wire/v2`
//! `Heartbeat` frames.
//!
//! v1 heartbeats had empty payloads and meant only "still alive". v2
//! keeps that meaning (an empty payload is still a valid keepalive) and
//! adds two *optional* payload shapes, distinguished by a leading tag
//! byte:
//!
//! * [`TAG_PROBE`] (coordinator → worker): a clock probe — a sequence
//!   number and the coordinator's monotonic clock at send time. The
//!   worker echoes it back immediately, stamped with its own clock, so
//!   the coordinator can estimate `worker_clock − coordinator_clock` by
//!   the midpoint method (see `mea_obs::timeline`).
//! * [`TAG_BEAT`] (worker → coordinator): a bounded telemetry beat —
//!   optionally a probe echo, then cumulative counters, mergeable
//!   histogram snapshots and a flight-recorder tail. Everything is
//!   cumulative, so a beat dropped under backpressure costs freshness,
//!   never correctness, and the caps below bound the payload regardless
//!   of how chatty the worker's instruments are.
//!
//! A v1 peer ignores heartbeat payloads entirely, so both shapes are
//! backward compatible by construction.

use mea_obs::events::{Event, EventKind};
use mea_obs::fleet::TelemetryUpdate;
use mea_obs::hist::HistSnapshot;
use mea_parallel::dist::{DecodeError, PayloadReader, PayloadWriter};

/// Heartbeat payload tag: a coordinator→worker clock probe.
pub const TAG_PROBE: u8 = 1;
/// Heartbeat payload tag: a worker→coordinator telemetry beat.
pub const TAG_BEAT: u8 = 2;

/// Most counters one beat ships (the encoder truncates, the decoder
/// rejects anything claiming more).
pub const MAX_COUNTERS: usize = 64;
/// Most histogram snapshots one beat ships.
pub const MAX_HISTS: usize = 16;
/// Most flight-recorder events one beat ships.
pub const MAX_EVENTS: usize = 32;
/// Longest instrument name shipped; longer names are dropped.
pub const MAX_NAME: usize = 120;

/// A coordinator→worker clock probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Monotonically increasing probe number.
    pub seq: u64,
    /// Coordinator clock at send, µs.
    pub t_c_send_us: u64,
}

/// Serializes a probe payload.
pub fn encode_probe(probe: Probe) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u8(TAG_PROBE);
    w.put_u64(probe.seq);
    w.put_u64(probe.t_c_send_us);
    w.into_bytes()
}

/// Parses a heartbeat payload as a probe. `None` for empty payloads
/// (plain v1 keepalives) and payloads of any other shape — probes are
/// best-effort, so malformed ones are simply not probes.
pub fn decode_probe(payload: &[u8]) -> Option<Probe> {
    let mut r = PayloadReader::new(payload);
    if r.take_u8().ok()? != TAG_PROBE {
        return None;
    }
    Some(Probe {
        seq: r.take_u64().ok()?,
        t_c_send_us: r.take_u64().ok()?,
    })
}

/// A probe echo riding inside a telemetry beat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeEcho {
    /// The probe's sequence number, copied back.
    pub seq: u64,
    /// The coordinator send stamp, copied back so the coordinator needs
    /// no per-probe bookkeeping.
    pub t_c_send_us: u64,
    /// Worker clock when the probe was *received*, µs — the instant that
    /// provably lies between the coordinator's send and receive times.
    pub t_w_recv_us: u64,
}

/// One worker→coordinator telemetry beat.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryBeat {
    /// Echo of the most recent unanswered clock probe, if any.
    pub echo: Option<ProbeEcho>,
    /// Cumulative counter values, capped at [`MAX_COUNTERS`].
    pub counters: Vec<(String, u64)>,
    /// Cumulative histogram snapshots, capped at [`MAX_HISTS`].
    pub hists: Vec<(String, HistSnapshot)>,
    /// The newest flight-recorder events, capped at [`MAX_EVENTS`].
    pub events: Vec<Event>,
    /// Telemetry beats this worker has dropped so far (writer busy).
    pub drops: u64,
}

impl TelemetryBeat {
    /// Builds a beat from this process's live instruments: every
    /// `parma.*` counter, every histogram, and the newest ring events —
    /// each truncated to its cap, newest-first priority for events.
    pub fn from_local(echo: Option<ProbeEcho>, drops: u64) -> TelemetryBeat {
        let snap = mea_obs::snapshot();
        let counters = snap
            .counters
            .into_iter()
            .filter(|(name, _)| name.len() <= MAX_NAME)
            .take(MAX_COUNTERS)
            .collect();
        let hists = snap
            .hists
            .into_iter()
            .filter(|(name, _)| name.len() <= MAX_NAME)
            .take(MAX_HISTS)
            .collect();
        let events = mea_obs::events::recent_events(MAX_EVENTS);
        TelemetryBeat {
            echo,
            counters,
            hists,
            events,
            drops,
        }
    }

    /// Serializes the beat, enforcing every cap.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.put_u8(TAG_BEAT);
        match self.echo {
            Some(e) => {
                w.put_u8(1);
                w.put_u64(e.seq);
                w.put_u64(e.t_c_send_us);
                w.put_u64(e.t_w_recv_us);
            }
            None => w.put_u8(0),
        }
        let counters: Vec<_> = self.counters.iter().take(MAX_COUNTERS).collect();
        w.put_u32(counters.len() as u32);
        for (name, v) in counters {
            w.put_str(name);
            w.put_u64(*v);
        }
        let hists: Vec<_> = self.hists.iter().take(MAX_HISTS).collect();
        w.put_u32(hists.len() as u32);
        for (name, h) in hists {
            w.put_str(name);
            w.put_u64(h.count);
            w.put_f64(h.sum);
            w.put_f64(h.min);
            w.put_f64(h.max);
            w.put_u32(h.buckets.len() as u32);
            for &(idx, count) in &h.buckets {
                w.put_u32(idx as u32);
                w.put_u64(count);
            }
        }
        let events: Vec<_> = self.events.iter().take(MAX_EVENTS).collect();
        w.put_u32(events.len() as u32);
        for e in events {
            w.put_u64(e.seq);
            w.put_u64(e.t_us);
            w.put_u8(e.kind.code());
            w.put_u64(e.item);
            w.put_u64(e.info);
            w.put_f64(e.value);
        }
        w.put_u64(self.drops);
        w.into_bytes()
    }

    /// Deserializes a beat, rejecting payloads that claim more entries
    /// than the caps allow (so a corrupt length can't balloon memory).
    pub fn decode(payload: &[u8]) -> Result<TelemetryBeat, DecodeError> {
        let mut r = PayloadReader::new(payload);
        let tag = r.take_u8()?;
        if tag != TAG_BEAT {
            return Err(DecodeError::BadTag(tag));
        }
        let echo = match r.take_u8()? {
            0 => None,
            _ => Some(ProbeEcho {
                seq: r.take_u64()?,
                t_c_send_us: r.take_u64()?,
                t_w_recv_us: r.take_u64()?,
            }),
        };
        let nc = r.take_u32()? as usize;
        if nc > MAX_COUNTERS {
            return Err(DecodeError::Truncated);
        }
        let mut counters = Vec::with_capacity(nc);
        for _ in 0..nc {
            counters.push((r.take_str()?.to_string(), r.take_u64()?));
        }
        let nh = r.take_u32()? as usize;
        if nh > MAX_HISTS {
            return Err(DecodeError::Truncated);
        }
        let mut hists = Vec::with_capacity(nh);
        for _ in 0..nh {
            let name = r.take_str()?.to_string();
            let count = r.take_u64()?;
            let sum = r.take_f64()?;
            let min = r.take_f64()?;
            let max = r.take_f64()?;
            let nb = r.take_u32()? as usize;
            if nb > 4096 {
                return Err(DecodeError::Truncated);
            }
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                buckets.push((r.take_u32()? as usize, r.take_u64()?));
            }
            hists.push((
                name,
                HistSnapshot {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            ));
        }
        let ne = r.take_u32()? as usize;
        if ne > MAX_EVENTS {
            return Err(DecodeError::Truncated);
        }
        let mut events = Vec::with_capacity(ne);
        for _ in 0..ne {
            let seq = r.take_u64()?;
            let t_us = r.take_u64()?;
            let code = r.take_u8()?;
            let kind = EventKind::from_code(code).ok_or(DecodeError::BadTag(code))?;
            events.push(Event {
                seq,
                t_us,
                kind,
                item: r.take_u64()?,
                info: r.take_u64()?,
                value: r.take_f64()?,
            });
        }
        let drops = r.take_u64()?;
        Ok(TelemetryBeat {
            echo,
            counters,
            hists,
            events,
            drops,
        })
    }

    /// Converts the beat into the fleet store's merge input.
    pub fn into_update(self) -> TelemetryUpdate {
        TelemetryUpdate {
            counters: self.counters,
            hists: self.hists,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_beat() -> TelemetryBeat {
        TelemetryBeat {
            echo: Some(ProbeEcho {
                seq: 7,
                t_c_send_us: 1_000,
                t_w_recv_us: 5_500,
            }),
            counters: vec![("parma.dist.worker.assignments".into(), 3)],
            hists: vec![(
                "parma.dist.worker.solve_ms".into(),
                HistSnapshot::from_values(&[1.5, 2.5, 40.0]),
            )],
            events: vec![Event {
                seq: 9,
                t_us: 1234,
                kind: EventKind::DistTraceAdopt,
                item: mea_obs::events::job_key(2),
                info: 0xabc,
                value: 0xdef as f64,
            }],
            drops: 1,
        }
    }

    #[test]
    fn beats_round_trip() {
        let beat = sample_beat();
        let back = TelemetryBeat::decode(&beat.encode()).unwrap();
        assert_eq!(back, beat);
        let empty = TelemetryBeat::default();
        assert_eq!(TelemetryBeat::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn probes_round_trip_and_keepalives_are_not_probes() {
        let p = Probe {
            seq: 4,
            t_c_send_us: 99,
        };
        assert_eq!(decode_probe(&encode_probe(p)), Some(p));
        assert_eq!(decode_probe(&[]), None, "v1 empty keepalive");
        assert_eq!(decode_probe(&sample_beat().encode()), None);
    }

    #[test]
    fn truncated_beats_never_panic() {
        let bytes = sample_beat().encode();
        for len in 0..bytes.len() {
            assert!(TelemetryBeat::decode(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn oversized_counts_are_rejected_not_allocated() {
        // Forge a beat claiming u32::MAX counters right after the header.
        let mut w = PayloadWriter::new();
        w.put_u8(TAG_BEAT);
        w.put_u8(0);
        w.put_u32(u32::MAX);
        assert!(TelemetryBeat::decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn encode_truncates_to_caps() {
        let mut beat = TelemetryBeat::default();
        for i in 0..(MAX_COUNTERS + 10) {
            beat.counters.push((format!("c{i}"), i as u64));
        }
        let back = TelemetryBeat::decode(&beat.encode()).unwrap();
        assert_eq!(back.counters.len(), MAX_COUNTERS);
    }
}
