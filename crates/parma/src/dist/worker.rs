//! Worker side of the `parma-wire/v2` protocol.
//!
//! [`run_worker`] connects to a coordinator, handshakes, then loops:
//! solve `Assign` frames through a caller-supplied handler and stream
//! `Heartbeat` frames from a side thread at the coordinator-negotiated
//! cadence. The worker is deliberately stateless between tasks — any
//! task can run on any worker, which is what makes reassignment after a
//! death bitwise-safe.
//!
//! # Tracing and telemetry (v2)
//!
//! Each `Assign` carries the coordinator's trace context; the worker
//! adopts it (thread-local) for the handler's duration and stamps solve
//! start/end on its own monotonic clock into the `Result` tail. Clock
//! probes arriving on coordinator keepalives are echoed immediately from
//! the read loop, so the round trip stays tight. When the coordinator
//! asked for live telemetry (HelloAck flag), the cadence beats carry a
//! bounded snapshot of this process's counters, histograms and newest
//! flight-recorder events; if the writer is busy the payload is
//! **dropped, never waited for** — the beat degrades to the plain v1
//! keepalive and `parma.dist.worker.telemetry_drops` counts the loss.
//!
//! # Chaos injection
//!
//! `PARMA_DIST_CHAOS="<phase>:<ticket>:<name>"` makes the worker named
//! `<name>` die abruptly around ticket `<ticket>` (`*` strikes on the
//! worker's first assignment, whatever its ticket — useful when task
//! routing is racy):
//!
//! * `dispatch` — dies the instant the `Assign` frame is decoded,
//! * `mid-solve` — a killer thread fires while the handler runs,
//! * `pre-ack` — computes the result, writes *half* the `Result` frame,
//!   then dies (the torn frame must read as an I/O error upstream).
//!
//! Death is `std::process::abort()`: no unwinding, no flushes — the
//! closest in-process stand-in for SIGKILL, and the CI chaos matrix
//! additionally kills real worker processes with signals.

use super::telemetry::{self, ProbeEcho, TelemetryBeat};
use mea_obs::context::TraceContext;
use mea_obs::events::{emit_for, job_key, now_us, EventKind};
use mea_parallel::dist::{
    encode_frame, read_frame, write_frame, FrameError, MsgKind, PayloadReader, PayloadWriter,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maps an `Assign` payload blob to a result blob: `Ok` for a solved
/// task, `Err` for a task the worker decided to fail (both are shipped
/// back; transport errors are signalled by dying instead).
pub type TaskHandler = dyn Fn(u64, &[u8]) -> Result<Vec<u8>, Vec<u8>> + Sync;

/// What a worker did before the coordinator released it.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerSummary {
    /// Tasks solved and acknowledged.
    pub processed: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ChaosPhase {
    Dispatch,
    MidSolve,
    PreAck,
}

struct Chaos {
    phase: ChaosPhase,
    /// `None` strikes on any assignment (the `*` spec).
    ticket: Option<u64>,
}

/// Parses `PARMA_DIST_CHAOS` for this worker's name; `None` means the
/// plan targets another worker (or is absent/malformed).
fn chaos_plan(name: &str) -> Option<Chaos> {
    let spec = std::env::var("PARMA_DIST_CHAOS").ok()?;
    let mut parts = spec.splitn(3, ':');
    let phase = match parts.next()? {
        "dispatch" => ChaosPhase::Dispatch,
        "mid-solve" => ChaosPhase::MidSolve,
        "pre-ack" => ChaosPhase::PreAck,
        _ => return None,
    };
    let ticket: Option<u64> = match parts.next()? {
        "*" => None,
        t => Some(t.parse().ok()?),
    };
    if parts.next()? != name {
        return None;
    }
    Some(Chaos { phase, ticket })
}

/// Connects to `addr`, registers as `name`, and processes assignments
/// until the coordinator says `Shutdown` (clean exit) or disappears
/// (EOF / read deadline — also a clean worker exit: the coordinator owns
/// the work, the worker just stops).
pub fn run_worker(addr: &str, name: &str, handler: &TaskHandler) -> Result<WorkerSummary, String> {
    run_worker_with(addr, name, handler, &mut |_| {})
}

/// [`run_worker`] with a post-handshake hook: `on_registered` runs once
/// with the coordinator-assigned worker id, before the first assignment.
/// The CLI uses it to start this process's metrics listener with the id
/// stamped into `/snapshot` meta, so scraped fleet JSON is attributable.
pub fn run_worker_with(
    addr: &str,
    name: &str,
    handler: &TaskHandler,
    on_registered: &mut dyn FnMut(u64),
) -> Result<WorkerSummary, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("worker: connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();

    let mut hello = PayloadWriter::new();
    hello.put_str(name);
    write_frame(&mut stream, MsgKind::Hello, &hello.into_bytes())
        .map_err(|e| format!("worker: hello: {e}"))?;
    let ack = read_frame(&mut stream).map_err(|e| format!("worker: handshake: {e}"))?;
    if ack.kind != MsgKind::HelloAck {
        return Err(format!("worker: expected HelloAck, got {:?}", ack.kind));
    }
    let mut r = PayloadReader::new(&ack.payload);
    let worker_id = r.take_u64().map_err(|e| format!("worker: ack: {e:?}"))?;
    let interval_ms = r.take_u64().map_err(|e| format!("worker: ack: {e:?}"))?;
    // v2 tail: telemetry flags plus the handshake clock probe. A v1
    // coordinator's ack ends right here (`remaining() == 0`).
    let mut live_telemetry = false;
    let mut handshake_echo = None;
    if r.remaining() >= 17 {
        let flags = r.take_u8().map_err(|e| format!("worker: ack: {e:?}"))?;
        let seq = r.take_u64().map_err(|e| format!("worker: ack: {e:?}"))?;
        let t_c_send_us = r.take_u64().map_err(|e| format!("worker: ack: {e:?}"))?;
        live_telemetry = flags & 1 != 0;
        handshake_echo = Some(ProbeEcho {
            seq,
            t_c_send_us,
            t_w_recv_us: now_us(),
        });
    }
    if live_telemetry {
        // The coordinator wants telemetry beats: turn the local live
        // instruments on so there is something to ship.
        mea_obs::set_live(true);
    }
    on_registered(worker_id);
    let interval = Duration::from_millis(interval_ms.max(10));
    // Tolerate a coordinator busy under load: our read deadline is far
    // looser than the coordinator's death deadline for us.
    stream
        .set_read_timeout(Some(interval * 50))
        .map_err(|e| format!("worker: deadline: {e}"))?;

    let writer = Arc::new(Mutex::new(
        stream
            .try_clone()
            .map_err(|e| format!("worker: clone stream: {e}"))?,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let drops = Arc::new(AtomicU64::new(0));
    // Answer the handshake probe at once: this is the offset estimate
    // every dispatch before the first keepalive round trip relies on.
    if let Some(echo) = handshake_echo {
        let beat = TelemetryBeat {
            echo: Some(echo),
            ..Default::default()
        };
        let mut w = writer.lock().expect("worker writer");
        let _ = write_frame(&mut *w, MsgKind::Heartbeat, &beat.encode());
    }
    let beat_writer = Arc::clone(&writer);
    let beat_stop = Arc::clone(&stop);
    let beat_drops = Arc::clone(&drops);
    let heartbeat = std::thread::Builder::new()
        .name(format!("parma-worker-hb-{worker_id}"))
        .spawn(move || {
            while !beat_stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if live_telemetry {
                    // Build the payload before touching the writer, then
                    // only *try* the lock: a beat never waits on telemetry.
                    let beat = TelemetryBeat::from_local(None, beat_drops.load(Ordering::Relaxed));
                    if let Ok(mut w) = beat_writer.try_lock() {
                        if write_frame(&mut *w, MsgKind::Heartbeat, &beat.encode()).is_err() {
                            return; // coordinator gone; main loop sees EOF too
                        }
                        continue;
                    }
                    // Writer busy (a Result or probe echo in flight): drop
                    // the payload and degrade to the plain v1 keepalive.
                    let n = beat_drops.fetch_add(1, Ordering::Relaxed) + 1;
                    emit_for(
                        EventKind::DistTelemetryDrop,
                        mea_obs::events::worker_key(worker_id),
                        n,
                        0.0,
                    );
                }
                let mut w = beat_writer.lock().expect("worker writer");
                if write_frame(&mut *w, MsgKind::Heartbeat, &[]).is_err() {
                    return; // coordinator gone; main loop will see EOF too
                }
            }
        })
        .map_err(|e| format!("worker: spawn heartbeat: {e}"))?;

    let chaos = chaos_plan(name);
    let mut summary = WorkerSummary::default();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            // Coordinator gone (EOF, deadline, or a torn frame): stop.
            Err(FrameError::Io(_)) => break,
            Err(e) => {
                stop.store(true, Ordering::Relaxed);
                heartbeat.join().ok();
                return Err(format!("worker: protocol error: {e}"));
            }
        };
        match frame.kind {
            MsgKind::Heartbeat => {
                // Coordinator keepalive; in v2 it may carry a clock probe,
                // echoed immediately so the round trip stays tight. (An
                // echo during a solve waits for the read loop anyway — the
                // coordinator filters those by their inflated RTT.)
                if let Some(p) = telemetry::decode_probe(&frame.payload) {
                    let beat = TelemetryBeat {
                        echo: Some(ProbeEcho {
                            seq: p.seq,
                            t_c_send_us: p.t_c_send_us,
                            t_w_recv_us: now_us(),
                        }),
                        drops: drops.load(Ordering::Relaxed),
                        ..Default::default()
                    };
                    let mut w = writer.lock().expect("worker writer");
                    if write_frame(&mut *w, MsgKind::Heartbeat, &beat.encode()).is_err() {
                        break; // coordinator gone mid-echo
                    }
                }
            }
            MsgKind::Shutdown => break,
            MsgKind::Assign => {
                let mut r = PayloadReader::new(&frame.payload);
                let parsed = r
                    .take_u64()
                    .and_then(|t| r.take_bytes().map(|b| (t, b.to_vec())));
                let Ok((ticket, blob)) = parsed else {
                    stop.store(true, Ordering::Relaxed);
                    heartbeat.join().ok();
                    return Err("worker: malformed Assign payload".into());
                };
                // v2 tail: the trace context this dispatch runs under
                // (absent from a v1 coordinator's frames).
                let ctx = if r.remaining() >= 24 {
                    TraceContext {
                        trace_id: r.take_u64().unwrap_or(0),
                        span_id: r.take_u64().unwrap_or(0),
                        parent_span: r.take_u64().unwrap_or(0),
                    }
                } else {
                    TraceContext::default()
                };
                let struck = chaos
                    .as_ref()
                    .is_some_and(|c| c.ticket.is_none_or(|t| t == ticket));
                if struck && chaos.as_ref().unwrap().phase == ChaosPhase::Dispatch {
                    std::process::abort();
                }
                if struck && chaos.as_ref().unwrap().phase == ChaosPhase::MidSolve {
                    std::thread::spawn(|| {
                        std::thread::sleep(Duration::from_millis(8));
                        std::process::abort();
                    });
                }
                let (status, body, t_start, t_end) = {
                    // Adopt the dispatch's trace context and the job's
                    // namespaced item scope for the handler's duration, so
                    // every event the solve emits is attributable to this
                    // exact dispatch attempt.
                    let _ctx = mea_obs::context::context_scope(ctx);
                    let _item = mea_obs::events::item_scope(job_key(ticket));
                    if ctx.is_set() {
                        emit_for(
                            EventKind::DistTraceAdopt,
                            job_key(ticket),
                            ctx.span_id,
                            ctx.trace_id as f64,
                        );
                    }
                    mea_obs::counter_add("parma.dist.worker.assignments", 1);
                    // Ship the adoption before solving: a worker killed
                    // mid-solve must already have delivered the events
                    // naming the dispatch it died holding, or the
                    // coordinator's retained forensics start empty. Same
                    // dropped-not-blocking rule as the cadence beats.
                    if live_telemetry {
                        let beat = TelemetryBeat::from_local(None, drops.load(Ordering::Relaxed));
                        if let Ok(mut w) = writer.try_lock() {
                            let _ = write_frame(&mut *w, MsgKind::Heartbeat, &beat.encode());
                        } else {
                            drops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let t_start = now_us();
                    let (status, body) = match handler(ticket, &blob) {
                        Ok(b) => (0u8, b),
                        Err(b) => (1u8, b),
                    };
                    let t_end = now_us();
                    mea_obs::hist::record(
                        "parma.dist.worker.solve_ms",
                        (t_end.saturating_sub(t_start)) as f64 / 1e3,
                    );
                    (status, body, t_start, t_end)
                };
                let mut payload = PayloadWriter::new();
                payload.put_u64(ticket);
                payload.put_u8(status);
                payload.put_bytes(&body);
                // v2 tail: solve start/end on this worker's clock.
                payload.put_u64(t_start);
                payload.put_u64(t_end);
                let result = encode_frame(MsgKind::Result, &payload.into_bytes());
                if struck && chaos.as_ref().unwrap().phase == ChaosPhase::PreAck {
                    let mut w = writer.lock().expect("worker writer");
                    let _ = w.write_all(&result[..result.len() / 2]);
                    let _ = w.flush();
                    std::process::abort();
                }
                let sent = {
                    let mut w = writer.lock().expect("worker writer");
                    w.write_all(&result).and_then(|_| w.flush())
                };
                if sent.is_err() {
                    break; // coordinator gone mid-ack
                }
                summary.processed += 1;
            }
            other => {
                stop.store(true, Ordering::Relaxed);
                heartbeat.join().ok();
                return Err(format!("worker: unexpected frame {other:?}"));
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    heartbeat.join().ok();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plan_parses_and_filters_by_name() {
        // Set/unset is process-global; run the sub-cases in one test to
        // avoid racing parallel tests over the env var.
        std::env::set_var("PARMA_DIST_CHAOS", "mid-solve:3:w1");
        let hit = chaos_plan("w1").expect("matching name parses");
        assert!(hit.phase == ChaosPhase::MidSolve && hit.ticket == Some(3));
        assert!(chaos_plan("w2").is_none(), "other workers are untouched");
        std::env::set_var("PARMA_DIST_CHAOS", "pre-ack:*:w1");
        let any = chaos_plan("w1").expect("wildcard ticket parses");
        assert!(any.phase == ChaosPhase::PreAck && any.ticket.is_none());
        std::env::set_var("PARMA_DIST_CHAOS", "sideways:3:w1");
        assert!(chaos_plan("w1").is_none(), "unknown phases are ignored");
        std::env::remove_var("PARMA_DIST_CHAOS");
        assert!(chaos_plan("w1").is_none());
    }
}
