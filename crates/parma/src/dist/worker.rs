//! Worker side of the `parma-wire/v1` protocol.
//!
//! [`run_worker`] connects to a coordinator, handshakes, then loops:
//! solve `Assign` frames through a caller-supplied handler and stream
//! `Heartbeat` frames from a side thread at the coordinator-negotiated
//! cadence. The worker is deliberately stateless between tasks — any
//! task can run on any worker, which is what makes reassignment after a
//! death bitwise-safe.
//!
//! # Chaos injection
//!
//! `PARMA_DIST_CHAOS="<phase>:<ticket>:<name>"` makes the worker named
//! `<name>` die abruptly around ticket `<ticket>` (`*` strikes on the
//! worker's first assignment, whatever its ticket — useful when task
//! routing is racy):
//!
//! * `dispatch` — dies the instant the `Assign` frame is decoded,
//! * `mid-solve` — a killer thread fires while the handler runs,
//! * `pre-ack` — computes the result, writes *half* the `Result` frame,
//!   then dies (the torn frame must read as an I/O error upstream).
//!
//! Death is `std::process::abort()`: no unwinding, no flushes — the
//! closest in-process stand-in for SIGKILL, and the CI chaos matrix
//! additionally kills real worker processes with signals.

use mea_parallel::dist::{
    encode_frame, read_frame, write_frame, FrameError, MsgKind, PayloadReader, PayloadWriter,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maps an `Assign` payload blob to a result blob: `Ok` for a solved
/// task, `Err` for a task the worker decided to fail (both are shipped
/// back; transport errors are signalled by dying instead).
pub type TaskHandler = dyn Fn(u64, &[u8]) -> Result<Vec<u8>, Vec<u8>> + Sync;

/// What a worker did before the coordinator released it.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerSummary {
    /// Tasks solved and acknowledged.
    pub processed: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ChaosPhase {
    Dispatch,
    MidSolve,
    PreAck,
}

struct Chaos {
    phase: ChaosPhase,
    /// `None` strikes on any assignment (the `*` spec).
    ticket: Option<u64>,
}

/// Parses `PARMA_DIST_CHAOS` for this worker's name; `None` means the
/// plan targets another worker (or is absent/malformed).
fn chaos_plan(name: &str) -> Option<Chaos> {
    let spec = std::env::var("PARMA_DIST_CHAOS").ok()?;
    let mut parts = spec.splitn(3, ':');
    let phase = match parts.next()? {
        "dispatch" => ChaosPhase::Dispatch,
        "mid-solve" => ChaosPhase::MidSolve,
        "pre-ack" => ChaosPhase::PreAck,
        _ => return None,
    };
    let ticket: Option<u64> = match parts.next()? {
        "*" => None,
        t => Some(t.parse().ok()?),
    };
    if parts.next()? != name {
        return None;
    }
    Some(Chaos { phase, ticket })
}

/// Connects to `addr`, registers as `name`, and processes assignments
/// until the coordinator says `Shutdown` (clean exit) or disappears
/// (EOF / read deadline — also a clean worker exit: the coordinator owns
/// the work, the worker just stops).
pub fn run_worker(addr: &str, name: &str, handler: &TaskHandler) -> Result<WorkerSummary, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("worker: connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();

    let mut hello = PayloadWriter::new();
    hello.put_str(name);
    write_frame(&mut stream, MsgKind::Hello, &hello.into_bytes())
        .map_err(|e| format!("worker: hello: {e}"))?;
    let ack = read_frame(&mut stream).map_err(|e| format!("worker: handshake: {e}"))?;
    if ack.kind != MsgKind::HelloAck {
        return Err(format!("worker: expected HelloAck, got {:?}", ack.kind));
    }
    let mut r = PayloadReader::new(&ack.payload);
    let worker_id = r.take_u64().map_err(|e| format!("worker: ack: {e:?}"))?;
    let interval_ms = r.take_u64().map_err(|e| format!("worker: ack: {e:?}"))?;
    let interval = Duration::from_millis(interval_ms.max(10));
    // Tolerate a coordinator busy under load: our read deadline is far
    // looser than the coordinator's death deadline for us.
    stream
        .set_read_timeout(Some(interval * 50))
        .map_err(|e| format!("worker: deadline: {e}"))?;

    let writer = Arc::new(Mutex::new(
        stream
            .try_clone()
            .map_err(|e| format!("worker: clone stream: {e}"))?,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let beat_writer = Arc::clone(&writer);
    let beat_stop = Arc::clone(&stop);
    let heartbeat = std::thread::Builder::new()
        .name(format!("parma-worker-hb-{worker_id}"))
        .spawn(move || {
            while !beat_stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let mut w = beat_writer.lock().expect("worker writer");
                if write_frame(&mut *w, MsgKind::Heartbeat, &[]).is_err() {
                    return; // coordinator gone; main loop will see EOF too
                }
            }
        })
        .map_err(|e| format!("worker: spawn heartbeat: {e}"))?;

    let chaos = chaos_plan(name);
    let mut summary = WorkerSummary::default();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            // Coordinator gone (EOF, deadline, or a torn frame): stop.
            Err(FrameError::Io(_)) => break,
            Err(e) => {
                stop.store(true, Ordering::Relaxed);
                heartbeat.join().ok();
                return Err(format!("worker: protocol error: {e}"));
            }
        };
        match frame.kind {
            MsgKind::Heartbeat => {} // coordinator keepalive
            MsgKind::Shutdown => break,
            MsgKind::Assign => {
                let mut r = PayloadReader::new(&frame.payload);
                let parsed = r
                    .take_u64()
                    .and_then(|t| r.take_bytes().map(|b| (t, b.to_vec())));
                let Ok((ticket, blob)) = parsed else {
                    stop.store(true, Ordering::Relaxed);
                    heartbeat.join().ok();
                    return Err("worker: malformed Assign payload".into());
                };
                let struck = chaos
                    .as_ref()
                    .is_some_and(|c| c.ticket.is_none_or(|t| t == ticket));
                if struck && chaos.as_ref().unwrap().phase == ChaosPhase::Dispatch {
                    std::process::abort();
                }
                if struck && chaos.as_ref().unwrap().phase == ChaosPhase::MidSolve {
                    std::thread::spawn(|| {
                        std::thread::sleep(Duration::from_millis(8));
                        std::process::abort();
                    });
                }
                let (status, body) = match handler(ticket, &blob) {
                    Ok(b) => (0u8, b),
                    Err(b) => (1u8, b),
                };
                let mut payload = PayloadWriter::new();
                payload.put_u64(ticket);
                payload.put_u8(status);
                payload.put_bytes(&body);
                let result = encode_frame(MsgKind::Result, &payload.into_bytes());
                if struck && chaos.as_ref().unwrap().phase == ChaosPhase::PreAck {
                    let mut w = writer.lock().expect("worker writer");
                    let _ = w.write_all(&result[..result.len() / 2]);
                    let _ = w.flush();
                    std::process::abort();
                }
                let sent = {
                    let mut w = writer.lock().expect("worker writer");
                    w.write_all(&result).and_then(|_| w.flush())
                };
                if sent.is_err() {
                    break; // coordinator gone mid-ack
                }
                summary.processed += 1;
            }
            other => {
                stop.store(true, Ordering::Relaxed);
                heartbeat.join().ok();
                return Err(format!("worker: unexpected frame {other:?}"));
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    heartbeat.join().ok();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plan_parses_and_filters_by_name() {
        // Set/unset is process-global; run the sub-cases in one test to
        // avoid racing parallel tests over the env var.
        std::env::set_var("PARMA_DIST_CHAOS", "mid-solve:3:w1");
        let hit = chaos_plan("w1").expect("matching name parses");
        assert!(hit.phase == ChaosPhase::MidSolve && hit.ticket == Some(3));
        assert!(chaos_plan("w2").is_none(), "other workers are untouched");
        std::env::set_var("PARMA_DIST_CHAOS", "pre-ack:*:w1");
        let any = chaos_plan("w1").expect("wildcard ticket parses");
        assert!(any.phase == ChaosPhase::PreAck && any.ticket.is_none());
        std::env::set_var("PARMA_DIST_CHAOS", "sideways:3:w1");
        assert!(chaos_plan("w1").is_none(), "unknown phases are ignored");
        std::env::remove_var("PARMA_DIST_CHAOS");
        assert!(chaos_plan("w1").is_none());
    }
}
