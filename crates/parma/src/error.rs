//! Error type of the core library.

use std::fmt;

/// Failures of the Parma pipeline.
#[derive(Debug)]
pub enum ParmaError {
    /// The numeric substrate failed (factorization, convergence, …).
    Linalg(mea_linalg::LinalgError),
    /// A configuration value is out of range; the payload says which.
    InvalidConfig(String),
    /// Measured data is unusable; the payload says why.
    InvalidMeasurement(String),
    /// The solver exhausted its iteration budget. Carries the final
    /// relative residual and the partial resistor estimate so callers can
    /// inspect (or accept) it.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final scale-free residual.
        residual: f64,
        /// The estimate at stop time.
        partial: mea_model::ResistorGrid,
    },
    /// Dataset ingestion failed.
    Dataset(mea_model::DatasetError),
    /// A supervised solve ran out of its time budget. Carries the estimate
    /// at stop time so callers can inspect (or accept) it.
    Timeout {
        /// Iterations completed before the deadline fired.
        iterations: usize,
        /// The estimate at stop time, when one exists at this layer.
        partial: Option<mea_model::ResistorGrid>,
    },
    /// A supervised solve was cancelled via its `CancelToken`.
    Cancelled {
        /// Iterations completed before cancellation.
        iterations: usize,
    },
}

impl fmt::Display for ParmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParmaError::Linalg(e) => write!(f, "numeric failure: {e}"),
            ParmaError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            ParmaError::InvalidMeasurement(s) => write!(f, "invalid measurement: {s}"),
            ParmaError::NoConvergence {
                iterations,
                residual,
                ..
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            ParmaError::Dataset(e) => write!(f, "dataset failure: {e}"),
            ParmaError::Timeout { iterations, .. } => {
                write!(f, "solve deadline exceeded after {iterations} iterations")
            }
            ParmaError::Cancelled { iterations } => {
                write!(f, "solve cancelled after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for ParmaError {}

impl From<mea_linalg::LinalgError> for ParmaError {
    fn from(e: mea_linalg::LinalgError) -> Self {
        ParmaError::Linalg(e)
    }
}

impl From<mea_model::DatasetError> for ParmaError {
    fn from(e: mea_model::DatasetError) -> Self {
        ParmaError::Dataset(e)
    }
}
