//! Parallel equation formation — the workload of the paper's Figures 6, 7
//! and 9, runnable under every execution strategy.
//!
//! The work unit is one `(pair, category)` block (see
//! [`crate::betti::BettiSchedule::formation_items`]); blocks are formed
//! independently and flattened back into the canonical pair-major,
//! category-ordered layout, so the output is *identical* to the sequential
//! `mea_equations::form_all_equations` regardless of strategy — the
//! property the equivalence tests pin down.

use crate::betti::BettiSchedule;
use mea_equations::{form_category_equations, ConstraintCategory, Equation};
use mea_model::ZMatrix;
use mea_parallel::{execute, Strategy, CATEGORY_COUNT};

/// Forms the full joint-constraint system under a strategy.
///
/// Equations come back in the canonical order (pair-major; source,
/// destination, `Ua*`, `Ub*` within each pair).
pub fn form_equations_parallel(z: &ZMatrix, voltage: f64, strategy: Strategy) -> Vec<Equation> {
    let _span = mea_obs::span("parma/form_equations");
    let grid = z.grid();
    let schedule = BettiSchedule::new(grid);
    let items = schedule.formation_items();
    let blocks: Vec<Vec<Equation>> = execute(strategy, &items, |w| {
        let pair = w.id / CATEGORY_COUNT;
        let (i, j) = (pair / grid.cols(), pair % grid.cols());
        form_category_equations(
            grid,
            i,
            j,
            voltage,
            z.get(i, j),
            ConstraintCategory::ALL[w.category],
        )
    });
    let mut out = Vec::with_capacity(grid.equations());
    for block in blocks {
        out.extend(block);
    }
    mea_obs::counter_add("equations.formed", out.len() as u64);
    out
}

/// The four §IV-A category labels in block order, for reporting.
pub fn category_order() -> [ConstraintCategory; 4] {
    ConstraintCategory::ALL
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_equations::form_all_equations;
    use mea_model::{AnomalyConfig, ForwardSolver, MeaGrid};

    fn measured(n: usize, seed: u64) -> ZMatrix {
        let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
        ForwardSolver::new(&truth).unwrap().solve_all()
    }

    #[test]
    fn every_strategy_reproduces_the_sequential_system() {
        let z = measured(5, 17);
        let reference = form_all_equations(&z, 5.0);
        for strategy in [
            Strategy::SingleThread,
            Strategy::Parallel4,
            Strategy::BalancedParallel { threads: 3 },
            Strategy::FineGrained { threads: 2 },
            Strategy::WorkStealing { threads: 2 },
        ] {
            let formed = form_equations_parallel(&z, 5.0, strategy);
            assert_eq!(formed, reference, "strategy {strategy:?} diverged");
        }
    }

    #[test]
    fn works_on_rectangular_grids() {
        let grid = MeaGrid::new(2, 4);
        let (truth, _) = AnomalyConfig::default().generate(grid, 3);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let formed = form_equations_parallel(&z, 5.0, Strategy::BalancedParallel { threads: 2 });
        assert_eq!(formed, form_all_equations(&z, 5.0));
    }

    #[test]
    fn formed_system_validates_against_physics() {
        use mea_equations::EquationSystem;
        let grid = MeaGrid::square(4);
        let (truth, _) = AnomalyConfig::default().generate(grid, 8);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let formed = form_equations_parallel(&z, 5.0, Strategy::FineGrained { threads: 2 });
        let sys = EquationSystem::from_equations(&z, 5.0, formed);
        let x = sys.exact_unknowns_for(&truth).unwrap();
        assert!(sys.max_residual(&x) < 1e-9);
    }

    #[test]
    fn category_order_is_canonical() {
        assert_eq!(category_order()[0], ConstraintCategory::Source);
        assert_eq!(category_order()[3], ConstraintCategory::IntermediateUb);
    }
}
