//! A whole-system solver: Gauss-Newton on the literal `2n³` joint-constraint
//! equations over all `(2n−1)n²` unknowns (`R`, `Ua`, `Ub` together).
//!
//! The production solver (`crate::solver`) eliminates the intermediate
//! voltages analytically via the shared Laplacian factorization; this
//! solver instead consumes the equation system exactly as §IV-A writes it
//! — the way a downstream solver would consume Parma's generated equation
//! files — using the analytic sparse Jacobian (`mea_equations::jacobian`)
//! and CGLS for the least-squares step. It is the third independent path
//! to the same root and the one that exercises the sparse substrate
//! end-to-end.

use crate::error::ParmaError;
use mea_equations::{EquationSystem, JacobianTemplate};
#[cfg(test)]
use mea_linalg::{cgls, CooTriplets};
use mea_linalg::{cgls_into, vec_ops, CglsOptions, CglsWorkspace, CsrMatrix, CsrPattern};
use mea_model::{ForwardSolver, ForwardWorkspace, ResistorGrid, ZMatrix};
use mea_parallel::{CancelToken, Interrupt};

/// Options for [`full_newton_inverse`].
#[derive(Clone, Copy, Debug)]
pub struct FullNewtonOptions {
    /// Convergence target on ‖residual‖∞ (mA — the equations balance
    /// currents).
    pub tol: f64,
    /// Outer Gauss-Newton iterations.
    pub max_iter: usize,
    /// Inner CGLS relative tolerance.
    pub inner_tol: f64,
    /// Inner CGLS iteration budget.
    pub inner_max_iter: usize,
    /// Backtracking halvings per outer step.
    pub max_backtracks: usize,
}

impl Default for FullNewtonOptions {
    fn default() -> Self {
        FullNewtonOptions {
            tol: 1e-10,
            max_iter: 40,
            inner_tol: 1e-10,
            inner_max_iter: 2_000,
            max_backtracks: 25,
        }
    }
}

/// Outcome of a whole-system solve.
#[derive(Clone, Debug)]
pub struct FullNewtonOutcome {
    /// The recovered resistor map.
    pub resistors: ResistorGrid,
    /// Outer iterations used.
    pub iterations: usize,
    /// Final ‖residual‖∞.
    pub residual: f64,
    /// Outer iterations that needed a Tikhonov-damped retry after the plain
    /// Gauss-Newton step failed its line search (0 on healthy solves).
    pub regularized_steps: usize,
}

/// Stacks `√λ·I` under the Jacobian so CGLS minimizes
/// `‖J·δ + F‖² + λ‖δ‖²` — the Levenberg–Marquardt damped step. The
/// augmented right-hand side is the caller's padded with `cols` zeros.
///
/// One-shot reference path (re-sorts per call); the solver itself uses
/// [`TikhonovCache`], which freezes the augmented structure once and
/// refills values per λ. Kept as the oracle the cache is tested against.
#[cfg(test)]
fn tikhonov_stack(jac: &CsrMatrix, lambda: f64) -> CsrMatrix {
    let (m, n) = (jac.rows(), jac.cols());
    let mut coo = CooTriplets::new(m + n, n);
    for r in 0..m {
        for (c, v) in jac.row_entries(r) {
            coo.push(r, c, v);
        }
    }
    let s = lambda.sqrt();
    for i in 0..n {
        coo.push(m + i, i, s);
    }
    coo.to_csr()
}

/// The frozen structure of the `[J; √λ·I]` stack: built once per solve
/// from the Jacobian template's pattern, refilled per damping strength.
///
/// In slot order the augmented matrix's values are exactly the Jacobian's
/// values followed by the `n` diagonal entries of the `√λ·I` tail (row-
/// major CSR puts rows `m..m+n` last), so a refill is one `memcpy` plus
/// one fill — no triplets, no sort.
struct TikhonovCache {
    aug: CsrMatrix,
    jac_nnz: usize,
}

impl TikhonovCache {
    /// Freezes the augmented structure for a Jacobian with this pattern.
    fn new(pattern: &CsrPattern) -> Self {
        let (m, n) = (pattern.rows(), pattern.cols());
        let mut positions: Vec<(usize, usize)> = Vec::with_capacity(pattern.nnz() + n);
        for r in 0..m {
            for slot in pattern.row_slots(r) {
                positions.push((r, pattern.col_at(slot)));
            }
        }
        for i in 0..n {
            positions.push((m + i, i));
        }
        let aug = CsrPattern::from_positions(m + n, n, &positions)
            .expect("augmented positions are in bounds by construction")
            .matrix_zeroed();
        TikhonovCache {
            aug,
            jac_nnz: pattern.nnz(),
        }
    }

    /// Refills the stack with the current Jacobian values and damping
    /// strength, returning the ready-to-use operator.
    fn refill(&mut self, jac: &CsrMatrix, lambda: f64) -> &CsrMatrix {
        debug_assert_eq!(jac.nnz(), self.jac_nnz, "Jacobian structure drifted");
        let values = self.aug.values_mut();
        values[..self.jac_nnz].copy_from_slice(jac.values());
        values[self.jac_nnz..].fill(lambda.sqrt());
        &self.aug
    }
}

/// `max_j ‖column j‖²` of the Jacobian — the scale reference for the
/// Levenberg–Marquardt damping parameter (Marquardt's `τ·max diag(JᵀJ)`).
fn max_column_norm_sq(jac: &CsrMatrix) -> f64 {
    let mut col_sq = vec![0.0f64; jac.cols()];
    for r in 0..jac.rows() {
        for (c, v) in jac.row_entries(r) {
            col_sq[c] += v * v;
        }
    }
    col_sq.into_iter().fold(0.0, f64::max)
}

/// Solves the full joint-constraint system for a measured `Z`.
///
/// Seeding: `R⁰ = κ·Z` (the uniform-mode-exact scaling) and one forward
/// solve of `R⁰` for the intermediate voltages; after that the iteration
/// never touches the Laplacian again — it works purely on the symbolic
/// equation system.
pub fn full_newton_inverse(
    z: &ZMatrix,
    voltage: f64,
    opts: &FullNewtonOptions,
) -> Result<FullNewtonOutcome, ParmaError> {
    full_newton_supervised(z, voltage, opts, &CancelToken::unbounded())
}

/// Like [`full_newton_inverse`] but under a [`CancelToken`], polled once
/// per outer Gauss-Newton iteration. A fired deadline surfaces as
/// [`ParmaError::Timeout`] carrying the current resistor estimate; an
/// uninterrupted run performs identical floating-point work to the
/// unsupervised entry point.
pub fn full_newton_supervised(
    z: &ZMatrix,
    voltage: f64,
    opts: &FullNewtonOptions,
    token: &CancelToken,
) -> Result<FullNewtonOutcome, ParmaError> {
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    if !(voltage > 0.0 && voltage.is_finite()) {
        return Err(ParmaError::InvalidMeasurement(
            "voltage must be positive".into(),
        ));
    }
    let grid = z.grid();
    let sys = EquationSystem::assemble(z, voltage);
    // Seed.
    let kappa = (grid.rows() * grid.cols()) as f64 / (grid.rows() + grid.cols() - 1) as f64;
    let mut r0 = z.clone();
    for v in r0.as_mut_slice() {
        *v *= kappa;
    }
    let mut x = sys.exact_unknowns_for(&r0)?;
    let crossings = grid.crossings();

    let _span = mea_obs::span("parma/full_newton");
    let mut trace = mea_obs::SeriesRecorder::new(
        "parma.full_newton.residuals",
        "parma.full_newton.iterations",
    );
    // Symbolic work happens exactly once per topology: the template freezes
    // the Jacobian's structure (and the damped retry's augmented structure);
    // every iteration below is a pure numeric refill, no sorting.
    let template = JacobianTemplate::analyze(&sys);
    let mut jac = template.matrix_zeroed();
    let mut tikhonov: Option<TikhonovCache> = None;
    let mut fx = sys.residuals(&x);
    let mut regularized_steps = 0usize;
    // Reusable numeric state: one CGLS workspace shared by the plain step
    // and every damped retry, plus the right-hand-side and line-search
    // buffers — the outer iteration allocates nothing in steady state.
    let mut cgls_ws = CglsWorkspace::new();
    let mut neg_f = vec![0.0; fx.len()];
    let mut rhs: Vec<f64> = Vec::new();
    let mut step_scratch = StepScratch::new(grid);
    let inner_opts = CglsOptions {
        tol: opts.inner_tol,
        max_iter: opts.inner_max_iter,
    };
    for it in 0..opts.max_iter {
        // Iteration-boundary supervision only: no check inside the numeric
        // work, so an uninterrupted run keeps its bits.
        if let Some(interrupt) = token.check() {
            return Err(match interrupt {
                Interrupt::TimedOut => ParmaError::Timeout {
                    iterations: it,
                    partial: Some(sys.unpack_resistors(&x)),
                },
                Interrupt::Cancelled => ParmaError::Cancelled { iterations: it },
            });
        }
        let res = vec_ops::norm_inf(&fx);
        trace.push(res);
        if res <= opts.tol {
            return Ok(FullNewtonOutcome {
                resistors: sys.unpack_resistors(&x),
                iterations: it,
                residual: res,
                regularized_steps,
            });
        }
        template.numeric(&x, &mut jac);
        for (o, &v) in neg_f.iter_mut().zip(&fx) {
            *o = -v;
        }
        cgls_into(&jac, &neg_f, &inner_opts, &mut cgls_ws).map_err(ParmaError::Linalg)?;
        let mut advanced = try_step(
            &sys,
            &mut x,
            &mut fx,
            cgls_ws.solution(),
            res,
            crossings,
            opts,
            &mut step_scratch,
        );
        if !advanced {
            // The plain Gauss-Newton direction is unusable even fully
            // backtracked — typically a (near-)singular Jacobian making the
            // CGLS step point nowhere useful. Retry with Tikhonov damping at
            // escalating strength: stack √λ·I under J so the step minimizes
            // ‖J·δ + F‖² + λ‖δ‖² and shortens toward steepest descent.
            let scale = max_column_norm_sq(&jac).max(f64::MIN_POSITIVE);
            rhs.clear();
            rhs.extend_from_slice(&neg_f);
            rhs.resize(neg_f.len() + jac.cols(), 0.0);
            let cache = tikhonov.get_or_insert_with(|| TikhonovCache::new(template.pattern()));
            for k in 0..4 {
                let lambda = scale * 1e-6 * 100f64.powi(k);
                let aug = cache.refill(&jac, lambda);
                if cgls_into(aug, &rhs, &inner_opts, &mut cgls_ws).is_err() {
                    continue;
                }
                if try_step(
                    &sys,
                    &mut x,
                    &mut fx,
                    cgls_ws.solution(),
                    res,
                    crossings,
                    opts,
                    &mut step_scratch,
                ) {
                    advanced = true;
                    regularized_steps += 1;
                    mea_obs::counter_add("parma.full_newton.recoveries", 1);
                    break;
                }
            }
        }
        if !advanced {
            return Err(ParmaError::NoConvergence {
                iterations: it,
                residual: res,
                partial: sys.unpack_resistors(&x),
            });
        }
    }
    let res = vec_ops::norm_inf(&fx);
    trace.push(res);
    if res <= opts.tol {
        Ok(FullNewtonOutcome {
            resistors: sys.unpack_resistors(&x),
            iterations: opts.max_iter,
            residual: res,
            regularized_steps,
        })
    } else {
        Err(ParmaError::NoConvergence {
            iterations: opts.max_iter,
            residual: res,
            partial: sys.unpack_resistors(&x),
        })
    }
}

/// Reusable line-search buffers: candidate point, its residuals, and the
/// resistor scratch `EquationSystem::residuals_into` refreshes per call.
struct StepScratch {
    x_new: Vec<f64>,
    f_new: Vec<f64>,
    r: ResistorGrid,
}

impl StepScratch {
    fn new(grid: mea_model::MeaGrid) -> Self {
        StepScratch {
            x_new: Vec::new(),
            f_new: Vec::new(),
            r: ResistorGrid::filled(grid, 0.0),
        }
    }
}

/// One backtracking line search along `delta` with the physicality guard on
/// the `R` block; advances `x`/`fx` in place (by swapping with the scratch
/// buffers — no allocation) and reports whether the residual strictly
/// improved.
#[allow(clippy::too_many_arguments)]
fn try_step(
    sys: &EquationSystem,
    x: &mut Vec<f64>,
    fx: &mut Vec<f64>,
    delta: &[f64],
    res: f64,
    crossings: usize,
    opts: &FullNewtonOptions,
    scratch: &mut StepScratch,
) -> bool {
    let mut step = 1.0;
    for _ in 0..=opts.max_backtracks {
        scratch.x_new.clear();
        scratch.x_new.extend_from_slice(x);
        vec_ops::axpy(step, delta, &mut scratch.x_new);
        let r_ok = scratch.x_new[..crossings]
            .iter()
            .all(|v| *v > 0.0 && v.is_finite());
        if r_ok {
            sys.residuals_into(&scratch.x_new, &mut scratch.f_new, &mut scratch.r);
            let res_new = vec_ops::norm_inf(&scratch.f_new);
            if res_new.is_finite() && res_new < res {
                std::mem::swap(x, &mut scratch.x_new);
                std::mem::swap(fx, &mut scratch.f_new);
                return true;
            }
        }
        step *= 0.5;
    }
    false
}

/// Convenience: full-system solve that also cross-checks the recovered map
/// against an independent forward solve, returning the max relative
/// mismatch (diagnostic for tests and examples).
pub fn full_newton_check(z: &ZMatrix, voltage: f64) -> Result<(ResistorGrid, f64), ParmaError> {
    let out = full_newton_inverse(z, voltage, &FullNewtonOptions::default())?;
    let mut ws = ForwardWorkspace::new(z.grid());
    let z_again = ForwardSolver::with_workspace(&out.resistors, &mut ws)?.solve_all();
    Ok((out.resistors, z_again.rel_max_diff(z)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParmaConfig;
    use crate::solver::ParmaSolver;
    use mea_model::{AnomalyConfig, CrossingMatrix, MeaGrid};

    fn measured(n: usize, seed: u64) -> (ResistorGrid, ZMatrix) {
        let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        (truth, z)
    }

    #[test]
    fn recovers_ground_truth() {
        for n in [2usize, 4] {
            let (truth, z) = measured(n, n as u64 + 100);
            let out = full_newton_inverse(&z, 5.0, &FullNewtonOptions::default()).unwrap();
            assert!(
                out.resistors.rel_max_diff(&truth) < 1e-6,
                "n = {n}: rel error {}",
                out.resistors.rel_max_diff(&truth)
            );
            assert!(
                out.iterations < 20,
                "Gauss-Newton should be fast, took {}",
                out.iterations
            );
        }
    }

    #[test]
    fn agrees_with_the_production_solver() {
        let (_, z) = measured(5, 200);
        let full = full_newton_inverse(&z, 5.0, &FullNewtonOptions::default()).unwrap();
        let fp = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
        assert!(
            full.resistors.rel_max_diff(&fp.resistors) < 1e-5,
            "two independent formulations must meet: {}",
            full.resistors.rel_max_diff(&fp.resistors)
        );
    }

    #[test]
    fn forward_check_closes_the_loop() {
        let (_, z) = measured(4, 201);
        let (_, mismatch) = full_newton_check(&z, 5.0).unwrap();
        assert!(
            mismatch < 1e-8,
            "recovered map must reproduce Z: {mismatch}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let z = CrossingMatrix::filled(MeaGrid::square(2), -1.0);
        assert!(full_newton_inverse(&z, 5.0, &FullNewtonOptions::default()).is_err());
        let z_ok = CrossingMatrix::filled(MeaGrid::square(2), 1000.0);
        assert!(full_newton_inverse(&z_ok, 0.0, &FullNewtonOptions::default()).is_err());
    }

    #[test]
    fn healthy_solves_never_regularize() {
        for n in [2usize, 4, 5] {
            let (_, z) = measured(n, n as u64 + 300);
            let out = full_newton_inverse(&z, 5.0, &FullNewtonOptions::default()).unwrap();
            assert_eq!(
                out.regularized_steps, 0,
                "n = {n}: well-posed exact data must never trip the damped retry"
            );
        }
    }

    #[test]
    fn tikhonov_stack_is_the_damped_least_squares_operator() {
        // J = [[2, 0], [0, 3], [1, 1]], λ = 9 → two extra rows of 3·I.
        let mut coo = CooTriplets::new(3, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        let jac = coo.to_csr();
        let aug = tikhonov_stack(&jac, 9.0);
        assert_eq!((aug.rows(), aug.cols()), (5, 2));
        let y = aug.mul_vec(&[1.0, -1.0]);
        assert_eq!(y, vec![2.0, -3.0, 0.0, 3.0, -3.0]);
        // Marquardt scale reference: max column sum-of-squares of J.
        assert_eq!(max_column_norm_sq(&jac), 10.0); // col 1: 9 + 1
    }

    #[test]
    fn tikhonov_cache_matches_the_one_shot_stack_bitwise() {
        // The cached augmented operator must be indistinguishable from the
        // reference construction: same shape, same structure, same bits.
        let (_, z) = measured(3, 77);
        let sys = EquationSystem::assemble(&z, 5.0);
        let template = JacobianTemplate::analyze(&sys);
        let x = {
            let grid = z.grid();
            let kappa = (grid.rows() * grid.cols()) as f64 / (grid.rows() + grid.cols() - 1) as f64;
            let mut r0 = z.clone();
            for v in r0.as_mut_slice() {
                *v *= kappa;
            }
            sys.exact_unknowns_for(&r0).unwrap()
        };
        let mut jac = template.matrix_zeroed();
        template.numeric(&x, &mut jac);
        let mut cache = TikhonovCache::new(template.pattern());
        for lambda in [1e-8, 3.5, 9e4] {
            let cached = cache.refill(&jac, lambda);
            let oracle = tikhonov_stack(&jac, lambda);
            assert_eq!(
                (cached.rows(), cached.cols()),
                (oracle.rows(), oracle.cols())
            );
            // The oracle drops explicit zeros the pattern keeps, so compare
            // through the cached structure: every oracle entry must sit in
            // the cache with identical bits, and cache-only slots must be 0.
            for r in 0..oracle.rows() {
                for (c, v) in oracle.row_entries(r) {
                    assert_eq!(cached.get(r, c).to_bits(), v.to_bits(), "({r}, {c})");
                }
            }
            let probe = vec![1.0; cached.cols()];
            let a = cached.mul_vec(&probe);
            let b = oracle.mul_vec(&probe);
            for (ai, bi) in a.iter().zip(&b) {
                assert_eq!(ai.to_bits(), bi.to_bits());
            }
        }
    }

    #[test]
    fn tikhonov_step_shrinks_toward_zero_as_lambda_grows() {
        // For tall J, the damped normal equations give δ(λ) = (JᵀJ+λI)⁻¹Jᵀb;
        // ‖δ‖ must be monotonically non-increasing in λ.
        let mut coo = CooTriplets::new(3, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1e-4); // badly scaled column → ill-conditioned
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        let jac = coo.to_csr();
        let b = vec![1.0, 1.0, 1.0, 0.0, 0.0];
        let mut prev = f64::INFINITY;
        for lambda in [1e-8, 1e-4, 1.0, 1e4] {
            let aug = tikhonov_stack(&jac, lambda);
            let out = cgls(&aug, &b, &CglsOptions::default()).unwrap();
            let norm = vec_ops::norm2(&out.x);
            assert!(
                norm <= prev + 1e-9,
                "λ = {lambda}: ‖δ‖ grew {prev} → {norm}"
            );
            prev = norm;
        }
    }

    #[test]
    fn supervised_timeout_carries_partial_estimate() {
        let (_, z) = measured(4, 203);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        match full_newton_supervised(&z, 5.0, &FullNewtonOptions::default(), &token) {
            Err(ParmaError::Timeout {
                iterations,
                partial,
            }) => {
                assert_eq!(iterations, 0);
                assert!(partial.expect("partial carried").is_physical());
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        let cancelled = CancelToken::unbounded();
        cancelled.cancel();
        assert!(matches!(
            full_newton_supervised(&z, 5.0, &FullNewtonOptions::default(), &cancelled),
            Err(ParmaError::Cancelled { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let (_, z) = measured(4, 202);
        let opts = FullNewtonOptions {
            max_iter: 1,
            tol: 1e-16,
            ..Default::default()
        };
        match full_newton_inverse(&z, 5.0, &opts) {
            Err(ParmaError::NoConvergence { partial, .. }) => assert!(partial.is_physical()),
            Ok(out) => assert!(out.residual <= 1e-16), // unlikely but legal
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
