//! # Parma — topological parallelization of MEA parametrization
//!
//! A from-scratch Rust reproduction of *Topological Modeling and
//! Parallelization of Multidimensional Data on Microelectrode Arrays*
//! (Tawose, Li, Yang, Yan, Zhao — IPDPS 2022).
//!
//! Given the pair-wise measured impedances `Z[i][j]` of an `n×n`
//! microelectrode array, Parma recovers the unknown per-crossing
//! resistances `R[i][j]` — the parametrization that downstream anomaly
//! detection needs — by:
//!
//! 1. modeling the device as an abstract simplicial complex whose first
//!    homology group exposes `(n−1)²` independent Kirchhoff cycles
//!    (`mea-topology`, re-exported through [`betti`]),
//! 2. replacing the exponential all-paths formulation with the polynomial
//!    joint-constraint system of §IV-A (`mea-equations`),
//! 3. solving the resulting nonlinear system by a damped conductance
//!    fixed-point iteration whose per-pair updates are embarrassingly
//!    parallel ([`solver`]), under any of the paper's execution strategies
//!    (`mea-parallel`).
//!
//! # Quickstart
//!
//! ```
//! use parma::prelude::*;
//!
//! // A synthetic 8×8 device with one anomalous region (the wet-lab
//! // substitute described in DESIGN.md).
//! let grid = MeaGrid::square(8);
//! let (ground_truth, _regions) = AnomalyConfig::default().generate(grid, 42);
//! let measured = ForwardSolver::new(&ground_truth).unwrap().solve_all();
//!
//! // Recover the resistor map from measurements alone.
//! let config = ParmaConfig::default();
//! let solution = ParmaSolver::new(config).solve(&measured).unwrap();
//! assert!(solution.resistors.rel_max_diff(&ground_truth) < 1e-6);
//! ```

pub mod batch;
pub mod betti;
pub mod classical;
pub mod config;
pub mod detect;
pub mod diagnostics;
pub mod dist;
pub mod error;
pub mod formation;
pub mod full_newton;
pub mod manifold;
pub mod newton;
pub mod path_solver;
pub mod persistence;
pub mod pipeline;
pub mod plan_cache;
pub mod service;
pub mod session;
pub mod solver;
pub mod stream;
pub mod supervisor;

pub use batch::BatchSolver;
pub use betti::{parallelism_bound, BettiSchedule};
pub use config::ParmaConfig;
pub use detect::{detect_anomalies, DetectionReport};
pub use error::ParmaError;
pub use formation::form_equations_parallel;
pub use plan_cache::{PlanCache, TopologyCache};
pub use service::{AdmissionError, JobState, JobView, ServiceConfig, ServiceStats, SolveService};
pub use session::SessionStore;
pub use solver::{
    ParmaSolution, ParmaSolver, RecoveryAction, RecoveryEvent, SolvePlan, SolveScratch,
};
pub use stream::{IngestError, StreamingLoader};
pub use supervisor::{AttemptFailure, FailureKind, FailureReport, SupervisorConfig};

/// Everything a typical caller needs.
pub mod prelude {
    pub use crate::batch::BatchSolver;
    pub use crate::betti::parallelism_bound;
    pub use crate::config::ParmaConfig;
    pub use crate::detect::{detect_anomalies, DetectionReport};
    pub use crate::error::ParmaError;
    pub use crate::pipeline::{Pipeline, TimePointResult};
    pub use crate::plan_cache::PlanCache;
    pub use crate::service::{AdmissionError, JobState, JobView, ServiceConfig, SolveService};
    pub use crate::session::SessionStore;
    pub use crate::solver::{
        ParmaSolution, ParmaSolver, RecoveryAction, RecoveryEvent, SolvePlan, SolveScratch,
    };
    pub use crate::supervisor::{FailureKind, FailureReport, SupervisorConfig};
    pub use mea_model::{
        AnomalyConfig, CrossingMatrix, ForwardSolver, MeaGrid, ResistorGrid, WetLabDataset, ZMatrix,
    };
    pub use mea_parallel::{CancelToken, Strategy};
}
