//! The differential-geometric view of §IV-B: discrete local frames,
//! mixed-partial symmetry and the Stokes/Green identity on the MEA lattice.
//!
//! The paper argues that when the device is dense enough to treat voltage
//! as a smooth field, calculus can be done in *local frames*: mixed
//! partials commute (`∂²U/∂x∂y = ∂²U/∂y∂x`), an arbitrary (non-orthogonal)
//! device layout can be pulled back through its Jacobian, and circuit
//! accumulation over a patch reduces to its boundary by Stokes' theorem —
//! which is what licenses the per-hole parallelization. This module makes
//! those statements *exact* on the discrete lattice:
//!
//! * [`PotentialField`] — a scalar field on grid nodes with forward
//!   differences; the discrete mixed-partial commutator vanishes
//!   identically,
//! * [`LatticeVectorField`] — edge-valued 1-forms with the discrete Green
//!   identity `∮_∂patch F = Σ_cells curl F` holding exactly (telescoping),
//! * [`Jacobian`] — 2×2 local frames for pulling gradients back from an
//!   arbitrary smooth device layout to the orthogonal reference grid.

/// A scalar field sampled on the nodes of an `(rows × cols)` lattice.
#[derive(Clone, Debug, PartialEq)]
pub struct PotentialField {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl PotentialField {
    /// Builds from a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, values: Vec<f64>) -> Self {
        assert!(rows >= 1 && cols >= 1, "field needs at least one node");
        assert_eq!(values.len(), rows * cols, "buffer length mismatch");
        PotentialField { rows, cols, values }
    }

    /// Samples an analytic function on the lattice.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let values = (0..rows)
            .flat_map(|i| (0..cols).map(move |j| (i, j)))
            .map(|(i, j)| f(i, j))
            .collect();
        PotentialField::from_vec(rows, cols, values)
    }

    /// Node value.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.cols + j]
    }

    /// Forward difference along columns (`∂U/∂x` at `(i, j)`, defined for
    /// `j < cols − 1`).
    pub fn dx(&self, i: usize, j: usize) -> f64 {
        self.get(i, j + 1) - self.get(i, j)
    }

    /// Forward difference along rows (`∂U/∂y`, defined for `i < rows − 1`).
    pub fn dy(&self, i: usize, j: usize) -> f64 {
        self.get(i + 1, j) - self.get(i, j)
    }

    /// Discrete mixed partial `∂²U/∂x∂y` at the cell `(i, j)`.
    pub fn dxdy(&self, i: usize, j: usize) -> f64 {
        // d/dy of dx: dx(i+1, j) − dx(i, j).
        self.dx(i + 1, j) - self.dx(i, j)
    }

    /// Discrete mixed partial `∂²U/∂y∂x` at the cell `(i, j)`.
    pub fn dydx(&self, i: usize, j: usize) -> f64 {
        self.dy(i, j + 1) - self.dy(i, j)
    }

    /// The gradient as an edge field (exact discrete 1-form `dU`).
    pub fn gradient(&self) -> LatticeVectorField {
        let mut field = LatticeVectorField::zero(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols - 1 {
                field.set_p(i, j, self.dx(i, j));
            }
        }
        for i in 0..self.rows - 1 {
            for j in 0..self.cols {
                field.set_q(i, j, self.dy(i, j));
            }
        }
        field
    }
}

/// An edge-valued vector field (discrete 1-form): `P` lives on horizontal
/// edges (`(i,j) → (i,j+1)`), `Q` on vertical edges (`(i,j) → (i+1,j)`).
#[derive(Clone, Debug, PartialEq)]
pub struct LatticeVectorField {
    rows: usize,
    cols: usize,
    /// rows × (cols−1) horizontal edge values.
    p: Vec<f64>,
    /// (rows−1) × cols vertical edge values.
    q: Vec<f64>,
}

impl LatticeVectorField {
    /// The zero field on an `(rows × cols)` node lattice.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        LatticeVectorField {
            rows,
            cols,
            p: vec![0.0; rows * (cols - 1)],
            q: vec![0.0; (rows - 1) * cols],
        }
    }

    /// Horizontal edge value at `(i, j)`.
    pub fn p(&self, i: usize, j: usize) -> f64 {
        self.p[i * (self.cols - 1) + j]
    }

    /// Sets a horizontal edge value.
    pub fn set_p(&mut self, i: usize, j: usize, v: f64) {
        self.p[i * (self.cols - 1) + j] = v;
    }

    /// Vertical edge value at `(i, j)`.
    pub fn q(&self, i: usize, j: usize) -> f64 {
        self.q[i * self.cols + j]
    }

    /// Sets a vertical edge value.
    pub fn set_q(&mut self, i: usize, j: usize, v: f64) {
        self.q[i * self.cols + j] = v;
    }

    /// Discrete curl over the unit cell with lower-left node `(i, j)`:
    /// the counterclockwise circulation `P(i,j) + Q(i,j+1) − P(i+1,j) − Q(i,j)`.
    pub fn cell_curl(&self, i: usize, j: usize) -> f64 {
        self.p(i, j) + self.q(i, j + 1) - self.p(i + 1, j) - self.q(i, j)
    }

    /// Counterclockwise boundary circulation of the rectangular patch of
    /// cells `[i0, i1) × [j0, j1)` (node corners `(i0,j0)`–`(i1,j1)`).
    pub fn circulation(&self, i0: usize, i1: usize, j0: usize, j1: usize) -> f64 {
        assert!(
            i0 < i1 && i1 < self.rows && j0 < j1 && j1 < self.cols,
            "bad patch"
        );
        let mut acc = 0.0;
        for j in j0..j1 {
            acc += self.p(i0, j); // bottom, left→right
            acc -= self.p(i1, j); // top, right→left
        }
        for i in i0..i1 {
            acc += self.q(i, j1); // right, bottom→top
            acc -= self.q(i, j0); // left, top→bottom
        }
        acc
    }

    /// Sum of cell curls over the same patch. The discrete Green/Stokes
    /// identity says this equals [`Self::circulation`] exactly.
    pub fn curl_sum(&self, i0: usize, i1: usize, j0: usize, j1: usize) -> f64 {
        assert!(
            i0 < i1 && i1 < self.rows && j0 < j1 && j1 < self.cols,
            "bad patch"
        );
        let mut acc = 0.0;
        for i in i0..i1 {
            for j in j0..j1 {
                acc += self.cell_curl(i, j);
            }
        }
        acc
    }
}

/// A 2×2 local frame (Jacobian) mapping reference-grid displacements to
/// physical-layout displacements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Jacobian {
    /// `[∂x/∂u, ∂x/∂v; ∂y/∂u, ∂y/∂v]` row-major.
    pub m: [f64; 4],
}

impl Jacobian {
    /// The identity frame (already-orthogonal device).
    pub fn identity() -> Self {
        Jacobian {
            m: [1.0, 0.0, 0.0, 1.0],
        }
    }

    /// Estimates the frame of a coordinate map `(u, v) → (x, y)` at a node
    /// by forward differences — the "convert any arbitrary MEA into a
    /// locally orthogonal frame" step of §IV-B.
    pub fn from_map(map: impl Fn(f64, f64) -> (f64, f64), u: f64, v: f64, h: f64) -> Self {
        assert!(h > 0.0, "step must be positive");
        let (x0, y0) = map(u, v);
        let (xu, yu) = map(u + h, v);
        let (xv, yv) = map(u, v + h);
        Jacobian {
            m: [(xu - x0) / h, (xv - x0) / h, (yu - y0) / h, (yv - y0) / h],
        }
    }

    /// Determinant (frame orientation/area scale).
    pub fn det(&self) -> f64 {
        self.m[0] * self.m[3] - self.m[1] * self.m[2]
    }

    /// Applies the frame to a reference displacement `(du, dv)`.
    pub fn apply(&self, du: f64, dv: f64) -> (f64, f64) {
        (
            self.m[0] * du + self.m[1] * dv,
            self.m[2] * du + self.m[3] * dv,
        )
    }

    /// Pulls a physical-space gradient back to reference coordinates:
    /// `∇_ref U = Jᵀ · ∇_phys U` (chain rule).
    pub fn pullback_gradient(&self, gx: f64, gy: f64) -> (f64, f64) {
        (
            self.m[0] * gx + self.m[2] * gy,
            self.m[1] * gx + self.m[3] * gy,
        )
    }

    /// Inverts the frame; `None` when degenerate.
    pub fn inverse(&self) -> Option<Jacobian> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        Some(Jacobian {
            m: [self.m[3] / d, -self.m[1] / d, -self.m[2] / d, self.m[0] / d],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(rows: usize, cols: usize) -> PotentialField {
        PotentialField::from_fn(rows, cols, |i, j| {
            (i as f64 * 0.3).sin() * (j as f64 * 0.7).cos() + (i * j) as f64 * 0.01
        })
    }

    #[test]
    fn mixed_partials_commute_exactly() {
        // The paper's ∂²U/∂x∂y = ∂²U/∂y∂x, exact on the lattice.
        let u = wavy(8, 9);
        for i in 0..7 {
            for j in 0..8 {
                assert!(
                    (u.dxdy(i, j) - u.dydx(i, j)).abs() < 1e-14,
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gradient_field_is_curl_free() {
        let u = wavy(6, 6);
        let g = u.gradient();
        for i in 0..5 {
            for j in 0..5 {
                assert!(g.cell_curl(i, j).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn gradient_circulation_vanishes_on_any_patch() {
        // Conservative field ⇒ zero circulation: the voltage form of
        // Kirchhoff's loop law in the smooth picture.
        let u = wavy(7, 7);
        let g = u.gradient();
        for (i0, i1, j0, j1) in [(0, 6, 0, 6), (1, 3, 2, 5), (0, 1, 0, 1)] {
            assert!(g.circulation(i0, i1, j0, j1).abs() < 1e-12);
        }
    }

    #[test]
    fn discrete_green_identity_holds_exactly() {
        // A non-conservative field: circulation = Σ curls, exactly.
        let mut f = LatticeVectorField::zero(6, 7);
        for i in 0..6 {
            for j in 0..6 {
                f.set_p(i, j, ((i * 7 + j) as f64 * 0.37).sin());
            }
        }
        for i in 0..5 {
            for j in 0..7 {
                f.set_q(i, j, ((i * 5 + j) as f64 * 0.91).cos());
            }
        }
        for (i0, i1, j0, j1) in [(0, 5, 0, 6), (1, 4, 2, 5), (2, 3, 3, 4)] {
            let lhs = f.circulation(i0, i1, j0, j1);
            let rhs = f.curl_sum(i0, i1, j0, j1);
            assert!(
                (lhs - rhs).abs() < 1e-12,
                "Stokes failed on ({i0},{i1},{j0},{j1})"
            );
        }
    }

    #[test]
    fn jacobian_of_identity_map() {
        let j = Jacobian::from_map(|u, v| (u, v), 3.0, 4.0, 1e-6);
        assert!((j.m[0] - 1.0).abs() < 1e-6);
        assert!(j.m[1].abs() < 1e-6);
        assert!((j.det() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn jacobian_of_linear_map_is_its_matrix() {
        // (u, v) → (2u + v, u − 3v).
        let j = Jacobian::from_map(|u, v| (2.0 * u + v, u - 3.0 * v), 0.5, -1.0, 1e-6);
        for (got, want) in j.m.iter().zip(&[2.0, 1.0, 1.0, -3.0]) {
            assert!((got - want).abs() < 1e-5);
        }
        let (dx, dy) = j.apply(1.0, 0.0);
        assert!((dx - 2.0).abs() < 1e-5 && (dy - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pullback_gradient_chain_rule() {
        // For a linear map x = A·u, a function f(x) has ∇_u (f∘A) = Aᵀ∇_x f.
        // Take f(x, y) = 3x + 5y: ∇_x f = (3, 5);
        // map (u,v) → (2u+v, u−3v): ∇_u = (2·3+1·5, 1·3−3·5) = (11, −12).
        let j = Jacobian {
            m: [2.0, 1.0, 1.0, -3.0],
        };
        let (gu, gv) = j.pullback_gradient(3.0, 5.0);
        assert!((gu - 11.0).abs() < 1e-12);
        assert!((gv + 12.0).abs() < 1e-12);
    }

    #[test]
    fn jacobian_inverse_roundtrip() {
        let j = Jacobian {
            m: [2.0, 1.0, 1.0, -3.0],
        };
        let inv = j.inverse().unwrap();
        let (u, v) = inv.apply(j.apply(0.7, -0.2).0, j.apply(0.7, -0.2).1);
        assert!((u - 0.7).abs() < 1e-12 && (v + 0.2).abs() < 1e-12);
        let degenerate = Jacobian {
            m: [1.0, 2.0, 2.0, 4.0],
        };
        assert!(degenerate.inverse().is_none());
    }

    #[test]
    #[should_panic(expected = "bad patch")]
    fn patch_bounds_checked() {
        let f = LatticeVectorField::zero(3, 3);
        let _ = f.circulation(0, 3, 0, 2);
    }
}
