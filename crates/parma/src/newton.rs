//! A dense-Jacobian Newton cross-check for the inverse problem.
//!
//! The production solver (`crate::solver`) is the damped conductance fixed
//! point; this module solves the same `n²`-equation system
//! `G(R) = 1/F(R) − 1/Z_meas = 0` with `mea_linalg`'s damped Newton and a
//! finite-difference Jacobian. Each Jacobian column costs a full forward
//! factorization, so this is `O(n²)` forward solves per iteration —
//! strictly a verification tool for small arrays (tests cap at `n ≤ 6`),
//! mirroring how the paper cross-checked against the exponential baseline
//! at tiny scales.

use crate::error::ParmaError;
use mea_linalg::{newton_solve, DenseMatrix, NewtonOptions};
use mea_model::{ForwardSolver, ResistorGrid, ZMatrix};

/// Solves the inverse problem by damped Newton with a finite-difference
/// Jacobian. `initial` seeds the iteration (pass the measured `Z` itself
/// when nothing better is known).
pub fn newton_inverse(
    z: &ZMatrix,
    initial: &ResistorGrid,
    tol: f64,
    max_iter: usize,
) -> Result<ResistorGrid, ParmaError> {
    let grid = z.grid();
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    if initial.grid() != grid {
        return Err(ParmaError::InvalidMeasurement(
            "initial map geometry differs from the measurements".into(),
        ));
    }
    let crossings = grid.crossings();
    // Residual in conductance space, scaled by the measured conductance so
    // all equations share a magnitude.
    let residual = |x: &[f64]| -> Vec<f64> {
        let r = match to_physical(grid, x) {
            Some(r) => r,
            None => return vec![f64::INFINITY; crossings],
        };
        let fs = match ForwardSolver::new(&r) {
            Ok(f) => f,
            Err(_) => return vec![f64::INFINITY; crossings],
        };
        grid.pair_iter()
            .map(|(i, j)| {
                let zm = fs.effective_resistance(i, j);
                (1.0 / zm - 1.0 / z.get(i, j)) * z.get(i, j)
            })
            .collect()
    };
    let x0: Vec<f64> = initial.as_slice().to_vec();
    let opts = NewtonOptions {
        tol,
        max_iter,
        ..Default::default()
    };
    let out = newton_solve(residual, None::<fn(&[f64]) -> DenseMatrix>, &x0, &opts)
        .map_err(ParmaError::Linalg)?;
    to_physical(grid, &out.x).ok_or_else(|| {
        ParmaError::InvalidMeasurement("Newton converged to a non-physical map".into())
    })
}

fn to_physical(grid: mea_model::MeaGrid, x: &[f64]) -> Option<ResistorGrid> {
    if x.iter().any(|v| !v.is_finite() || *v <= 0.0) {
        return None;
    }
    Some(ResistorGrid::from_vec(grid, x.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParmaConfig;
    use crate::solver::ParmaSolver;
    use mea_model::{AnomalyConfig, CrossingMatrix, MeaGrid};

    #[test]
    fn newton_recovers_small_arrays() {
        for n in [2usize, 4] {
            let grid = MeaGrid::square(n);
            let (truth, _) = AnomalyConfig::default().generate(grid, n as u64 + 40);
            let z = ForwardSolver::new(&truth).unwrap().solve_all();
            let got = newton_inverse(&z, &z, 1e-10, 60).unwrap();
            assert!(
                got.rel_max_diff(&truth) < 1e-6,
                "n = {n}: rel error {}",
                got.rel_max_diff(&truth)
            );
        }
    }

    #[test]
    fn newton_agrees_with_fixed_point() {
        let grid = MeaGrid::square(5);
        let (truth, _) = AnomalyConfig::default().generate(grid, 77);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let newton = newton_inverse(&z, &z, 1e-10, 60).unwrap();
        let fixed = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
        assert!(
            newton.rel_max_diff(&fixed.resistors) < 1e-5,
            "independent solvers must land on the same map: {}",
            newton.rel_max_diff(&fixed.resistors)
        );
    }

    #[test]
    fn rejects_bad_measurements() {
        let z = CrossingMatrix::filled(MeaGrid::square(2), f64::NAN);
        let init = CrossingMatrix::filled(MeaGrid::square(2), 1.0);
        assert!(matches!(
            newton_inverse(&z, &init, 1e-8, 10),
            Err(ParmaError::InvalidMeasurement(_))
        ));
    }

    #[test]
    fn rejects_grid_mismatch() {
        let z = CrossingMatrix::filled(MeaGrid::square(2), 1000.0);
        let init = CrossingMatrix::filled(MeaGrid::square(3), 1000.0);
        assert!(matches!(
            newton_inverse(&z, &init, 1e-8, 10),
            Err(ParmaError::InvalidMeasurement(_))
        ));
    }
}
