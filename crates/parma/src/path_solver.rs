//! The exponential path-based baseline solver of §II-C.
//!
//! The pre-Parma literature (the paper's ref [15]) modeled each measured
//! impedance as all end-to-end paths in parallel,
//! `Z_ij⁻¹ = Σ_k P_k(R)⁻¹`, and solved the resulting `n²` nonlinear
//! equations over the exponential path set. This module implements exactly
//! that: the naive forward map, its inverse via damped Newton, and the cost
//! accounting that shows why it stops being feasible around `n = 6` (the
//! path census is in `mea_model::paths`).
//!
//! Note the naive model is *physically approximate* — paths share
//! resistors, so treating them as independent parallel branches
//! undercounts the resistance — and, worse, *non-injective*: distinct
//! resistor maps can produce identical naive impedances (the round-trip
//! test demonstrates this concretely). That is the ill-posedness the
//! paper attributes to the pre-Parma formulations ("the solution is
//! largely dependent on the input and results in an unacceptable
//! variance"); the exact nodal formulation Parma inverts does not share
//! it. Validation of the baseline is therefore *self-consistency*: the
//! recovered map must reproduce the measured naive impedances.

use crate::error::ParmaError;
use mea_linalg::{newton_solve, DenseMatrix, NewtonOptions};
use mea_model::{enumerate_paths, MeaGrid, ResistorGrid, WirePath, ZMatrix};

/// All paths of every endpoint pair, enumerated once.
///
/// Memory and time are exponential in `n` by construction; the inner
/// enumeration guard refuses grids whose census exceeds the limit.
pub struct PathTable {
    grid: MeaGrid,
    /// `paths[pair_index]` = all simple paths of that pair.
    paths: Vec<Vec<WirePath>>,
}

impl PathTable {
    /// Enumerates every pair's paths. `limit` bounds the per-pair path
    /// count (default 10⁷ when `None`).
    pub fn build(grid: MeaGrid, limit: Option<u128>) -> Self {
        let paths = grid
            .pair_iter()
            .map(|(i, j)| enumerate_paths(grid, i, j, limit))
            .collect();
        PathTable { grid, paths }
    }

    /// Total stored paths across all pairs.
    pub fn total_paths(&self) -> usize {
        self.paths.iter().map(Vec::len).sum()
    }

    /// Total stored crossings (the space blow-up: each path stores every
    /// hop, the paper's "each path has to store all the joint numbers").
    pub fn total_hops(&self) -> usize {
        self.paths.iter().flatten().map(WirePath::len).sum()
    }

    /// The naive forward map: `Z⁻¹_ij = Σ_k P_k(R)⁻¹`.
    pub fn naive_forward(&self, r: &ResistorGrid) -> ZMatrix {
        assert_eq!(r.grid(), self.grid, "grid mismatch");
        let mut z = ZMatrix::filled(self.grid, 0.0);
        for (p, (i, j)) in self.grid.pair_iter().enumerate() {
            let inv: f64 = self.paths[p]
                .iter()
                .map(|path| 1.0 / path.series_resistance(r))
                .sum();
            z.set(i, j, 1.0 / inv);
        }
        z
    }

    /// Inverts the naive model: finds `R` with `naive_forward(R) = z`.
    pub fn naive_inverse(
        &self,
        z: &ZMatrix,
        tol: f64,
        max_iter: usize,
    ) -> Result<ResistorGrid, ParmaError> {
        if !z.is_physical() {
            return Err(ParmaError::InvalidMeasurement(
                "measured impedances must be strictly positive and finite".into(),
            ));
        }
        let grid = self.grid;
        let crossings = grid.crossings();
        let residual = |x: &[f64]| -> Vec<f64> {
            if x.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return vec![f64::INFINITY; crossings];
            }
            let r = ResistorGrid::from_vec(grid, x.to_vec());
            let zm = self.naive_forward(&r);
            grid.pair_iter()
                .map(|(i, j)| (zm.get(i, j) - z.get(i, j)) / z.get(i, j))
                .collect()
        };
        // Seed: direct resistor ≈ measured Z scaled up by the parallel
        // dilution of the uniform case.
        let x0: Vec<f64> = z.as_slice().to_vec();
        let opts = NewtonOptions {
            tol,
            max_iter,
            ..Default::default()
        };
        let out = newton_solve(residual, None::<fn(&[f64]) -> DenseMatrix>, &x0, &opts)
            .map_err(ParmaError::Linalg)?;
        if out.x.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return Err(ParmaError::InvalidMeasurement(
                "baseline converged to a non-physical map".into(),
            ));
        }
        Ok(ResistorGrid::from_vec(grid, out.x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{exact_path_count, AnomalyConfig, CrossingMatrix, ForwardSolver};

    #[test]
    fn table_census_matches_formula() {
        let grid = MeaGrid::square(3);
        let table = PathTable::build(grid, None);
        assert_eq!(table.total_paths() as u128, 9 * exact_path_count(grid));
        assert!(table.total_hops() > table.total_paths());
    }

    #[test]
    fn naive_forward_on_single_crossing_is_exact() {
        let grid = MeaGrid::square(1);
        let table = PathTable::build(grid, None);
        let r = CrossingMatrix::filled(grid, 777.0);
        let z = table.naive_forward(&r);
        assert!((z.get(0, 0) - 777.0).abs() < 1e-12);
    }

    #[test]
    fn naive_model_underestimates_true_impedance() {
        // Treating shared-resistor paths as independent parallel branches
        // can only lower the result below the exact effective resistance.
        let grid = MeaGrid::square(3);
        let (truth, _) = AnomalyConfig::default().generate(grid, 9);
        let table = PathTable::build(grid, None);
        let naive = table.naive_forward(&truth);
        let exact = ForwardSolver::new(&truth).unwrap().solve_all();
        for (i, j) in grid.pair_iter() {
            assert!(
                naive.get(i, j) <= exact.get(i, j) + 1e-9,
                "naive must not exceed exact at ({i},{j})"
            );
        }
    }

    #[test]
    fn baseline_roundtrip_is_self_consistent() {
        let grid = MeaGrid::square(3);
        let (truth, _) = AnomalyConfig::default().generate(grid, 14);
        let table = PathTable::build(grid, None);
        let z = table.naive_forward(&truth);
        let got = table.naive_inverse(&z, 1e-11, 80).unwrap();
        // The recovered map must reproduce the measurements under the
        // naive model…
        let z_again = table.naive_forward(&got);
        assert!(
            z_again.rel_max_diff(&z) < 1e-8,
            "rel z error {}",
            z_again.rel_max_diff(&z)
        );
    }

    #[test]
    fn baseline_model_is_ill_posed() {
        // …but it need NOT equal the ground truth: the naive model is
        // non-injective — the ill-posedness the paper holds against the
        // pre-Parma formulations. Newton lands on a different root with
        // large parameter error at zero data residual. The seed is
        // CI-matrix-configurable via PARMA_TEST_SEED; 32 (default) and 38
        // are both verified to exhibit root multiplicity.
        let seed: u64 = std::env::var("PARMA_TEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(32);
        let grid = MeaGrid::square(3);
        let (truth, _) = AnomalyConfig::default().generate(grid, seed);
        let table = PathTable::build(grid, None);
        let z = table.naive_forward(&truth);
        let got = table.naive_inverse(&z, 1e-11, 80).unwrap();
        let z_again = table.naive_forward(&got);
        assert!(z_again.rel_max_diff(&z) < 1e-8);
        assert!(
            got.rel_max_diff(&truth) > 0.1,
            "this seed is known to exhibit root multiplicity; rel error {}",
            got.rel_max_diff(&truth)
        );
    }

    #[test]
    fn blowup_guard_refuses_large_grids() {
        let result =
            std::panic::catch_unwind(|| PathTable::build(MeaGrid::square(8), Some(10_000)));
        assert!(result.is_err(), "n = 8 must exceed a 10k path budget");
    }

    #[test]
    fn rejects_bad_measurements() {
        let grid = MeaGrid::square(2);
        let table = PathTable::build(grid, None);
        let z = CrossingMatrix::filled(grid, 0.0);
        assert!(matches!(
            table.naive_inverse(&z, 1e-8, 10),
            Err(ParmaError::InvalidMeasurement(_))
        ));
    }
}
