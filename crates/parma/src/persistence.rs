//! Topological anomaly analysis via persistent homology.
//!
//! Thresholding (see [`crate::detect`]) answers *which crossings* are
//! anomalous; persistence answers *how many distinct anomaly regions*
//! there are and how prominent each is, without picking a threshold at
//! all. The recovered resistor map is filtered by *descending* resistance
//! (superlevel sets): each anomaly peak births a connected component, and
//! the component dies when the sweep reaches the saddle connecting it to
//! a taller peak. The β₀ barcode's significant intervals are exactly the
//! anomaly regions, ranked by topographic prominence — robust to noise by
//! construction (noise blips have tiny prominence).

use mea_model::{MeaGrid, ResistorGrid};
use mea_topology::{persistence_barcode, Barcode, Filtration, Simplex, SimplicialComplex};

/// One detected anomaly region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionSummary {
    /// Peak resistance of the region (kΩ) — the class's birth level.
    pub peak_resistance: f64,
    /// Resistance level at which this region merges into a more prominent
    /// one (kΩ); `None` for the globally dominant region.
    pub merge_resistance: Option<f64>,
    /// Topographic prominence (kΩ): peak − merge level; for the dominant
    /// region, peak − global minimum.
    pub prominence: f64,
}

/// Outcome of a persistence analysis.
#[derive(Clone, Debug)]
pub struct AnomalyPersistence {
    /// Significant regions, most prominent first.
    pub regions: Vec<RegionSummary>,
    /// The full β₀ barcode (in the negated filtration scale), for callers
    /// who want the raw diagram.
    pub barcode: Barcode,
}

/// The crossing-adjacency complex: one vertex per crossing, edges between
/// 4-neighbours. (1-dimensional — β₀ analysis needs no 2-cells.)
fn crossing_complex(grid: MeaGrid) -> SimplicialComplex {
    let mut maximal: Vec<Simplex> = Vec::with_capacity(2 * grid.crossings());
    for (i, j) in grid.pair_iter() {
        let a = grid.pair_index(i, j) as u32;
        maximal.push(Simplex::vertex(a));
        if j + 1 < grid.cols() {
            maximal.push(Simplex::edge(a, grid.pair_index(i, j + 1) as u32));
        }
        if i + 1 < grid.rows() {
            maximal.push(Simplex::edge(a, grid.pair_index(i + 1, j) as u32));
        }
    }
    SimplicialComplex::from_maximal_simplices(maximal).expect("grid complex is valid")
}

/// Runs the superlevel β₀ persistence analysis of a resistor map.
///
/// `min_prominence` (kΩ) separates real regions from noise blips; with
/// the paper's ranges (2,000 kΩ baseline, anomalies up to 11,000 kΩ) a
/// threshold around 500–1,000 kΩ is natural.
pub fn anomaly_persistence(r: &ResistorGrid, min_prominence: f64) -> AnomalyPersistence {
    assert!(
        min_prominence >= 0.0,
        "prominence threshold must be non-negative"
    );
    let grid = r.grid();
    let complex = crossing_complex(grid);
    // Superlevel sets of R = sublevel sets of −R.
    let filtration = Filtration::lower_star(&complex, |v| {
        let idx = v as usize;
        -r.as_slice()[idx]
    });
    let barcode = persistence_barcode(&filtration);
    let global_min = r.min();
    let mut regions: Vec<RegionSummary> = barcode
        .in_dim(0)
        .into_iter()
        .map(|interval| {
            let peak = -interval.birth;
            let merge = interval.death.map(|d| -d);
            let prominence = peak - merge.unwrap_or(global_min);
            RegionSummary {
                peak_resistance: peak,
                merge_resistance: merge,
                prominence,
            }
        })
        .filter(|reg| reg.prominence > min_prominence)
        .collect();
    regions.sort_by(|a, b| b.prominence.total_cmp(&a.prominence));
    AnomalyPersistence { regions, barcode }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, AnomalyRegion, CrossingMatrix};

    fn blob(center: (f64, f64), radius: f64, amplitude: f64) -> AnomalyRegion {
        AnomalyRegion {
            center_row: center.0,
            center_col: center.1,
            radius_rows: radius,
            radius_cols: radius,
            amplitude,
        }
    }

    #[test]
    fn flat_map_has_no_significant_regions() {
        let r = CrossingMatrix::filled(MeaGrid::square(8), 2000.0);
        let out = anomaly_persistence(&r, 100.0);
        assert!(out.regions.is_empty());
        // But the barcode still has its one essential component.
        assert_eq!(out.barcode.essential_count(0), 1);
    }

    #[test]
    fn single_blob_is_one_region_with_right_peak() {
        let grid = MeaGrid::square(12);
        let cfg = AnomalyConfig {
            noise: 0.0,
            ..Default::default()
        };
        let r = cfg.render(grid, &[blob((6.0, 6.0), 3.0, 6000.0)], 0);
        let out = anomaly_persistence(&r, 500.0);
        assert_eq!(out.regions.len(), 1);
        let reg = &out.regions[0];
        assert!((reg.peak_resistance - (2000.0 + 6000.0)).abs() < 1e-6);
        assert!(
            reg.merge_resistance.is_none(),
            "dominant region never merges"
        );
        assert!(reg.prominence > 5000.0);
    }

    #[test]
    fn two_separated_blobs_are_two_regions() {
        let grid = MeaGrid::square(16);
        let cfg = AnomalyConfig {
            noise: 0.0,
            ..Default::default()
        };
        let r = cfg.render(
            grid,
            &[
                blob((3.0, 3.0), 2.5, 6000.0),
                blob((12.0, 12.0), 2.5, 4000.0),
            ],
            0,
        );
        let out = anomaly_persistence(&r, 500.0);
        assert_eq!(out.regions.len(), 2);
        // Most prominent first.
        assert!(out.regions[0].prominence >= out.regions[1].prominence);
        // The secondary region merges at the baseline saddle between them.
        let secondary = &out.regions[1];
        let merge = secondary
            .merge_resistance
            .expect("secondary region must merge");
        assert!(merge < 2500.0, "saddle sits near the baseline, got {merge}");
        assert!((secondary.peak_resistance - 6000.0).abs() < 200.0);
    }

    #[test]
    fn noise_blips_are_filtered_by_prominence() {
        let grid = MeaGrid::square(14);
        let cfg = AnomalyConfig {
            noise: 0.02,
            ..Default::default()
        }; // ±40 kΩ blips
        let r = cfg.render(grid, &[blob((7.0, 7.0), 3.0, 7000.0)], 42);
        let strict = anomaly_persistence(&r, 500.0);
        assert_eq!(strict.regions.len(), 1, "noise must not create regions");
        let loose = anomaly_persistence(&r, 0.0);
        assert!(
            loose.regions.len() > 1,
            "with no threshold the noise blips appear (found {})",
            loose.regions.len()
        );
    }

    #[test]
    fn prominence_threshold_controls_region_granularity() {
        let grid = MeaGrid::square(14);
        let cfg = AnomalyConfig {
            noise: 0.0,
            ..Default::default()
        };
        // A dominant peak (prominence ≈ 9,000) and a secondary one
        // (prominence ≈ 5,800): the region count depends on where the
        // prominence bar is set — no resistance threshold ever needed.
        let r = cfg.render(
            grid,
            &[
                blob((4.0, 4.0), 2.5, 9000.0),
                blob((10.0, 10.0), 2.5, 5800.0),
            ],
            0,
        );
        let coarse = anomaly_persistence(&r, 7000.0);
        assert_eq!(
            coarse.regions.len(),
            1,
            "only the dominant peak clears 7,000 kΩ"
        );
        let fine = anomaly_persistence(&r, 1000.0);
        assert_eq!(fine.regions.len(), 2, "both peaks clear 1,000 kΩ");
    }

    #[test]
    fn region_count_matches_generator_for_separated_seeds() {
        // End-to-end: generated maps with well-separated regions are
        // counted correctly.
        let grid = MeaGrid::square(20);
        let cfg = AnomalyConfig {
            noise: 0.01,
            regions: 0,
            ..Default::default()
        };
        let r = cfg.render(
            grid,
            &[
                blob((4.0, 4.0), 2.0, 9000.0),
                blob((15.0, 4.0), 2.0, 7000.0),
                blob((10.0, 15.0), 2.0, 5000.0),
            ],
            7,
        );
        let out = anomaly_persistence(&r, 1000.0);
        assert_eq!(out.regions.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_rejected() {
        let r = CrossingMatrix::filled(MeaGrid::square(2), 1.0);
        let _ = anomaly_persistence(&r, -1.0);
    }
}
