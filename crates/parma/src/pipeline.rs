//! The end-to-end pipeline: measured time series → recovered resistor
//! maps → anomaly reports.
//!
//! This is the workflow the paper's wet lab motivated: the device measures
//! cell media at 0/6/12/24 hours, Parma parametrizes each snapshot, and
//! thresholding the recovered maps localizes the (growing) anomalies.
//! Consecutive time points warm-start from the previous solution,
//! extrapolated by the per-pair measured-impedance ratio (see
//! [`Pipeline::run`]).

use crate::config::ParmaConfig;
use crate::detect::{detect_anomalies, DetectionReport};
use crate::error::ParmaError;
use crate::plan_cache::PlanCache;
use crate::session::ratio_extrapolate;
use crate::solver::{ParmaSolution, ParmaSolver, SolvePlan, SolveScratch};
use mea_model::WetLabDataset;
use mea_parallel::CancelToken;
use std::sync::Arc;

pub use crate::stream::{IngestError, StreamingLoader};

/// One time point's outcome.
#[derive(Clone, Debug)]
pub struct TimePointResult {
    /// Hours after setup.
    pub hours: u32,
    /// The inverse-solve outcome.
    pub solution: ParmaSolution,
    /// Anomaly detection on the recovered map.
    pub detection: DetectionReport,
    /// Max relative error against ground truth, when the dataset is
    /// synthetic and carries it.
    pub ground_truth_error: Option<f64>,
}

/// The full measurement-to-detection pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    config: ParmaConfig,
    /// Detection threshold factor over the median baseline.
    detection_factor: f64,
}

impl Pipeline {
    /// A pipeline with the given solver configuration and a detection
    /// factor (must exceed 1; 1.5 is a good default for the paper's
    /// resistance range). Returns [`ParmaError::InvalidConfig`] for
    /// out-of-range values.
    pub fn new(config: ParmaConfig, detection_factor: f64) -> Result<Self, ParmaError> {
        config.validate()?;
        if !(detection_factor > 1.0 && detection_factor.is_finite()) {
            return Err(ParmaError::InvalidConfig(format!(
                "detection factor must exceed 1, got {detection_factor}"
            )));
        }
        Ok(Pipeline {
            config,
            detection_factor,
        })
    }

    /// Processes every time point of a session.
    ///
    /// Each solve after hour 0 starts from the previous recovered map
    /// *extrapolated* by the measured-impedance ratio: crossing `(i,j)`
    /// starts at `R_prev(i,j) · Z_new(i,j)/Z_prev(i,j)`. Impedance is
    /// locally near-proportional to direct resistance, so the ratio
    /// transports the previous solution onto the new measurement and
    /// lands far closer than the raw previous map when anomalies grow
    /// between time points.
    pub fn run(&self, dataset: &WetLabDataset) -> Result<Vec<TimePointResult>, ParmaError> {
        self.run_supervised(dataset, &CancelToken::unbounded(), None)
    }

    /// Like [`Self::run`] but under a [`CancelToken`] plus an optional
    /// per-solve budget: each time point's solve runs under a child token
    /// clamped to both the session token's deadline and `solve_budget`.
    /// A fired token surfaces as [`ParmaError::Timeout`] /
    /// [`ParmaError::Cancelled`]; an uninterrupted run is bitwise
    /// identical to [`Self::run`].
    pub fn run_supervised(
        &self,
        dataset: &WetLabDataset,
        token: &CancelToken,
        solve_budget: Option<std::time::Duration>,
    ) -> Result<Vec<TimePointResult>, ParmaError> {
        // A transient unnamed cache: same plan reuse as before, without
        // touching the service-level cache counters.
        self.run_cached(dataset, token, solve_budget, &PlanCache::unnamed(), None)
    }

    /// Like [`Self::run_supervised`], but pulls [`SolvePlan`]s from a
    /// shared cross-request [`PlanCache`] and optionally seeds hour 0
    /// from a previous session's `(resistors, impedances)` pair — the
    /// same ratio extrapolation used between in-session time points,
    /// lifted across requests. A seed whose geometry does not match the
    /// dataset is ignored (cold start). With a fresh cache and no seed
    /// this is bitwise identical to [`Self::run`].
    pub fn run_cached(
        &self,
        dataset: &WetLabDataset,
        token: &CancelToken,
        solve_budget: Option<std::time::Duration>,
        plans: &PlanCache,
        warm_seed: Option<(mea_model::ResistorGrid, mea_model::ZMatrix)>,
    ) -> Result<Vec<TimePointResult>, ParmaError> {
        let _span = mea_obs::span("pipeline/run");
        let mut out: Vec<TimePointResult> = Vec::with_capacity(dataset.measurements.len());
        let mut warm: Option<(mea_model::ResistorGrid, mea_model::ZMatrix)> = warm_seed;
        // One plan and one scratch shared across the session's time points
        // (they all use the same geometry); bitwise identical to fresh
        // per-point solves, just without the rebuild cost.
        let mut plan: Option<Arc<SolvePlan>> = None;
        let mut scratch = SolveScratch::new();
        for m in &dataset.measurements {
            let _tp = mea_obs::span("time_point");
            let solver = ParmaSolver::new(ParmaConfig {
                voltage: m.voltage,
                ..self.config
            });
            if plan.as_ref().map(|p| p.grid()) != Some(m.z.grid()) {
                plan = Some(plans.get_or_analyze(m.z.grid()));
            }
            let plan_ref = plan.as_deref().expect("plan installed above");
            let solve_token = token.child(solve_budget);
            let solution = match &warm {
                Some((prev_r, prev_z)) if prev_r.grid() == m.z.grid() => {
                    let init = ratio_extrapolate(prev_r, prev_z, &m.z);
                    solver.solve_supervised(
                        plan_ref,
                        &m.z,
                        Some(init),
                        &mut scratch,
                        &solve_token,
                    )?
                }
                _ => solver.solve_supervised(plan_ref, &m.z, None, &mut scratch, &solve_token)?,
            };
            let detection = {
                let _d = mea_obs::span("detect");
                detect_anomalies(&solution.resistors, self.detection_factor)
            };
            let ground_truth_error = m
                .ground_truth
                .as_ref()
                .map(|truth| solution.resistors.rel_max_diff(truth));
            warm = Some((solution.resistors.clone(), m.z.clone()));
            out.push(TimePointResult {
                hours: m.hours,
                solution,
                detection,
                ground_truth_error,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ParmaSolver;
    use mea_model::{AnomalyConfig, MeaGrid};

    fn session(n: usize, seed: u64) -> WetLabDataset {
        WetLabDataset::generate(MeaGrid::square(n), &AnomalyConfig::default(), seed).unwrap()
    }

    #[test]
    fn processes_all_time_points_accurately() {
        let ds = session(6, 2024);
        let results = Pipeline::new(ParmaConfig::default(), 1.5)
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            let err = r
                .ground_truth_error
                .expect("synthetic data has ground truth");
            assert!(err < 1e-6, "hour {}: error {err}", r.hours);
        }
    }

    #[test]
    fn anomaly_coverage_grows_with_time() {
        let ds = session(12, 7);
        let results = Pipeline::new(ParmaConfig::default(), 1.5)
            .unwrap()
            .run(&ds)
            .unwrap();
        let first = results.first().unwrap().detection.anomalies.len();
        let last = results.last().unwrap().detection.anomalies.len();
        assert!(
            last >= first,
            "growing anomalies must not shrink the detection set: {first} → {last}"
        );
    }

    #[test]
    fn warm_start_is_used_after_hour_zero() {
        // The extrapolated warm start must beat (or at worst match, within
        // slack) a cold solve of the *same* measurement, hour by hour.
        let ds = session(8, 55);
        let results = Pipeline::new(ParmaConfig::default(), 1.5)
            .unwrap()
            .run(&ds)
            .unwrap();
        let mut warm_total = 0usize;
        let mut cold_total = 0usize;
        for (r, m) in results[1..].iter().zip(&ds.measurements[1..]) {
            let solver = ParmaSolver::new(ParmaConfig {
                voltage: m.voltage,
                ..Default::default()
            });
            let cold = solver.solve(&m.z).unwrap();
            warm_total += r.solution.iterations;
            cold_total += cold.iterations;
            assert!(
                r.solution.iterations <= cold.iterations + 5,
                "hour {}: warm start regressed: {} vs cold {}",
                r.hours,
                r.solution.iterations,
                cold.iterations
            );
        }
        assert!(
            warm_total < cold_total,
            "across the session the warm start must save iterations: {warm_total} vs {cold_total}"
        );
    }

    #[test]
    fn supervised_run_matches_plain_run_bitwise() {
        let ds = session(6, 91);
        let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
        let plain = pipeline.run(&ds).unwrap();
        let supervised = pipeline
            .run_supervised(&ds, &CancelToken::unbounded(), None)
            .unwrap();
        assert_eq!(plain.len(), supervised.len());
        for (a, b) in plain.iter().zip(&supervised) {
            assert_eq!(a.solution.iterations, b.solution.iterations);
            for (x, y) in a
                .solution
                .resistors
                .as_slice()
                .iter()
                .zip(b.solution.resistors.as_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn shared_plan_cache_keeps_runs_bitwise_identical() {
        let ds = session(6, 91);
        let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
        let plain = pipeline.run(&ds).unwrap();
        let cache = PlanCache::unnamed();
        let token = CancelToken::unbounded();
        let first = pipeline
            .run_cached(&ds, &token, None, &cache, None)
            .unwrap();
        let second = pipeline
            .run_cached(&ds, &token, None, &cache, None)
            .unwrap();
        // One analysis total: the first run misses, the second hits.
        assert_eq!(cache.stats(), (1, 1));
        for variant in [&first, &second] {
            assert_eq!(plain.len(), variant.len());
            for (a, b) in plain.iter().zip(variant) {
                assert_eq!(a.solution.iterations, b.solution.iterations);
                for (x, y) in a
                    .solution
                    .resistors
                    .as_slice()
                    .iter()
                    .zip(b.solution.resistors.as_slice())
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn warm_seed_cuts_iterations_and_mismatched_seed_is_ignored() {
        let ds = session(8, 55);
        let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
        let cold = pipeline.run(&ds).unwrap();
        // Seed with the exact hour-0 answer: the transported start is the
        // fixed point itself, so hour 0 must converge in strictly fewer
        // iterations than the cold solve.
        let seed = (
            cold[0].solution.resistors.clone(),
            ds.measurements[0].z.clone(),
        );
        let cache = PlanCache::unnamed();
        let warm = pipeline
            .run_cached(&ds, &CancelToken::unbounded(), None, &cache, Some(seed))
            .unwrap();
        assert!(
            warm[0].solution.iterations < cold[0].solution.iterations,
            "seeded hour 0 must save iterations: {} vs {}",
            warm[0].solution.iterations,
            cold[0].solution.iterations
        );
        // A seed of the wrong geometry silently cold-starts.
        let wrong_grid = MeaGrid::square(5);
        let bogus = (
            mea_model::CrossingMatrix::filled(wrong_grid, 1.0),
            mea_model::CrossingMatrix::filled(wrong_grid, 1.0),
        );
        let ignored = pipeline
            .run_cached(&ds, &CancelToken::unbounded(), None, &cache, Some(bogus))
            .unwrap();
        assert_eq!(
            ignored[0].solution.iterations, cold[0].solution.iterations,
            "mismatched seed must behave exactly like a cold start"
        );
    }

    #[test]
    fn expired_session_deadline_stops_the_run() {
        let ds = session(6, 91);
        let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        assert!(matches!(
            pipeline.run_supervised(&ds, &token, None),
            Err(ParmaError::Timeout { .. })
        ));
        // A zero per-solve budget also stops the run, via the child clamp.
        assert!(matches!(
            pipeline.run_supervised(
                &ds,
                &CancelToken::unbounded(),
                Some(std::time::Duration::ZERO)
            ),
            Err(ParmaError::Timeout { .. })
        ));
    }

    #[test]
    fn bad_detection_factor_rejected() {
        let err = Pipeline::new(ParmaConfig::default(), 1.0).unwrap_err();
        assert!(matches!(err, ParmaError::InvalidConfig(_)));
        assert!(err.to_string().contains("detection factor"));
    }

    #[test]
    fn bad_solver_config_rejected_at_construction() {
        let cfg = ParmaConfig {
            damping: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            Pipeline::new(cfg, 1.5),
            Err(ParmaError::InvalidConfig(_))
        ));
    }
}
