//! The end-to-end pipeline: measured time series → recovered resistor
//! maps → anomaly reports.
//!
//! This is the workflow the paper's wet lab motivated: the device measures
//! cell media at 0/6/12/24 hours, Parma parametrizes each snapshot, and
//! thresholding the recovered maps localizes the (growing) anomalies.
//! Consecutive time points warm-start from the previous solution.

use crate::config::ParmaConfig;
use crate::detect::{detect_anomalies, DetectionReport};
use crate::error::ParmaError;
use crate::solver::{ParmaSolution, ParmaSolver};
use mea_model::WetLabDataset;

/// One time point's outcome.
#[derive(Clone, Debug)]
pub struct TimePointResult {
    /// Hours after setup.
    pub hours: u32,
    /// The inverse-solve outcome.
    pub solution: ParmaSolution,
    /// Anomaly detection on the recovered map.
    pub detection: DetectionReport,
    /// Max relative error against ground truth, when the dataset is
    /// synthetic and carries it.
    pub ground_truth_error: Option<f64>,
}

/// The full measurement-to-detection pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    config: ParmaConfig,
    /// Detection threshold factor over the median baseline.
    detection_factor: f64,
}

impl Pipeline {
    /// A pipeline with the given solver configuration and a detection
    /// factor (must exceed 1; 1.5 is a good default for the paper's
    /// resistance range).
    pub fn new(config: ParmaConfig, detection_factor: f64) -> Self {
        config.validate();
        assert!(detection_factor > 1.0, "detection factor must exceed 1");
        Pipeline { config, detection_factor }
    }

    /// Processes every time point of a session, warm-starting each solve
    /// from the previous recovered map.
    pub fn run(&self, dataset: &WetLabDataset) -> Result<Vec<TimePointResult>, ParmaError> {
        let mut out: Vec<TimePointResult> = Vec::with_capacity(dataset.measurements.len());
        let mut warm: Option<mea_model::ResistorGrid> = None;
        for m in &dataset.measurements {
            let solver = ParmaSolver::new(ParmaConfig { voltage: m.voltage, ..self.config });
            let solution = match &warm {
                Some(prev) => solver.solve_from(&m.z, prev.clone())?,
                None => solver.solve(&m.z)?,
            };
            let detection = detect_anomalies(&solution.resistors, self.detection_factor);
            let ground_truth_error = m
                .ground_truth
                .as_ref()
                .map(|truth| solution.resistors.rel_max_diff(truth));
            warm = Some(solution.resistors.clone());
            out.push(TimePointResult { hours: m.hours, solution, detection, ground_truth_error });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, MeaGrid};

    fn session(n: usize, seed: u64) -> WetLabDataset {
        WetLabDataset::generate(MeaGrid::square(n), &AnomalyConfig::default(), seed).unwrap()
    }

    #[test]
    fn processes_all_time_points_accurately() {
        let ds = session(6, 2024);
        let results = Pipeline::new(ParmaConfig::default(), 1.5).run(&ds).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            let err = r.ground_truth_error.expect("synthetic data has ground truth");
            assert!(err < 1e-6, "hour {}: error {err}", r.hours);
        }
    }

    #[test]
    fn anomaly_coverage_grows_with_time() {
        let ds = session(12, 7);
        let results = Pipeline::new(ParmaConfig::default(), 1.5).run(&ds).unwrap();
        let first = results.first().unwrap().detection.anomalies.len();
        let last = results.last().unwrap().detection.anomalies.len();
        assert!(
            last >= first,
            "growing anomalies must not shrink the detection set: {first} → {last}"
        );
    }

    #[test]
    fn warm_start_is_used_after_hour_zero() {
        let ds = session(8, 55);
        let results = Pipeline::new(ParmaConfig::default(), 1.5).run(&ds).unwrap();
        // Later time points start from a nearby map, so they must not need
        // more iterations than the cold hour-0 solve by a wide margin.
        let cold = results[0].solution.iterations;
        for r in &results[1..] {
            assert!(
                r.solution.iterations <= cold + 5,
                "warm start regressed: {} vs cold {cold}",
                r.solution.iterations
            );
        }
    }

    #[test]
    #[should_panic(expected = "detection factor")]
    fn bad_detection_factor_rejected() {
        let _ = Pipeline::new(ParmaConfig::default(), 1.0);
    }
}
