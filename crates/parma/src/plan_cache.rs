//! Topology-keyed caching of symbolic solve structure.
//!
//! The expensive symbolic phase — building a [`SolvePlan`]'s work-item
//! schedule, or a `JacobianTemplate`'s sparsity pattern — depends only on
//! the device *geometry*, never on measured data. A long-lived process
//! (`parma serve`) therefore analyzes each geometry once and reuses the
//! result for every subsequent request of that shape.
//!
//! # Key invariants (DESIGN.md §16)
//!
//! * The key is the exact `(rows, cols)` pair. Topologies that are equal
//!   up to relabeling — a 3×4 and a 4×3 device share every topological
//!   invariant — still have distinct row/column structure in the solve,
//!   so they must **not** collide; keying on derived invariants (joint
//!   count, β₁) would alias them.
//! * A cached value is shared immutably ([`Arc`]); plans carry no
//!   data-dependent state, so a cache hit is *bitwise* equivalent to a
//!   fresh analysis (pinned by `plan_cache_properties` and the serve
//!   end-to-end harness).
//! * Hit/miss counts are observable both per-cache ([`TopologyCache::stats`])
//!   and — for named caches — on the process-global registry as
//!   `<name>.hits` / `<name>.misses`, which is how the end-to-end test
//!   proves the second same-geometry request skipped symbolic analysis.

use crate::solver::SolvePlan;
use mea_model::MeaGrid;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache entries: the exact `(rows, cols)` key and the shared artifact.
type Entries<T> = Vec<((usize, usize), Arc<T>)>;

/// A geometry-keyed cache of immutable symbolic artifacts.
pub struct TopologyCache<T> {
    /// Counter prefix on the global registry; `None` keeps the cache
    /// silent (used by transient per-run caches so they don't pollute
    /// service-level counters).
    name: Option<&'static str>,
    entries: Mutex<Entries<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> TopologyCache<T> {
    /// A cache that reports `<name>.hits` / `<name>.misses` on the
    /// process-global registry.
    pub fn named(name: &'static str) -> Self {
        TopologyCache {
            name: Some(name),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache with local statistics only.
    pub fn unnamed() -> Self {
        TopologyCache {
            name: None,
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `grid`'s geometry, building it with
    /// `build` on first sight. The build runs outside the cache lock —
    /// symbolic analysis can take milliseconds and must not block
    /// concurrent lookups of other geometries — so two racing first
    /// requests may both build; the first to insert wins and both get the
    /// winning [`Arc`] (the loser's build is dropped, keeping the
    /// "one shared value per geometry" invariant).
    pub fn get_or_build(&self, grid: MeaGrid, build: impl FnOnce(MeaGrid) -> T) -> Arc<T> {
        let key = (grid.rows(), grid.cols());
        if let Some(found) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(name) = self.name {
                mea_obs::counter_add(&format!("{name}.hits"), 1);
            }
            return found;
        }
        let built = Arc::new(build(grid));
        let mut entries = self.entries.lock().expect("topology cache lock");
        let value = match entries.iter().find(|(k, _)| *k == key) {
            Some((_, existing)) => Arc::clone(existing),
            None => {
                entries.push((key, Arc::clone(&built)));
                built
            }
        };
        drop(entries);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(name) = self.name {
            mea_obs::counter_add(&format!("{name}.misses"), 1);
        }
        value
    }

    fn lookup(&self, key: (usize, usize)) -> Option<Arc<T>> {
        self.entries
            .lock()
            .expect("topology cache lock")
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| Arc::clone(v))
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct geometries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("topology cache lock").len()
    }

    /// Whether the cache has seen no geometry yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The service's cache of [`SolvePlan`]s — "analyze once, serve every
/// array of that geometry".
pub type PlanCache = TopologyCache<SolvePlan>;

impl PlanCache {
    /// The shared plan for `grid`, analyzed on first request.
    pub fn get_or_analyze(&self, grid: MeaGrid) -> Arc<SolvePlan> {
        self.get_or_build(grid, SolvePlan::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted_per_geometry() {
        let cache = PlanCache::unnamed();
        let a = cache.get_or_analyze(MeaGrid::square(4));
        let b = cache.get_or_analyze(MeaGrid::square(4));
        let c = cache.get_or_analyze(MeaGrid::square(5));
        assert!(Arc::ptr_eq(&a, &b), "same geometry shares one plan");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn relabeling_equal_geometries_do_not_collide() {
        let cache = PlanCache::unnamed();
        let a = cache.get_or_analyze(MeaGrid::new(3, 4));
        let b = cache.get_or_analyze(MeaGrid::new(4, 3));
        assert!(!Arc::ptr_eq(&a, &b), "3×4 and 4×3 must cache separately");
        assert_eq!(a.grid().rows(), 3);
        assert_eq!(b.grid().rows(), 4);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn cached_plan_is_the_fresh_plan() {
        let cache = PlanCache::unnamed();
        let grid = MeaGrid::square(6);
        let cached = cache.get_or_analyze(grid);
        let fresh = SolvePlan::new(grid);
        assert_eq!(cached.grid(), fresh.grid());
        assert_eq!(cached.kappa().to_bits(), fresh.kappa().to_bits());
    }
}
