//! The long-lived solve service behind `parma serve`: a bounded job
//! queue, a fixed worker pool, and the cross-request state that makes a
//! daemon worth running — the topology-keyed [`PlanCache`] ("analyze
//! once, serve every array of that geometry") and the per-device
//! [`SessionStore`] (warm-start each timepoint from the previous
//! solution).
//!
//! Every job runs under the PR 4 supervisor: panics are isolated,
//! retryable failures get their backoff/escalation ladder, and exhausted
//! items surface as classified [`FailureReport`]s rather than taking the
//! daemon down. Admission control is a bounded queue; a full queue or a
//! draining service rejects *at submit time* with an [`AdmissionError`]
//! mapped onto the supervisor's failure taxonomy (retryable → HTTP 429,
//! terminal → 503 at the CLI layer).
//!
//! # Determinism contract
//!
//! Plan-cache hits and warm starts never change a solve's fixed point:
//! a cache-hit solve is bitwise identical to a cold solve of the same
//! request (plans carry no data-dependent state), and a warm-started
//! session changes only the iteration count. Both halves are pinned by
//! the serve end-to-end harness.

use crate::config::ParmaConfig;
use crate::error::ParmaError;
use crate::pipeline::{Pipeline, TimePointResult};
use crate::plan_cache::PlanCache;
use crate::session::SessionStore;
use crate::supervisor::{supervise, FailureKind, FailureReport, SupervisorConfig};
use mea_model::WetLabDataset;
use mea_parallel::WorkStealingPool;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything that shapes the service's numeric output and its capacity.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Base solver configuration (per-measurement voltage is taken from
    /// the dataset, as in the batch path).
    pub solver: ParmaConfig,
    /// Anomaly-detection threshold factor.
    pub detection_factor: f64,
    /// Worker threads draining the queue (≥ 1).
    pub workers: usize,
    /// Most jobs allowed to *wait* (running jobs don't count; ≥ 1).
    /// Submits past this are rejected with [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Retry/deadline/backoff policy for each job.
    pub supervisor: SupervisorConfig,
    /// Artificial pre-solve delay per job — a load-test knob (the
    /// backpressure tests use it to keep workers busy); `None` in
    /// production.
    pub hold: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            solver: ParmaConfig::default(),
            detection_factor: 1.5,
            workers: 2,
            queue_capacity: 32,
            supervisor: SupervisorConfig::default(),
            hold: None,
        }
    }
}

/// Why a submit was turned away at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is full; retry after backing off.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl AdmissionError {
    /// Maps the admission failure onto the supervisor taxonomy: a full
    /// queue is transient pressure (like a timeout — retryable), a
    /// draining service is a cancellation (terminal).
    pub fn failure_kind(&self) -> FailureKind {
        match self {
            AdmissionError::QueueFull { .. } => FailureKind::Timeout,
            AdmissionError::ShuttingDown => FailureKind::Cancelled,
        }
    }

    /// Whether the client should retry (drives 429-vs-503 at the HTTP
    /// layer).
    pub fn retryable(&self) -> bool {
        self.failure_kind().retryable()
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} waiting)")
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// A worker is solving it.
    Running,
    /// Every time point solved.
    Done(Arc<Vec<TimePointResult>>),
    /// Quarantined by the supervisor.
    Failed(Arc<FailureReport>),
}

impl JobState {
    /// The stable status label served over HTTP.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// A point-in-time copy of one job's public state.
#[derive(Clone)]
pub struct JobView {
    /// The id `submit` returned.
    pub id: u64,
    /// The device session the job belongs to, if any.
    pub session: Option<String>,
    /// Lifecycle state (results/reports are shared, not copied).
    pub state: JobState,
}

/// Cumulative service counters, for summaries and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that solved every time point.
    pub completed: u64,
    /// Jobs quarantined by the supervisor.
    pub failed: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
}

struct JobRecord {
    session: Option<String>,
    dataset: Option<Arc<WetLabDataset>>,
    state: JobState,
}

type DoneHook = dyn Fn(u64, &Result<Vec<TimePointResult>, FailureReport>) + Send + Sync;

/// Optional remote-execution seam: given a job and its dataset, either
/// solve it elsewhere (`Some(result)`) or decline (`None`) — in which
/// case the job runs in-process as if no offloader existed. Declining is
/// how worker loss degrades gracefully: the local path is always there.
pub type OffloadHook = dyn Fn(u64, &WetLabDataset) -> Option<Result<Vec<TimePointResult>, FailureReport>>
    + Send
    + Sync;

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<VecDeque<u64>>,
    available: Condvar,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    stopping: AtomicBool,
    plans: PlanCache,
    sessions: SessionStore,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    on_done: Option<Box<DoneHook>>,
    offload: Option<Box<OffloadHook>>,
}

/// A running solve service. Dropping it drains and joins the workers.
pub struct SolveService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SolveService {
    /// Validates `cfg` and starts the worker pool.
    pub fn start(cfg: ServiceConfig) -> Result<SolveService, ParmaError> {
        Self::start_with_hook(cfg, None)
    }

    /// Like [`Self::start`] with an `on_done` hook that fires exactly
    /// once per decided job (success or quarantine), as soon as its fate
    /// is known — the CLI journals (and fsyncs) from it.
    pub fn start_with_hook(
        cfg: ServiceConfig,
        on_done: Option<Box<DoneHook>>,
    ) -> Result<SolveService, ParmaError> {
        Self::start_with_hooks(cfg, on_done, None)
    }

    /// Like [`Self::start_with_hook`] with a remote-execution seam:
    /// session-less jobs are offered to `offload` first (device-session
    /// jobs never are — warm-start state lives in this process and must
    /// not be split across machines). An offloader that declines, or is
    /// absent, leaves the job on the in-process path.
    pub fn start_with_hooks(
        cfg: ServiceConfig,
        on_done: Option<Box<DoneHook>>,
        offload: Option<Box<OffloadHook>>,
    ) -> Result<SolveService, ParmaError> {
        // Surface bad numeric configuration now, not on the first job.
        Pipeline::new(cfg.solver, cfg.detection_factor)?;
        if cfg.workers == 0 {
            return Err(ParmaError::InvalidConfig("service needs ≥ 1 worker".into()));
        }
        if cfg.queue_capacity == 0 {
            return Err(ParmaError::InvalidConfig(
                "service queue capacity must be ≥ 1".into(),
            ));
        }
        let workers = cfg.workers;
        let inner = Arc::new(Inner {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stopping: AtomicBool::new(false),
            plans: PlanCache::named("parma.plan_cache"),
            sessions: SessionStore::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            on_done,
            offload,
        });
        let mut handles = Vec::with_capacity(workers);
        for k in 0..workers {
            let worker_inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("parma-serve-{k}"))
                .spawn(move || worker_loop(&worker_inner))
                .map_err(|e| {
                    ParmaError::InvalidConfig(format!("cannot spawn service worker: {e}"))
                })?;
            handles.push(handle);
        }
        Ok(SolveService {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Admits a dataset as a new job and returns its id, or rejects it
    /// under backpressure. `session` opts the job into cross-request
    /// warm starting under that device id.
    pub fn submit(
        &self,
        dataset: WetLabDataset,
        session: Option<&str>,
    ) -> Result<u64, AdmissionError> {
        let inner = &self.inner;
        if inner.stopping.load(Ordering::Acquire) {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            mea_obs::counter_add("parma.serve.rejected", 1);
            return Err(AdmissionError::ShuttingDown);
        }
        let mut queue = inner.queue.lock().expect("service queue lock");
        if queue.len() >= inner.cfg.queue_capacity {
            drop(queue);
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            mea_obs::counter_add("parma.serve.rejected", 1);
            return Err(AdmissionError::QueueFull {
                capacity: inner.cfg.queue_capacity,
            });
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.jobs.lock().expect("service job table lock").insert(
            id,
            JobRecord {
                session: session.map(str::to_string),
                dataset: Some(Arc::new(dataset)),
                state: JobState::Queued,
            },
        );
        queue.push_back(id);
        mea_obs::gauge_set("parma.serve.queue_depth", queue.len() as f64);
        drop(queue);
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        mea_obs::counter_add("parma.serve.submitted", 1);
        inner.available.notify_one();
        Ok(id)
    }

    /// A snapshot of one job's state, or `None` for an unknown id.
    pub fn job(&self, id: u64) -> Option<JobView> {
        let jobs = self.inner.jobs.lock().expect("service job table lock");
        jobs.get(&id).map(|record| JobView {
            id,
            session: record.session.clone(),
            state: record.state.clone(),
        })
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("service queue lock").len()
    }

    /// `(hits, misses)` of the shared plan cache.
    pub fn plan_stats(&self) -> (u64, u64) {
        self.inner.plans.stats()
    }

    /// Live device sessions with committed warm-start state.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.len()
    }

    /// Cumulative admission/completion counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
        }
    }

    /// Closes the admission door *now*: every submit from this point on
    /// answers [`AdmissionError::ShuttingDown`], while queued and
    /// in-flight jobs keep draining. This is the first half of
    /// [`Self::shutdown`], split out so an HTTP shutdown endpoint can
    /// stop admissions before it even answers — otherwise there is a
    /// window between "shutdown accepted" and the drain actually
    /// starting in which a racing submit is accepted and then lost to
    /// the dying process.
    pub fn begin_drain(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        self.inner.available.notify_all();
    }

    /// Graceful drain: stops admitting, lets the workers finish every
    /// queued and in-flight job, and joins them. Idempotent; returns the
    /// number of jobs decided over the service's lifetime.
    pub fn shutdown(&self) -> u64 {
        self.begin_drain();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("service worker lock"));
        for handle in handles {
            let _ = handle.join();
        }
        self.inner.completed.load(Ordering::Relaxed) + self.inner.failed.load(Ordering::Relaxed)
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    // One single-slot pool per worker: `supervise` runs each job through
    // it for panic isolation and the retry/escalation ladder; parallelism
    // across jobs comes from the worker threads themselves.
    let pool = WorkStealingPool::new(1);
    loop {
        let id = {
            let mut queue = inner.queue.lock().expect("service queue lock");
            loop {
                if let Some(id) = queue.pop_front() {
                    mea_obs::gauge_set("parma.serve.queue_depth", queue.len() as f64);
                    break Some(id);
                }
                if inner.stopping.load(Ordering::Acquire) {
                    break None;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .expect("service queue lock poisoned");
            }
        };
        let Some(id) = id else {
            return;
        };
        run_job(inner, &pool, id);
    }
}

fn run_job(inner: &Inner, pool: &WorkStealingPool, id: u64) {
    let t0 = Instant::now();
    let (dataset, session) = {
        let mut jobs = inner.jobs.lock().expect("service job table lock");
        let record = jobs.get_mut(&id).expect("queued job has a record");
        record.state = JobState::Running;
        (
            record
                .dataset
                .take()
                .expect("queued job carries its dataset"),
            record.session.clone(),
        )
    };
    if let Some(hold) = inner.cfg.hold {
        std::thread::sleep(hold);
    }
    // Session-less jobs may run on a remote worker; the solve there is
    // the same supervised pipeline, so the result bits are identical.
    // A declined offload (no workers, worker died, undecodable reply)
    // falls through to the in-process path below.
    let offloaded = if session.is_none() {
        inner.offload.as_ref().and_then(|off| off(id, &dataset))
    } else {
        None
    };
    let mut outcome = match offloaded {
        Some(result) => result,
        None => {
            let warm = session
                .as_deref()
                .and_then(|sid| inner.sessions.warm_pair(sid, dataset.grid));
            let sup = inner.cfg.supervisor;
            let attempt = |_item: usize, escalation: usize, token: &mea_parallel::CancelToken| {
                let config = crate::supervisor::escalated(&inner.cfg.solver, escalation);
                let pipeline = Pipeline::new(config, inner.cfg.detection_factor)?;
                pipeline.run_cached(
                    &dataset,
                    token,
                    sup.solve_deadline,
                    &inner.plans,
                    warm.clone(),
                )
            };
            supervise(pool, 1, &sup, &attempt, &|_, _| {})
                .pop()
                .expect("one supervised item yields one outcome")
        }
    };
    if let Err(report) = &mut outcome {
        // The supervisor numbers items within its (single-item) batch;
        // re-key the report to the service-wide job id.
        report.item = id as usize;
    }
    let result = match outcome {
        Ok(time_points) => {
            if let (Some(sid), Some(last_tp), Some(last_m)) = (
                session.as_deref(),
                time_points.last(),
                dataset.measurements.last(),
            ) {
                inner
                    .sessions
                    .commit(sid, last_tp.solution.resistors.clone(), last_m.z.clone());
            }
            inner.completed.fetch_add(1, Ordering::Relaxed);
            mea_obs::counter_add("parma.serve.completed", 1);
            Ok(time_points)
        }
        Err(report) => {
            inner.failed.fetch_add(1, Ordering::Relaxed);
            mea_obs::counter_add("parma.serve.failed", 1);
            Err(report)
        }
    };
    mea_obs::hist::record("parma.serve.job_ms", t0.elapsed().as_secs_f64() * 1e3);
    if let Some(hook) = &inner.on_done {
        hook(id, &result);
    }
    let state = match result {
        Ok(time_points) => JobState::Done(Arc::new(time_points)),
        Err(report) => JobState::Failed(Arc::new(report)),
    };
    inner
        .jobs
        .lock()
        .expect("service job table lock")
        .get_mut(&id)
        .expect("running job has a record")
        .state = state;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, MeaGrid};

    fn session_data(n: usize, seed: u64) -> WetLabDataset {
        WetLabDataset::generate(MeaGrid::square(n), &AnomalyConfig::default(), seed).unwrap()
    }

    /// One single-measurement dataset per time point of a session — the
    /// serve-shaped workload: each timepoint arrives as its own request.
    fn split_session(ds: &WetLabDataset) -> Vec<WetLabDataset> {
        ds.measurements
            .iter()
            .map(|m| WetLabDataset {
                grid: ds.grid,
                measurements: vec![m.clone()],
            })
            .collect()
    }

    fn wait_done(service: &SolveService, id: u64) -> JobView {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let view = service.job(id).expect("submitted job is known");
            match view.state {
                JobState::Done(_) | JobState::Failed(_) => return view,
                _ => {
                    assert!(Instant::now() < deadline, "job {id} never decided");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }

    #[test]
    fn jobs_complete_and_match_the_direct_pipeline_bitwise() {
        let service = SolveService::start(ServiceConfig::default()).unwrap();
        let ds = session_data(6, 2024);
        let direct = Pipeline::new(ParmaConfig::default(), 1.5)
            .unwrap()
            .run(&ds)
            .unwrap();
        let id = service.submit(ds, None).unwrap();
        let JobState::Done(got) = wait_done(&service, id).state else {
            panic!("job failed");
        };
        assert_eq!(got.len(), direct.len());
        for (a, b) in got.iter().zip(&direct) {
            assert_eq!(a.solution.iterations, b.solution.iterations);
            for (x, y) in a
                .solution
                .resistors
                .as_slice()
                .iter()
                .zip(b.solution.resistors.as_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(service.stats().completed, 1);
        service.shutdown();
    }

    #[test]
    fn plan_cache_hits_on_the_second_same_geometry_job() {
        let service = SolveService::start(ServiceConfig::default()).unwrap();
        let a = service.submit(session_data(5, 1), None).unwrap();
        wait_done(&service, a);
        let (_, misses_after_first) = service.plan_stats();
        assert_eq!(misses_after_first, 1, "first job analyzes");
        let b = service.submit(session_data(5, 2), None).unwrap();
        wait_done(&service, b);
        let (hits, misses) = service.plan_stats();
        assert_eq!(
            misses, 1,
            "second job of the same geometry must not re-analyze"
        );
        assert!(hits >= 1, "second job hits the cache");
        service.shutdown();
    }

    #[test]
    fn session_warm_start_saves_iterations_across_requests() {
        let service = SolveService::start(ServiceConfig::default()).unwrap();
        let points = split_session(&session_data(8, 55));
        let mut cold_total = 0usize;
        let mut warm_total = 0usize;
        // Cold: each timepoint as an unrelated request.
        for ds in &points {
            let id = service.submit(ds.clone(), None).unwrap();
            let JobState::Done(tps) = wait_done(&service, id).state else {
                panic!("cold job failed");
            };
            cold_total += tps[0].solution.iterations;
        }
        // Warm: the same timepoints under one device session, sequentially.
        for ds in &points {
            let id = service.submit(ds.clone(), Some("dev-1")).unwrap();
            let JobState::Done(tps) = wait_done(&service, id).state else {
                panic!("warm job failed");
            };
            warm_total += tps[0].solution.iterations;
        }
        assert!(
            warm_total < cold_total,
            "session warm start must save iterations: {warm_total} vs {cold_total}"
        );
        assert_eq!(service.session_count(), 1);
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_retryable_backpressure() {
        let service = SolveService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            hold: Some(Duration::from_millis(300)),
            ..Default::default()
        })
        .unwrap();
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for seed in 0..8u64 {
            match service.submit(session_data(3, seed), None) {
                Ok(id) => admitted.push(id),
                Err(e) => {
                    assert_eq!(e, AdmissionError::QueueFull { capacity: 1 });
                    assert!(e.retryable());
                    assert_eq!(e.failure_kind(), FailureKind::Timeout);
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "an 8-burst against capacity 1 must reject");
        assert_eq!(service.stats().rejected, rejected as u64);
        service.shutdown();
        for id in admitted {
            assert!(
                matches!(service.job(id).unwrap().state, JobState::Done(_)),
                "admitted jobs must still be drained to completion"
            );
        }
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
        let service = SolveService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..Default::default()
        })
        .unwrap();
        let ids: Vec<u64> = (0..4u64)
            .map(|seed| service.submit(session_data(4, seed), None).unwrap())
            .collect();
        let decided = service.shutdown();
        assert_eq!(decided, 4, "every admitted job is decided before join");
        for id in ids {
            assert!(matches!(service.job(id).unwrap().state, JobState::Done(_)));
        }
        let err = service.submit(session_data(4, 9), None).unwrap_err();
        assert_eq!(err, AdmissionError::ShuttingDown);
        assert!(!err.retryable());
        assert_eq!(err.failure_kind(), FailureKind::Cancelled);
        // Idempotent.
        assert_eq!(service.shutdown(), 4);
    }

    #[test]
    fn hook_fires_once_per_decided_job_and_failures_quarantine() {
        let fired: Arc<Mutex<Vec<(u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let hook_log = Arc::clone(&fired);
        let service = SolveService::start_with_hook(
            ServiceConfig {
                supervisor: SupervisorConfig {
                    max_retries: 1,
                    solve_deadline: Some(Duration::from_nanos(1)),
                    backoff: Duration::ZERO,
                    ..Default::default()
                },
                ..Default::default()
            },
            Some(Box::new(move |id, result| {
                hook_log.lock().unwrap().push((id, result.is_ok()));
            })),
        )
        .unwrap();
        let id = service.submit(session_data(6, 3), None).unwrap();
        let view = wait_done(&service, id);
        let JobState::Failed(report) = view.state else {
            panic!("a 1 ns solve deadline must quarantine");
        };
        assert_eq!(report.kind, FailureKind::Timeout);
        assert_eq!(report.item, id as usize, "report keyed by job id");
        service.shutdown();
        assert_eq!(*fired.lock().unwrap(), vec![(id, false)]);
        assert_eq!(service.stats().failed, 1);
    }

    #[test]
    fn invalid_configuration_is_rejected_at_start() {
        assert!(SolveService::start(ServiceConfig {
            workers: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SolveService::start(ServiceConfig {
            queue_capacity: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SolveService::start(ServiceConfig {
            detection_factor: 0.5,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn unknown_job_ids_are_none() {
        let service = SolveService::start(ServiceConfig::default()).unwrap();
        assert!(service.job(999).is_none());
        service.shutdown();
    }
}
