//! Per-device *sessions*: warm-start state that survives across requests.
//!
//! The paper's wet-lab protocol re-measures the same device at 0/6/12/24
//! hours. A long-lived service therefore keeps, per device id, the last
//! recovered resistor map together with the impedance matrix it answered —
//! and seeds the next solve of that device from the previous solution,
//! transported onto the new measurement by the per-pair impedance ratio
//! (exactly the in-session warm start [`crate::pipeline::Pipeline::run`]
//! performs between time points, lifted across process requests).
//!
//! # Invariants (DESIGN.md §16)
//!
//! * A warm pair is only ever handed out for a *matching geometry*; a
//!   device id re-used with a different grid silently cold-starts (and
//!   the commit replaces the stored state).
//! * Warm starting changes the iteration count, never the fixed point:
//!   convergence still runs to the same tolerance on the same equations.
//! * The store is a plain mutex map — session commits happen once per
//!   job, far off any hot path.

use mea_model::{MeaGrid, ResistorGrid, ZMatrix};
use std::collections::HashMap;
use std::sync::Mutex;

/// Transports `prev_r` onto the new measurement: crossing `(i,j)` starts
/// at `R_prev(i,j) · Z_new(i,j)/Z_prev(i,j)`. Impedance is locally
/// near-proportional to direct resistance, so the ratio lands far closer
/// than the raw previous map when the device drifts between measurements.
/// (Shared by the in-session pipeline warm start and the cross-request
/// session store; op order is pinned so both produce identical bits.)
pub fn ratio_extrapolate(prev_r: &ResistorGrid, prev_z: &ZMatrix, z_new: &ZMatrix) -> ResistorGrid {
    let mut init = prev_r.clone();
    for (i, j) in init.grid().pair_iter() {
        let ratio = z_new.get(i, j) / prev_z.get(i, j);
        init.set(i, j, init.get(i, j) * ratio);
    }
    init
}

/// The last decided state of one device session.
#[derive(Clone)]
struct SessionState {
    prev_r: ResistorGrid,
    prev_z: ZMatrix,
}

/// Cross-request warm-start state, keyed by caller-chosen device id.
#[derive(Default)]
pub struct SessionStore {
    sessions: Mutex<HashMap<String, SessionState>>,
}

impl SessionStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored `(previous resistors, previous impedances)` pair for
    /// `id`, provided its geometry matches `grid`. Counts a
    /// `parma.serve.session_warm` on the global registry when it hands a
    /// pair out.
    pub fn warm_pair(&self, id: &str, grid: MeaGrid) -> Option<(ResistorGrid, ZMatrix)> {
        let sessions = self.sessions.lock().expect("session store lock");
        let state = sessions.get(id)?;
        if state.prev_r.grid() != grid {
            return None;
        }
        let pair = (state.prev_r.clone(), state.prev_z.clone());
        drop(sessions);
        mea_obs::counter_add("parma.serve.session_warm", 1);
        Some(pair)
    }

    /// Records the session's newest decided solve: the recovered map and
    /// the measurement it answered. Replaces any previous state for `id`.
    pub fn commit(&self, id: &str, prev_r: ResistorGrid, prev_z: ZMatrix) {
        self.sessions
            .lock()
            .expect("session store lock")
            .insert(id.to_string(), SessionState { prev_r, prev_z });
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session store lock").len()
    }

    /// Whether no session has committed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::CrossingMatrix;

    fn filled(grid: MeaGrid, v: f64) -> CrossingMatrix {
        CrossingMatrix::filled(grid, v)
    }

    #[test]
    fn warm_pair_round_trips_only_on_matching_geometry() {
        let store = SessionStore::new();
        let grid = MeaGrid::square(3);
        assert!(store.warm_pair("dev1", grid).is_none(), "empty store");
        store.commit("dev1", filled(grid, 10.0), filled(grid, 2.0));
        let (r, z) = store.warm_pair("dev1", grid).expect("committed session");
        assert_eq!(r.get(0, 0), 10.0);
        assert_eq!(z.get(0, 0), 2.0);
        // A different geometry under the same id cold-starts.
        assert!(store.warm_pair("dev1", MeaGrid::square(4)).is_none());
        assert!(store.warm_pair("other", grid).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn commit_replaces_previous_state() {
        let store = SessionStore::new();
        let grid = MeaGrid::square(2);
        store.commit("d", filled(grid, 1.0), filled(grid, 1.0));
        store.commit("d", filled(grid, 5.0), filled(grid, 7.0));
        let (r, z) = store.warm_pair("d", grid).unwrap();
        assert_eq!(r.get(1, 1), 5.0);
        assert_eq!(z.get(1, 1), 7.0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ratio_extrapolation_transports_by_impedance_ratio() {
        let grid = MeaGrid::square(2);
        let prev_r = filled(grid, 100.0);
        let prev_z = filled(grid, 4.0);
        let mut z_new = filled(grid, 4.0);
        z_new.set(0, 1, 8.0); // one crossing doubled its impedance
        let init = ratio_extrapolate(&prev_r, &prev_z, &z_new);
        assert_eq!(init.get(0, 0), 100.0);
        assert_eq!(init.get(0, 1), 200.0);
    }
}
