//! The Parma inverse solver: a damped conductance fixed point with
//! embarrassingly parallel per-pair updates.
//!
//! # Derivation
//!
//! At the current estimate `R⁽ᵗ⁾`, one grounded-Laplacian factorization
//! gives every pair's model impedance `Z_model = R_eff(i, j)` and wire
//! potentials in `O(n³ + n²·n)` total (see `mea_model::ForwardSolver`).
//! The §IV-A source equation, written with the *measured* impedance but the
//! model potentials, solves for the direct resistance:
//!
//! ```text
//! U/Z_meas = U/R_ij + Σ_k (U − Ua_k)/R_ik
//!          = U/Z_model − U/R_ij⁽ᵗ⁾ + U/R_ij      (model satisfies its own balance)
//! ⇒  g_ij ← g_ij + (1/Z_meas − 1/Z_model)
//! ```
//!
//! i.e. the direct *conductance* absorbs the terminal-conductance mismatch.
//! Every pair's update reads the shared factorization and writes only its
//! own entry — the `(n−1)²` independent homology cycles of §III are what
//! guarantee the updates do not interact within an iteration — so the
//! update sweep runs under any [`mea_parallel::Strategy`].
//!
//! # Damping
//!
//! Because the direct resistor sits in parallel with the rest of the
//! network, `1/Z_ij = g_ij + G_rest(g_others)`: the update above is a
//! Jacobi sweep on that system. Its coupling matrix `K = ∂(1/Z)/∂g`
//! factors as `D·S` with `D = diag(1/Z²)` positive and `S` the entrywise
//! square of a Gram matrix — PSD by the Schur product theorem — so `K`'s
//! spectrum is real and positive. Its top eigenvalue is
//! `κ = mn/(m+n−1)`, reached by the uniform mode (`1/Z = κ·g` exactly
//! for uniform maps, by homogeneity); slow local modes sit below 1. With
//! the damping `α = 2/(1+κ)` every mode satisfies `|1 − α·λ| < 1`, so
//! the sweep is a guaranteed geometric contraction; the asymptotic rate is
//! `max(|1−α·λ_min|, (κ−1)/(κ+1))`, which `crate::diagnostics` measures
//! and matches against the observed history. The iteration starts from
//! `R⁽⁰⁾ = κ·Z_meas` (exact in the uniform mode) and a ×8 trust clamp per
//! sweep keeps early iterates physical.

use crate::config::ParmaConfig;
use crate::error::ParmaError;
use mea_linalg::{FactorPath, LinalgError, Parallelism, Sequential};
use mea_model::{ForwardSolver, ForwardWorkspace, MeaGrid, ResistorGrid, ZMatrix};
use mea_obs::events::{emit as emit_event, EventKind};
use mea_obs::hist::Hist;
use mea_parallel::{execute, CancelToken, Interrupt, Strategy, WorkItem, WorkStealingPool};
use std::time::Instant;

/// Per-solve wall-clock latency (ms), across all exit paths.
static SOLVE_MS: Hist = Hist::new("parma.solve_ms");
/// Outer iterations at solve exit.
static SOLVE_ITERS: Hist = Hist::new("parma.solve_iters");
/// Relative residual at solve exit (converged or not).
static SOLVE_RESIDUAL: Hist = Hist::new("parma.solve_residual");
/// One damped update sweep over all pairs (ms).
static SWEEP_MS: Hist = Hist::new("parma.sweep_ms");
/// In-place refactorization of the scratch forward solver (ms).
static REFACTOR_MS: Hist = Hist::new("model.forward_refactor_ms");

/// Result of a converged (or accepted) solve.
#[derive(Clone, Debug)]
pub struct ParmaSolution {
    /// The recovered resistor map (kΩ).
    pub resistors: ResistorGrid,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Final relative impedance mismatch.
    pub residual: f64,
    /// Residual after each iteration (for convergence plots).
    pub history: Vec<f64>,
    /// Recovery interventions taken during the solve, in order. Empty for
    /// healthy solves; non-empty means the plain damped sweep stalled or
    /// diverged and the solver escalated (see [`RecoveryAction`]).
    pub recovery: Vec<RecoveryEvent>,
}

/// One rung of the convergence-failure recovery ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Applied one Aitken Δ² extrapolation to the conductance vector. A
    /// plateau whose iterates still move is a slow geometric mode with
    /// rate ≈ 1 (near-degenerate pairs, e.g. crossings sharing wires with
    /// a short); extrapolating the last three iterates cancels that mode
    /// in the linear regime and is tried first because it is the only
    /// rung that *speeds up* rather than damps.
    Extrapolate,
    /// Persistently halved the sweep damping: the residual plateaued,
    /// which on degenerate maps means the coupling exceeds the healthy
    /// bound κ and the step overshoots into a limit cycle.
    ReduceDamping,
    /// Pulled the iterate halfway back toward the well-conditioned
    /// uniform-mode solution `κ·Z` (the fixed point's analogue of
    /// Tikhonov regularization toward the prior).
    Regularize,
    /// Abandoned the iterate and restarted from `κ·Z` under strong
    /// damping — the rung of last resort, also taken immediately when the
    /// residual turns non-finite.
    ColdRestart,
}

/// Record of one recovery intervention.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// What the solver did.
    pub action: RecoveryAction,
    /// Outer iteration at which it acted.
    pub at_iteration: usize,
    /// The residual that triggered it (may be NaN/∞ for divergence).
    pub residual: f64,
}

/// Residual-plateau window: the ladder escalates when a window this long
/// improves the residual by less than [`STALL_FACTOR`].
const STALL_WINDOW: usize = 25;

/// Minimum relative improvement a healthy solve shows per window. A
/// geometric contraction at the worst healthy rate (~0.92/iteration, see
/// `crate::diagnostics`) improves ~8× per window; requiring only 2%
/// keeps false positives impossible while still catching limit cycles,
/// which improve not at all.
const STALL_FACTOR: f64 = 0.98;

/// Per-topology solve context, built once and reused across solves.
///
/// Everything in here depends only on the grid *geometry*, not on any
/// measured data: the pair work-item list the sweep schedules and the
/// uniform-mode coupling bound κ that sets the damping and the initial
/// scaling. Batch drivers (and the pipeline's time series) build one plan
/// per topology and amortize it across every dataset and time point.
#[derive(Clone, Debug)]
pub struct SolvePlan {
    grid: MeaGrid,
    items: Vec<WorkItem>,
    kappa: f64,
}

impl SolvePlan {
    /// Builds the reusable context for one grid geometry.
    pub fn new(grid: MeaGrid) -> Self {
        SolvePlan {
            grid,
            items: pair_work_items(grid),
            kappa: coupling_bound(grid),
        }
    }

    /// The geometry this plan was built for.
    pub fn grid(&self) -> MeaGrid {
        self.grid
    }

    /// The uniform-mode coupling bound κ = mn/(m+n−1).
    pub fn kappa(&self) -> f64 {
        self.kappa
    }
}

/// Reusable per-solve scratch: the forward solver (refactored in place
/// each iteration instead of rebuilt), its factorization workspace, and
/// the sweep's update buffer.
///
/// Carries no data-dependent state between solves — results through
/// [`ParmaSolver::solve_with_scratch`] are bitwise identical to the other
/// entry points — it only amortizes allocations. Batch drivers keep one
/// per worker thread; with it, the steady-state sweep iteration performs
/// no heap allocation at all.
pub struct SolveScratch {
    forward: Option<ForwardSolver>,
    ws: ForwardWorkspace,
    updates: Vec<PairUpdate>,
    intra: usize,
    pool: Option<WorkStealingPool>,
}

impl SolveScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    ///
    /// The embedded factorization workspace runs in sweep-only inverse
    /// scope: the solver's hot path reads only effective resistances, so
    /// structured large-`n` refactors skip the HH-block gemm entirely.
    /// (Below the structured dispatch threshold the dense path still
    /// produces the full inverse — bitwise identical to the historical
    /// behavior.)
    pub fn new() -> Self {
        let mut ws = ForwardWorkspace::empty();
        ws.set_sweep_only(true);
        SolveScratch {
            forward: None,
            ws,
            updates: Vec::new(),
            intra: 1,
            pool: None,
        }
    }

    /// Grants this scratch `threads` intra-solve workers: structured
    /// refactors fan their row-chunk stages over a private work-stealing
    /// pool. The chunk partition is thread-count-independent, so any
    /// width — including 1 — produces bitwise-identical results; this
    /// setting trades wall time only.
    pub fn set_intra_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.intra {
            self.intra = threads;
            self.pool = (threads > 1).then(|| WorkStealingPool::new(threads));
        }
    }

    /// The configured intra-solve width.
    pub fn intra_threads(&self) -> usize {
        self.intra
    }

    /// Overrides the factorization dispatch of the embedded workspace
    /// (tests pin the structured path on small grids through this).
    pub fn set_factor_path(&mut self, path: FactorPath) {
        self.ws.set_factor_path(path);
    }
}

impl Default for SolveScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The inverse solver.
#[derive(Clone, Debug)]
pub struct ParmaSolver {
    config: ParmaConfig,
}

impl ParmaSolver {
    /// A solver with the given configuration. Construction is infallible;
    /// the configuration is validated on the first solve, which returns
    /// [`ParmaError::InvalidConfig`] for out-of-range values.
    pub fn new(config: ParmaConfig) -> Self {
        ParmaSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ParmaConfig {
        &self.config
    }

    /// Recovers the resistor map behind a measured impedance matrix.
    ///
    /// The initial iterate scales each measured `Z_ij` by the uniform-mode
    /// factor `κ = mn/(m+n−1)` (for a uniform map, `Z = R/κ` exactly), so
    /// the slowest-converging mode starts already solved.
    pub fn solve(&self, z: &ZMatrix) -> Result<ParmaSolution, ParmaError> {
        self.solve_with_plan(&SolvePlan::new(z.grid()), z, None)
    }

    /// Like [`Self::solve`] but starting from an explicit initial map
    /// (e.g. the previous time point's solution — warm starts across the
    /// wet lab's 0/6/12/24-hour series).
    pub fn solve_from(
        &self,
        z: &ZMatrix,
        initial: ResistorGrid,
    ) -> Result<ParmaSolution, ParmaError> {
        self.solve_with_plan(&SolvePlan::new(z.grid()), z, Some(initial))
    }

    /// The workhorse: solves against a prebuilt per-topology [`SolvePlan`],
    /// optionally from an explicit initial map (defaulting to the
    /// uniform-mode seed `κ·Z`). The plan carries no data-dependent state,
    /// so the result is bitwise identical to [`Self::solve`] /
    /// [`Self::solve_from`] — those delegate here with a fresh plan.
    pub fn solve_with_plan(
        &self,
        plan: &SolvePlan,
        z: &ZMatrix,
        initial: Option<ResistorGrid>,
    ) -> Result<ParmaSolution, ParmaError> {
        self.solve_with_scratch(plan, z, initial, &mut SolveScratch::new())
    }

    /// Like [`Self::solve_with_plan`] but reusing caller-owned
    /// [`SolveScratch`] across solves, so repeated solves (batch engines,
    /// time series) pay no per-iteration allocation. Bitwise identical to
    /// the other entry points.
    pub fn solve_with_scratch(
        &self,
        plan: &SolvePlan,
        z: &ZMatrix,
        initial: Option<ResistorGrid>,
        scratch: &mut SolveScratch,
    ) -> Result<ParmaSolution, ParmaError> {
        self.solve_supervised(plan, z, initial, scratch, &CancelToken::unbounded())
    }

    /// Like [`Self::solve_with_scratch`] but under a [`CancelToken`]: the
    /// token is polled once per outer iteration (never inside the
    /// floating-point work, so an uninterrupted supervised solve stays
    /// bitwise identical to the plain entry points) and a fired token
    /// surfaces as [`ParmaError::Timeout`] — carrying the partial iterate —
    /// or [`ParmaError::Cancelled`].
    pub fn solve_supervised(
        &self,
        plan: &SolvePlan,
        z: &ZMatrix,
        initial: Option<ResistorGrid>,
        scratch: &mut SolveScratch,
        token: &CancelToken,
    ) -> Result<ParmaSolution, ParmaError> {
        self.config.validate()?;
        validate_measurements(z)?;
        let grid = z.grid();
        if plan.grid != grid {
            return Err(ParmaError::InvalidMeasurement(
                "solve plan geometry differs from the measurements".into(),
            ));
        }
        let kappa = plan.kappa;
        let initial = match initial {
            Some(map) => {
                if map.grid() != grid {
                    return Err(ParmaError::InvalidMeasurement(
                        "initial map geometry differs from the measurements".into(),
                    ));
                }
                if !map.is_physical() {
                    return Err(ParmaError::InvalidMeasurement(
                        "initial map must be strictly positive".into(),
                    ));
                }
                map
            }
            None => {
                let mut seed = z.clone();
                for v in seed.as_mut_slice() {
                    *v *= kappa;
                }
                seed
            }
        };
        let _span = mea_obs::span("parma/solve");
        // Telemetry only: never influences the floating-point work, and
        // when collection is off this is one atomic load.
        let solve_t0 = mea_obs::is_active().then(Instant::now);
        emit_event(EventKind::SolveStart, 0, 0.0);
        // Destructure the scratch once so the forward-solver slot, its
        // factorization workspace and the update buffer borrow disjointly.
        let SolveScratch {
            forward: fwd_slot,
            ws,
            updates,
            pool,
            ..
        } = scratch;
        // Intra-solve executor for the structured factorization stages;
        // bitwise-neutral by the fixed-partition contract.
        let par: &dyn Parallelism = match pool {
            Some(p) => p,
            None => &Sequential,
        };
        let mut r = initial;
        // Sweep output and Aitken history buffers, rotated by swapping so
        // the steady-state iteration allocates nothing.
        let mut next = ResistorGrid::filled(grid, 0.0);
        let mut prev1 = ResistorGrid::filled(grid, 0.0);
        let mut prev2 = ResistorGrid::filled(grid, 0.0);
        let (mut have_prev1, mut have_prev2) = (false, false);
        let mut history = Vec::with_capacity(self.config.max_iter + 1);
        let mut recovery: Vec<RecoveryEvent> = Vec::new();
        let items = &plan.items;
        // Adaptive safeguard: the κ-derived damping is optimal for
        // healthy maps but under-damps degenerate ones (a dead wire makes
        // a whole row couple ~n-fold, past κ, and the plain sweep falls
        // into a limit cycle). When the residual stops improving we shrink
        // the step geometrically; on improvement it creeps back up.
        let mut shrink = 1.0f64;
        // Persistent multiplier applied by the recovery ladder; unlike
        // `shrink` it never creeps back up.
        let mut recovery_damp = 1.0f64;
        // Next ladder rung to try when the solve stalls.
        let mut ladder = [
            RecoveryAction::Extrapolate,
            RecoveryAction::ReduceDamping,
            RecoveryAction::Regularize,
            RecoveryAction::ColdRestart,
        ]
        .into_iter();
        // Iteration index after the last intervention; the plateau window
        // restarts there so one intervention gets time to act.
        let mut last_intervention = 0usize;
        let mut prev_residual = f64::INFINITY;
        // Whether the factorization in `fwd_slot` matches the current `r`
        // (it goes stale on rotation and on every recovery edit of `r`).
        let mut forward_current = false;
        let outcome = 'iterate: {
            for it in 0..self.config.max_iter {
                // Supervision check at the iteration boundary only: an
                // uninterrupted run performs exactly the unsupervised
                // floating-point work (bitwise determinism contract).
                if let Some(interrupt) = token.check() {
                    return Err(interrupted_failure(interrupt, it, r, &history, solve_t0));
                }
                // The factorization itself polls the token at row-chunk
                // granularity (the PR 6 overshoot fix): a deadline firing
                // mid-refactor surfaces here as `LinalgError::Cancelled`
                // instead of waiting out the whole O(dim³) stage.
                let forward = match ensure_forward(fwd_slot, ws, &r, grid, par, token) {
                    Ok(f) => f,
                    Err(ParmaError::Linalg(LinalgError::Cancelled)) => {
                        let interrupt = token.check().unwrap_or(Interrupt::Cancelled);
                        return Err(interrupted_failure(interrupt, it, r, &history, solve_t0));
                    }
                    Err(e) => return Err(e),
                };
                forward_current = true;
                let sweep_t0 = solve_t0.is_some().then(Instant::now);
                let residual = sweep_into(
                    &self.config,
                    forward,
                    z,
                    &r,
                    items,
                    shrink * recovery_damp,
                    updates,
                    &mut next,
                );
                if let Some(t0) = sweep_t0 {
                    SWEEP_MS.record(t0.elapsed().as_secs_f64() * 1e3);
                }
                history.push(residual);
                if residual <= self.config.tol {
                    break 'iterate Ok((it, residual));
                }

                // Convergence-failure detection: a non-finite residual is
                // divergence; a window that barely improves is a stall
                // (limit cycle or hopeless contraction rate).
                let diverged = !residual.is_finite();
                let stalled = !diverged
                    && it + 1 >= last_intervention + STALL_WINDOW
                    && residual > STALL_FACTOR * history[history.len() - STALL_WINDOW];
                if self.config.recovery && (diverged || stalled) {
                    // Divergence skips straight to the cold restart; a
                    // poisoned iterate is not worth damping or blending.
                    let action = if diverged {
                        let _ = ladder.by_ref().last();
                        Some(RecoveryAction::ColdRestart)
                    } else {
                        ladder.next()
                    };
                    if let Some(action) = action {
                        match action {
                            RecoveryAction::Extrapolate => {
                                // Aitken Δ² per pair, in conductance space
                                // (the iteration's variable): the slow
                                // mode's geometric tail cancels exactly in
                                // the linear regime. Entries whose
                                // differences are too small to extrapolate
                                // stably are left alone.
                                if have_prev2 && have_prev1 {
                                    let (r0, r1) = (&prev2, &prev1);
                                    for (i, j) in grid.pair_iter() {
                                        let g0 = 1.0 / r0.get(i, j);
                                        let g1 = 1.0 / r1.get(i, j);
                                        let g2 = 1.0 / r.get(i, j);
                                        let (d1, d2) = (g1 - g0, g2 - g1);
                                        let denom = d2 - d1;
                                        if denom.abs() > 1e-12 * g2.abs() {
                                            let acc = g2 - d2 * d2 / denom;
                                            if acc.is_finite() && acc > 0.0 {
                                                let bounded = acc
                                                    .min(1.0 / self.config.min_resistance)
                                                    .max(1e-12);
                                                r.set(i, j, 1.0 / bounded);
                                            }
                                        }
                                    }
                                }
                            }
                            RecoveryAction::ReduceDamping => {
                                recovery_damp *= 0.5;
                                // Accept the sweep output as the iterate.
                                std::mem::swap(&mut r, &mut next);
                            }
                            RecoveryAction::Regularize => {
                                // Blend halfway toward the uniform-mode
                                // solution κ·Z — the fixed point's
                                // Tikhonov-style pull toward the
                                // well-conditioned prior.
                                for (i, j) in grid.pair_iter() {
                                    let prior = kappa * z.get(i, j);
                                    r.set(i, j, 0.5 * (r.get(i, j) + prior));
                                }
                                recovery_damp *= 0.5;
                            }
                            RecoveryAction::ColdRestart => {
                                for (i, j) in grid.pair_iter() {
                                    r.set(i, j, kappa * z.get(i, j));
                                }
                                recovery_damp = 0.25;
                                shrink = 1.0;
                            }
                        }
                        forward_current = false;
                        mea_obs::counter_add("parma.solver.recoveries", 1);
                        emit_event(EventKind::Recovery, recovery.len() as u64, residual);
                        recovery.push(RecoveryEvent {
                            action,
                            at_iteration: it,
                            residual,
                        });
                        last_intervention = it + 1;
                        prev_residual = f64::INFINITY;
                        have_prev1 = false;
                        have_prev2 = false;
                        continue;
                    }
                    if diverged {
                        // Ladder exhausted and the iterate is poisoned:
                        // keep the last finite iterate (whose factorization
                        // is still current) and stop early.
                        break 'iterate Err(it + 1);
                    }
                }

                if residual >= prev_residual {
                    shrink = (shrink * 0.7).max(1e-3);
                } else {
                    shrink = (shrink * 1.02).min(1.0);
                }
                prev_residual = residual;
                // Rotate r → prev1 → prev2 and adopt the sweep output, by
                // swaps so no buffer is ever reallocated.
                std::mem::swap(&mut prev2, &mut prev1);
                have_prev2 = have_prev1;
                std::mem::swap(&mut prev1, &mut r);
                have_prev1 = true;
                std::mem::swap(&mut r, &mut next);
                forward_current = false;
            }
            Err(self.config.max_iter)
        };
        mea_obs::counter_add("parma.solver.solves", 1);
        mea_obs::record_series("parma.solver.residuals", &history);
        if let Some(t0) = solve_t0 {
            SOLVE_MS.record(t0.elapsed().as_secs_f64() * 1e3);
        }
        match outcome {
            Ok((iterations, residual)) => {
                mea_obs::counter_add("parma.solver.iterations", iterations as u64);
                SOLVE_ITERS.record(iterations as f64);
                SOLVE_RESIDUAL.record(residual);
                emit_event(EventKind::SolveOk, iterations as u64, residual);
                Ok(ParmaSolution {
                    resistors: r,
                    iterations,
                    residual,
                    history,
                    recovery,
                })
            }
            Err(iterations) => {
                // One final residual check with the last iterate. The
                // loop's factorization is reused when it still matches `r`
                // (the diverged-early-exit path) instead of rebuilding.
                if !forward_current {
                    match ensure_forward(fwd_slot, ws, &r, grid, par, token) {
                        Ok(_) => {}
                        // Token fired during the final residual-check
                        // refactor (solve-level telemetry was already
                        // recorded above): map the interrupt directly.
                        Err(ParmaError::Linalg(LinalgError::Cancelled)) => {
                            mea_obs::counter_add("parma.solver.failures", 1);
                            mea_obs::counter_add("parma.solver.iterations", iterations as u64);
                            emit_event(
                                EventKind::SolveFailed,
                                iterations as u64,
                                history.last().copied().unwrap_or(f64::NAN),
                            );
                            return Err(match token.check().unwrap_or(Interrupt::Cancelled) {
                                Interrupt::TimedOut => ParmaError::Timeout {
                                    iterations,
                                    partial: Some(r),
                                },
                                Interrupt::Cancelled => ParmaError::Cancelled { iterations },
                            });
                        }
                        Err(e) => return Err(e),
                    }
                }
                let forward = fwd_slot.as_ref().expect("forward solver ensured above");
                let residual = max_rel_mismatch(forward, z);
                history.push(residual);
                mea_obs::counter_add("parma.solver.iterations", iterations as u64);
                SOLVE_ITERS.record(iterations as f64);
                SOLVE_RESIDUAL.record(residual);
                if residual <= self.config.tol {
                    emit_event(EventKind::SolveOk, iterations as u64, residual);
                    Ok(ParmaSolution {
                        resistors: r,
                        iterations,
                        residual,
                        history,
                        recovery,
                    })
                } else {
                    mea_obs::counter_add("parma.solver.failures", 1);
                    emit_event(EventKind::SolveFailed, iterations as u64, residual);
                    Err(ParmaError::NoConvergence {
                        iterations,
                        residual,
                        partial: r,
                    })
                }
            }
        }
    }
}

/// One pair's update outcome.
struct PairUpdate {
    value: f64,
    rel_mismatch: f64,
}

/// Solve-failure bookkeeping for an interrupt (token fired at an
/// iteration boundary or mid-factorization), returning the error to
/// surface. Consumes `r` so a timeout can carry the partial iterate.
fn interrupted_failure(
    interrupt: Interrupt,
    iterations: usize,
    r: ResistorGrid,
    history: &[f64],
    solve_t0: Option<Instant>,
) -> ParmaError {
    mea_obs::counter_add("parma.solver.solves", 1);
    mea_obs::counter_add("parma.solver.failures", 1);
    mea_obs::counter_add("parma.solver.iterations", iterations as u64);
    mea_obs::record_series("parma.solver.residuals", history);
    if let Some(t0) = solve_t0 {
        SOLVE_MS.record(t0.elapsed().as_secs_f64() * 1e3);
        SOLVE_ITERS.record(iterations as f64);
    }
    emit_event(
        EventKind::SolveFailed,
        iterations as u64,
        history.last().copied().unwrap_or(f64::NAN),
    );
    match interrupt {
        Interrupt::TimedOut => ParmaError::Timeout {
            iterations,
            partial: Some(r),
        },
        Interrupt::Cancelled => ParmaError::Cancelled { iterations },
    }
}

/// Refactors the scratch forward solver in place for the current iterate,
/// building it fresh on first use or on a geometry change. The
/// factorization runs on `par` and polls `token` at chunk granularity
/// (structured path); a fired token surfaces as
/// `ParmaError::Linalg(LinalgError::Cancelled)` for the caller to map.
fn ensure_forward<'a>(
    slot: &'a mut Option<ForwardSolver>,
    ws: &mut ForwardWorkspace,
    r: &ResistorGrid,
    grid: MeaGrid,
    par: &dyn Parallelism,
    token: &CancelToken,
) -> Result<&'a ForwardSolver, ParmaError> {
    let rebuild = match slot.as_ref() {
        Some(f) => f.grid() != grid,
        None => true,
    };
    let stop = || token.check().is_some();
    let should_stop: Option<&(dyn Fn() -> bool + Sync)> = Some(&stop);
    let t0 = mea_obs::is_active().then(Instant::now);
    if rebuild {
        *slot = Some(ForwardSolver::with_workspace_supervised(
            r,
            ws,
            par,
            should_stop,
        )?);
    } else {
        slot.as_mut()
            .expect("checked above")
            .refactor_supervised(r, ws, par, should_stop)?;
    }
    if let Some(t0) = t0 {
        REFACTOR_MS.record(t0.elapsed().as_secs_f64() * 1e3);
    }
    Ok(slot.as_ref().expect("installed above"))
}

/// Work items for the pair sweep: one per endpoint pair. Categories
/// alternate source/destination-side bookkeeping only for strategy
/// bucketing; costs are uniform because pair updates are O(1) after the
/// shared factorization.
fn pair_work_items(grid: MeaGrid) -> Vec<WorkItem> {
    (0..grid.pairs())
        .map(|id| WorkItem {
            id,
            category: id % mea_parallel::CATEGORY_COUNT,
            cost: 1,
        })
        .collect()
}

/// The extreme Jacobi-coupling eigenvalue `κ = mn/(m+n−1)` of uniform
/// maps; see the module docs. Equals 1 for a single crossing (the map is
/// then the identity). Used for the initial-guess scaling; the per-sweep
/// damping uses the sharper map-dependent bound below.
fn coupling_bound(grid: MeaGrid) -> f64 {
    let (m, n) = (grid.rows() as f64, grid.cols() as f64);
    m * n / (m + n - 1.0)
}

/// One damped Jacobi sweep over every pair, writing the updated map into
/// `next` (fully overwritten) and returning the max relative mismatch.
/// `updates` is a reusable buffer; on the sequential strategy the sweep
/// performs no heap allocation.
#[allow(clippy::too_many_arguments)]
fn sweep_into(
    config: &ParmaConfig,
    forward: &ForwardSolver,
    z: &ZMatrix,
    r: &ResistorGrid,
    items: &[WorkItem],
    shrink: f64,
    updates: &mut Vec<PairUpdate>,
    next: &mut ResistorGrid,
) -> f64 {
    let _span = mea_obs::span("sweep");
    let grid = z.grid();
    // Damping: optimal for the uniform-map spectrum [λ_min, κ], times the
    // user multiplier, times the adaptive safeguard factor the outer loop
    // maintains (degenerate maps — e.g. a dead wire — couple more strongly
    // than κ and need extra damping; see `solve_from`).
    let alpha = shrink * config.damping * 2.0 / (1.0 + coupling_bound(grid));
    let update = |w: &WorkItem| {
        let (i, j) = (w.id / grid.cols(), w.id % grid.cols());
        let z_meas = z.get(i, j);
        let z_model = forward.effective_resistance(i, j);
        let g_old = 1.0 / r.get(i, j);
        let g_new = g_old + alpha * (1.0 / z_meas - 1.0 / z_model);
        // Trust clamp: stay within ×8 of the previous conductance and
        // within the configured physical bounds.
        let bounded = g_new
            .clamp(g_old / 8.0, g_old * 8.0)
            .min(1.0 / config.min_resistance)
            .max(1e-12);
        PairUpdate {
            value: 1.0 / bounded,
            rel_mismatch: (z_model - z_meas).abs() / z_meas,
        }
    };
    match config.strategy {
        // Sequential fast path: refill the reusable buffer in place —
        // same updates in the same order, zero allocations.
        Strategy::SingleThread => {
            updates.clear();
            updates.extend(items.iter().map(update));
        }
        strategy => *updates = execute(strategy, items, update),
    }
    let mut residual = 0.0f64;
    for (w, u) in items.iter().zip(updates.iter()) {
        let (i, j) = (w.id / grid.cols(), w.id % grid.cols());
        next.set(i, j, u.value);
        residual = residual.max(u.rel_mismatch);
    }
    residual
}

fn max_rel_mismatch(forward: &ForwardSolver, z: &ZMatrix) -> f64 {
    let grid = z.grid();
    grid.pair_iter().fold(0.0f64, |m, (i, j)| {
        m.max((forward.effective_resistance(i, j) - z.get(i, j)).abs() / z.get(i, j))
    })
}

fn validate_measurements(z: &ZMatrix) -> Result<(), ParmaError> {
    if !z.is_physical() {
        return Err(ParmaError::InvalidMeasurement(
            "measured impedances must be strictly positive and finite".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, CrossingMatrix};
    use mea_parallel::Strategy;

    fn roundtrip(n: usize, seed: u64, config: ParmaConfig) -> (ResistorGrid, ParmaSolution) {
        let grid = MeaGrid::square(n);
        let (truth, _) = AnomalyConfig::default().generate(grid, seed);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let sol = ParmaSolver::new(config).solve(&z).unwrap();
        (truth, sol)
    }

    #[test]
    fn recovers_ground_truth_small() {
        for n in [1usize, 2, 4] {
            let (truth, sol) = roundtrip(n, 7, ParmaConfig::default());
            assert!(
                sol.resistors.rel_max_diff(&truth) < 1e-6,
                "n = {n}: rel error {}",
                sol.resistors.rel_max_diff(&truth)
            );
        }
    }

    #[test]
    fn recovers_ground_truth_midsize() {
        let (truth, sol) = roundtrip(10, 3, ParmaConfig::default());
        assert!(sol.resistors.rel_max_diff(&truth) < 1e-5);
        assert!(sol.residual <= 1e-10);
    }

    #[test]
    fn residual_history_decreases_overall() {
        let (_, sol) = roundtrip(6, 11, ParmaConfig::default());
        let first = sol.history.first().copied().unwrap();
        let last = sol.history.last().copied().unwrap();
        assert!(
            last < first * 1e-3,
            "history must collapse: {first} → {last}"
        );
    }

    #[test]
    fn all_strategies_agree() {
        let grid = MeaGrid::square(6);
        let (truth, _) = AnomalyConfig::default().generate(grid, 21);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let reference = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
        for strategy in [
            Strategy::Parallel4,
            Strategy::BalancedParallel { threads: 3 },
            Strategy::FineGrained { threads: 2 },
            Strategy::WorkStealing { threads: 2 },
        ] {
            let sol = ParmaSolver::new(ParmaConfig::default().with_strategy(strategy))
                .solve(&z)
                .unwrap();
            assert!(
                sol.resistors.rel_max_diff(&reference.resistors) < 1e-12,
                "{strategy:?} must be bit-for-bit-ish with the sequential result"
            );
            assert_eq!(sol.iterations, reference.iterations, "{strategy:?}");
        }
    }

    #[test]
    fn warm_start_accelerates() {
        let grid = MeaGrid::square(8);
        let (truth, _) = AnomalyConfig::default().generate(grid, 31);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let solver = ParmaSolver::new(ParmaConfig::default());
        let cold = solver.solve(&z).unwrap();
        let warm = solver.solve_from(&z, truth.clone()).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.iterations, 0, "exact start must exit immediately");
    }

    #[test]
    fn damping_still_converges() {
        let cfg = ParmaConfig {
            damping: 0.5,
            ..Default::default()
        };
        let (truth, sol) = roundtrip(5, 13, cfg);
        assert!(sol.resistors.rel_max_diff(&truth) < 1e-5);
    }

    #[test]
    fn budget_exhaustion_reports_partial() {
        let cfg = ParmaConfig {
            max_iter: 2,
            tol: 1e-14,
            ..Default::default()
        };
        let grid = MeaGrid::square(6);
        let (truth, _) = AnomalyConfig::default().generate(grid, 5);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        match ParmaSolver::new(cfg).solve(&z) {
            Err(ParmaError::NoConvergence {
                iterations,
                partial,
                residual,
            }) => {
                assert_eq!(iterations, 2);
                assert!(partial.is_physical());
                assert!(residual > 0.0);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn rejects_nonphysical_measurements() {
        let z = CrossingMatrix::filled(MeaGrid::square(3), -1.0);
        let err = ParmaSolver::new(ParmaConfig::default())
            .solve(&z)
            .unwrap_err();
        assert!(matches!(err, ParmaError::InvalidMeasurement(_)));
    }

    #[test]
    fn rejects_mismatched_initial_map() {
        let z = CrossingMatrix::filled(MeaGrid::square(3), 1000.0);
        let init = CrossingMatrix::filled(MeaGrid::square(4), 1000.0);
        let err = ParmaSolver::new(ParmaConfig::default())
            .solve_from(&z, init)
            .unwrap_err();
        assert!(matches!(err, ParmaError::InvalidMeasurement(_)));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        /// Round-trip property: for random physical maps in the wet-lab
        /// range, measure-then-solve recovers the map.
        #[test]
        fn prop_roundtrip_random_maps(n in 2usize..6, seed in proptest::prelude::any::<u64>()) {
            let grid = MeaGrid::square(n);
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                2000.0 + 9000.0 * ((state >> 11) as f64 / (1u64 << 53) as f64)
            };
            let mut truth = CrossingMatrix::filled(grid, 0.0);
            for (i, j) in grid.pair_iter() {
                truth.set(i, j, next());
            }
            let z = ForwardSolver::new(&truth).unwrap().solve_all();
            let cfg = ParmaConfig { max_iter: 2000, ..Default::default() };
            let sol = ParmaSolver::new(cfg).solve(&z).unwrap();
            proptest::prop_assert!(
                sol.resistors.rel_max_diff(&truth) < 1e-5,
                "n = {}, seed = {}: rel error {}",
                n, seed, sol.resistors.rel_max_diff(&truth)
            );
        }
    }

    #[test]
    fn plan_reuse_is_bitwise_identical() {
        // One plan amortized across several datasets must give exactly the
        // bits the per-solve path gives — the batch engine depends on it.
        let grid = MeaGrid::square(5);
        let plan = SolvePlan::new(grid);
        let solver = ParmaSolver::new(ParmaConfig::default());
        for seed in [1u64, 9, 42] {
            let (truth, _) = AnomalyConfig::default().generate(grid, seed);
            let z = ForwardSolver::new(&truth).unwrap().solve_all();
            let fresh = solver.solve(&z).unwrap();
            let planned = solver.solve_with_plan(&plan, &z, None).unwrap();
            assert_eq!(fresh.iterations, planned.iterations);
            assert_eq!(fresh.history.len(), planned.history.len());
            for (a, b) in fresh
                .resistors
                .as_slice()
                .iter()
                .zip(planned.resistors.as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
            }
        }
    }

    #[test]
    fn plan_geometry_mismatch_is_rejected() {
        let plan = SolvePlan::new(MeaGrid::square(4));
        let z = CrossingMatrix::filled(MeaGrid::square(3), 1000.0);
        let err = ParmaSolver::new(ParmaConfig::default())
            .solve_with_plan(&plan, &z, None)
            .unwrap_err();
        assert!(matches!(err, ParmaError::InvalidMeasurement(_)));
    }

    #[test]
    fn iteration_counts_are_pinned_on_seed_fixtures() {
        // Regression pin for the deterministic-reduction contract: the
        // chunked dot/norm kernels and the workspace refactor path fix the
        // whole iteration trajectory, so these counts change only if the
        // numerics change. Bump deliberately, never to paper over drift.
        for (n, seed, want) in [(4usize, 7u64, 48usize), (6, 11, 72), (8, 31, 96)] {
            let grid = MeaGrid::square(n);
            let (truth, _) = AnomalyConfig::default().generate(grid, seed);
            let z = ForwardSolver::new(&truth).unwrap().solve_all();
            let sol = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
            assert_eq!(
                sol.iterations, want,
                "(n = {n}, seed = {seed}): iteration count drifted"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical() {
        // One scratch reused across solves (including a geometry change)
        // must give exactly the bits of the fresh-scratch path.
        let solver = ParmaSolver::new(ParmaConfig::default());
        let mut scratch = SolveScratch::new();
        for (n, seed) in [(5usize, 1u64), (4, 9), (5, 42)] {
            let grid = MeaGrid::square(n);
            let plan = SolvePlan::new(grid);
            let (truth, _) = AnomalyConfig::default().generate(grid, seed);
            let z = ForwardSolver::new(&truth).unwrap().solve_all();
            let fresh = solver.solve_with_plan(&plan, &z, None).unwrap();
            let reused = solver
                .solve_with_scratch(&plan, &z, None, &mut scratch)
                .unwrap();
            assert_eq!(fresh.iterations, reused.iterations);
            for (a, b) in fresh
                .resistors
                .as_slice()
                .iter()
                .zip(reused.resistors.as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}, seed = {seed}");
            }
        }
    }

    #[test]
    fn supervised_unbounded_is_bitwise_identical() {
        let grid = MeaGrid::square(6);
        let plan = SolvePlan::new(grid);
        let (truth, _) = AnomalyConfig::default().generate(grid, 11);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let solver = ParmaSolver::new(ParmaConfig::default());
        let plain = solver.solve_with_plan(&plan, &z, None).unwrap();
        let supervised = solver
            .solve_supervised(
                &plan,
                &z,
                None,
                &mut SolveScratch::new(),
                &CancelToken::unbounded(),
            )
            .unwrap();
        assert_eq!(plain.iterations, supervised.iterations);
        for (a, b) in plain
            .resistors
            .as_slice()
            .iter()
            .zip(supervised.resistors.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn expired_deadline_surfaces_as_timeout_with_partial() {
        let grid = MeaGrid::square(5);
        let plan = SolvePlan::new(grid);
        let (truth, _) = AnomalyConfig::default().generate(grid, 3);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let err = ParmaSolver::new(ParmaConfig::default())
            .solve_supervised(&plan, &z, None, &mut SolveScratch::new(), &token)
            .unwrap_err();
        match err {
            ParmaError::Timeout {
                iterations,
                partial,
            } => {
                assert_eq!(iterations, 0, "deadline was already expired");
                let partial = partial.expect("solver-level timeout carries the iterate");
                assert!(partial.is_physical(), "partial iterate must stay physical");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_surfaces_as_cancelled() {
        let grid = MeaGrid::square(5);
        let plan = SolvePlan::new(grid);
        let (truth, _) = AnomalyConfig::default().generate(grid, 3);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let token = CancelToken::unbounded();
        token.cancel();
        let err = ParmaSolver::new(ParmaConfig::default())
            .solve_supervised(&plan, &z, None, &mut SolveScratch::new(), &token)
            .unwrap_err();
        assert!(matches!(err, ParmaError::Cancelled { iterations: 0 }));
    }

    #[test]
    fn uniform_array_recovers_uniform_map() {
        // All crossings identical: the inverse problem is symmetric and the
        // solution must preserve the symmetry.
        let grid = MeaGrid::square(5);
        let truth = CrossingMatrix::filled(grid, 3000.0);
        let z = ForwardSolver::new(&truth).unwrap().solve_all();
        let sol = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
        let vals = sol.resistors.as_slice();
        let first = vals[0];
        for v in vals {
            assert!((v - first).abs() / first < 1e-9, "symmetry broken");
        }
        assert!((first - 3000.0).abs() / 3000.0 < 1e-8);
    }
}
