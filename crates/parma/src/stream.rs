//! Streaming dataset ingestion: prefetch + validate the next sessions on
//! dedicated I/O slots while the pool solves the current ones.
//!
//! `parma batch` historically loaded every dataset up front on the main
//! thread, serializing ingest before the first solve started. The
//! [`StreamingLoader`] overlaps the two: [`mea_parallel::IoBudget`]
//! carves the thread budget, the I/O slots walk the path list in order
//! loading into a bounded ready-buffer, and solve workers take datasets
//! as their work items come up. Loading goes through the `parma-bin/v1`
//! fast path when the file is binary (`WetLabDataset::load` sniffs), so
//! validation — checksums plus the non-finite/non-physical gate — runs
//! on the I/O slots too; a corrupt file surfaces as a typed ingest error
//! that the supervisor journals through the ordinary failure taxonomy
//! (`non_finite_input`, no retries) without disturbing the rest of the
//! batch.
//!
//! # Deadlock freedom
//!
//! A blocking rendezvous against a *bounded* buffer would deadlock if
//! the pool dispatched indices in an order the prefetch window cannot
//! reach (work stealing makes no ordering promise). Consumers therefore
//! never wait for an unclaimed item: [`StreamingLoader::take`] *helps* —
//! if index `i` is not loaded and nobody is loading it, the consumer
//! claims and loads it itself. Waiting only ever happens on an item
//! some thread is actively loading, and loads never block on takes, so
//! there is no cycle. The prefetch window (claims may run at most
//! `depth` items past the lowest untaken index) bounds buffered memory
//! at `depth + workers` sessions without ever gating progress.
//!
//! # Determinism
//!
//! The loader hands out immutable `Arc<WetLabDataset>`s; which thread
//! loaded a dataset, and whether it was prefetched or help-loaded,
//! cannot change a single bit of it. Solve results over streamed inputs
//! are bitwise identical to preloading (pinned by
//! `tests/stream_equivalence.rs`).

use mea_model::{DatasetError, WetLabDataset};
use mea_obs::events::EventKind;
use mea_obs::hist::Hist;
use mea_parallel::CancelToken;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wall time of one dataset ingest (open + parse + validate), ms.
static LOAD_MS: Hist = Hist::new("parma.ingest.load_ms");
/// The parse + checksum + physicality-scan portion of an ingest, ms.
static VALIDATE_MS: Hist = Hist::new("parma.ingest.validate_ms");
/// Ingest throughput per dataset, MB/s.
static MBYTES_PER_S: Hist = Hist::new("parma.ingest.mbytes_per_s");
/// How long consumers waited on in-flight loads, ms.
static WAIT_MS: Hist = Hist::new("parma.ingest.wait_ms");

/// How often sleeping threads re-check for shutdown/cancellation.
const POLL: Duration = Duration::from_millis(10);

/// A cloneable ingest failure. [`DatasetError`] owns `std::io::Error`
/// and so cannot be cloned across retry attempts; this preserves the
/// typed non-physical location exactly (the taxonomy's
/// `non_finite_input` contract) and renders everything else to its
/// display string.
#[derive(Clone, Debug)]
pub enum IngestError {
    /// The validation pass found a non-finite/non-positive value.
    NonPhysical {
        /// Hour stamp of the offending measurement.
        hours: u32,
        /// Zero-based matrix row.
        row: usize,
        /// Zero-based matrix column.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// I/O, parse, or integrity failure, already rendered.
    Failed(String),
    /// The take was interrupted by its cancel token while waiting — a
    /// property of the *attempt*, not the file, so the batch runner
    /// classifies it as cancellation/timeout and never caches it.
    Interrupted(mea_parallel::Interrupt),
}

impl IngestError {
    fn of(e: DatasetError) -> IngestError {
        match e {
            DatasetError::NonPhysical {
                hours,
                row,
                col,
                value,
            } => IngestError::NonPhysical {
                hours,
                row,
                col,
                value,
            },
            other => IngestError::Failed(other.to_string()),
        }
    }

    /// Back to a [`DatasetError`] so `ParmaError::Dataset` classifies it
    /// exactly as the direct-load path would.
    pub fn into_dataset_error(self) -> DatasetError {
        match self {
            IngestError::NonPhysical {
                hours,
                row,
                col,
                value,
            } => DatasetError::NonPhysical {
                hours,
                row,
                col,
                value,
            },
            IngestError::Failed(msg) => DatasetError::Parse(msg),
            IngestError::Interrupted(i) => {
                DatasetError::Parse(format!("ingest interrupted: {i:?}"))
            }
        }
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::NonPhysical {
                hours,
                row,
                col,
                value,
            } => write!(
                f,
                "non-physical measured impedance {value} at hour {hours}, row {row}, col {col}"
            ),
            IngestError::Failed(msg) => f.write_str(msg),
            IngestError::Interrupted(i) => write!(f, "ingest interrupted: {i:?}"),
        }
    }
}

struct State {
    /// Loaded (or failed) items awaiting their consumer.
    ready: HashMap<usize, Result<Arc<WetLabDataset>, IngestError>>,
    /// Which items have been claimed for loading (by an I/O slot or a
    /// helping consumer).
    claimed: Vec<bool>,
    /// Which items have been taken by their consumer.
    taken: Vec<bool>,
    /// Smallest untaken index — the prefetch window's anchor.
    floor: usize,
    /// Next index the sequential prefetchers will consider.
    next_seq: usize,
    /// Set on drop; parks the I/O slots.
    shutdown: bool,
}

struct Shared {
    paths: Vec<PathBuf>,
    depth: usize,
    state: Mutex<State>,
    cv: Condvar,
}

/// The streaming prefetcher. Construction spawns the I/O threads;
/// dropping it parks and joins them.
pub struct StreamingLoader {
    shared: Arc<Shared>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
}

impl StreamingLoader {
    /// Starts `io_slots` prefetch threads over `paths` with a prefetch
    /// window of `depth` items past the lowest untaken index.
    pub fn start(paths: Vec<PathBuf>, io_slots: usize, depth: usize) -> StreamingLoader {
        let n = paths.len();
        let shared = Arc::new(Shared {
            paths,
            depth: depth.max(1),
            state: Mutex::new(State {
                ready: HashMap::new(),
                claimed: vec![false; n],
                taken: vec![false; n],
                floor: 0,
                next_seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let io_threads = (0..io_slots.max(1).min(n.max(1)))
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parma-ingest-{slot}"))
                    .spawn(move || io_loop(&shared))
                    .expect("spawn ingest thread")
            })
            .collect();
        StreamingLoader { shared, io_threads }
    }

    /// Takes item `i`, blocking only while another thread is actively
    /// loading it; unclaimed items are loaded by the caller (see the
    /// module docs' deadlock-freedom argument). Polls `token` while
    /// waiting so cancellation interrupts the rendezvous.
    ///
    /// Each item may be taken once; the supervised batch runner caches
    /// the result across retry attempts. A second take is a programming
    /// error reported as [`IngestError::Failed`], never a hang.
    pub fn take(&self, i: usize, token: &CancelToken) -> Result<Arc<WetLabDataset>, IngestError> {
        let t0 = Instant::now();
        let mut prefetched = true;
        let mut st = self.shared.state.lock().expect("ingest state lock");
        loop {
            if let Some(res) = st.ready.remove(&i) {
                if st.taken[i] {
                    return Err(IngestError::Failed(format!("item {i} taken twice")));
                }
                st.taken[i] = true;
                while st.floor < st.taken.len() && st.taken[st.floor] {
                    st.floor += 1;
                }
                drop(st);
                self.shared.cv.notify_all();
                mea_obs::counter_add(
                    if prefetched {
                        "parma.ingest.prefetch_hits"
                    } else {
                        "parma.ingest.prefetch_misses"
                    },
                    1,
                );
                let waited_ms = t0.elapsed().as_secs_f64() * 1e3;
                if !prefetched {
                    WAIT_MS.record(waited_ms);
                }
                mea_obs::events::emit_for(
                    EventKind::Ingest,
                    i as u64,
                    prefetched as u64,
                    waited_ms,
                );
                return res;
            }
            if st.taken[i] {
                return Err(IngestError::Failed(format!("item {i} taken twice")));
            }
            prefetched = false;
            if !st.claimed[i] {
                // Help: load it ourselves rather than wait on the window.
                st.claimed[i] = true;
                drop(st);
                let res = load_one(&self.shared.paths[i]);
                st = self.shared.state.lock().expect("ingest state lock");
                st.ready.insert(i, res);
                self.shared.cv.notify_all();
                continue;
            }
            if let Some(interrupt) = token.check() {
                return Err(IngestError::Interrupted(interrupt));
            }
            st = self
                .shared
                .cv
                .wait_timeout(st, POLL)
                .expect("ingest state lock")
                .0;
        }
    }

    /// The path list this loader serves.
    pub fn paths(&self) -> &[PathBuf] {
        &self.shared.paths
    }
}

impl Drop for StreamingLoader {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("ingest state lock");
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for t in self.io_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One prefetch thread: claim the next unclaimed index inside the
/// window, load it outside the lock, publish, repeat.
fn io_loop(shared: &Shared) {
    let n = shared.paths.len();
    loop {
        let idx = {
            let mut st = shared.state.lock().expect("ingest state lock");
            loop {
                if st.shutdown {
                    return;
                }
                while st.next_seq < n && st.claimed[st.next_seq] {
                    st.next_seq += 1;
                }
                if st.next_seq >= n {
                    return;
                }
                if st.next_seq < st.floor.saturating_add(shared.depth) {
                    break;
                }
                st = shared
                    .cv
                    .wait_timeout(st, POLL)
                    .expect("ingest state lock")
                    .0;
            }
            let idx = st.next_seq;
            st.claimed[idx] = true;
            st.next_seq += 1;
            idx
        };
        let res = load_one(&shared.paths[idx]);
        let mut st = shared.state.lock().expect("ingest state lock");
        st.ready.insert(idx, res);
        drop(st);
        shared.cv.notify_all();
    }
}

/// Loads and validates one dataset, recording the ingest telemetry.
fn load_one(path: &Path) -> Result<Arc<WetLabDataset>, IngestError> {
    let t0 = Instant::now();
    let mapped = match mea_model::MappedFile::open(path) {
        Ok(m) => m,
        Err(e) => {
            mea_obs::counter_add("parma.ingest.failures", 1);
            mea_obs::events::emit(EventKind::IngestFailed, 0, t0.elapsed().as_secs_f64() * 1e3);
            return Err(IngestError::Failed(format!(
                "cannot open {}: {e}",
                path.display()
            )));
        }
    };
    let bytes = mapped.bytes().len();
    let tv = Instant::now();
    let parsed = WetLabDataset::from_mapped(&mapped);
    let validate_s = tv.elapsed().as_secs_f64();
    let total_s = t0.elapsed().as_secs_f64();
    VALIDATE_MS.record(validate_s * 1e3);
    LOAD_MS.record(total_s * 1e3);
    mea_obs::counter_add("parma.ingest.files", 1);
    mea_obs::counter_add("parma.ingest.bytes", bytes as u64);
    if total_s > 0.0 {
        MBYTES_PER_S.record(bytes as f64 / 1e6 / total_s);
    }
    match parsed {
        Ok(ds) => Ok(Arc::new(ds)),
        Err(e) => {
            mea_obs::counter_add("parma.ingest.failures", 1);
            mea_obs::events::emit(EventKind::IngestFailed, 0, total_s * 1e3);
            Err(IngestError::of(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_model::{AnomalyConfig, MeaGrid};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("parma-stream-test").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_sessions(dir: &Path, count: usize, binary: bool) -> Vec<PathBuf> {
        (0..count)
            .map(|k| {
                let ds = WetLabDataset::generate(
                    MeaGrid::square(4),
                    &AnomalyConfig::default(),
                    500 + k as u64,
                )
                .unwrap();
                let path = dir.join(format!("s{k:02}.{}", if binary { "pbin" } else { "txt" }));
                if binary {
                    ds.save_binary(&path).unwrap();
                } else {
                    ds.save(&path).unwrap();
                }
                path
            })
            .collect()
    }

    #[test]
    fn streams_match_direct_loads_in_any_take_order() {
        let dir = temp_dir("order");
        let paths = write_sessions(&dir, 6, true);
        let loader = StreamingLoader::start(paths.clone(), 1, 2);
        let token = CancelToken::unbounded();
        // Take in a scrambled order: later items exercise the helping
        // path (outside the window), early ones the prefetch path.
        for &i in &[5usize, 0, 3, 1, 4, 2] {
            let streamed = loader.take(i, &token).unwrap();
            let direct = WetLabDataset::load(&paths[i]).unwrap();
            assert_eq!(*streamed, direct, "item {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_take_is_an_error_not_a_hang() {
        let dir = temp_dir("double");
        let paths = write_sessions(&dir, 2, false);
        let loader = StreamingLoader::start(paths, 1, 4);
        let token = CancelToken::unbounded();
        assert!(loader.take(0, &token).is_ok());
        assert!(matches!(
            loader.take(0, &token),
            Err(IngestError::Failed(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_failures_are_typed_and_isolated() {
        let dir = temp_dir("failures");
        let mut paths = write_sessions(&dir, 3, true);
        // Item 1: corrupt binary. Item 2: missing file.
        let corrupt = dir.join("corrupt.pbin");
        let mut bytes = std::fs::read(&paths[1]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&corrupt, &bytes).unwrap();
        paths[1] = corrupt;
        paths.push(dir.join("missing.pbin"));
        let loader = StreamingLoader::start(paths, 2, 8);
        let token = CancelToken::unbounded();
        assert!(loader.take(0, &token).is_ok());
        assert!(matches!(
            loader.take(1, &token),
            Err(IngestError::Failed(_))
        ));
        assert!(loader.take(2, &token).is_ok());
        assert!(matches!(
            loader.take(3, &token),
            Err(IngestError::Failed(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nonphysical_values_keep_their_typed_location_through_streaming() {
        let dir = temp_dir("nonphysical");
        let ds = WetLabDataset::generate(MeaGrid::square(3), &AnomalyConfig::default(), 9).unwrap();
        let mut poisoned = ds.clone();
        poisoned.measurements[0].z.set(1, 2, -4.0);
        let path = dir.join("bad.pbin");
        poisoned.save_binary(&path).unwrap();
        let loader = StreamingLoader::start(vec![path], 1, 1);
        let token = CancelToken::unbounded();
        match loader.take(0, &token) {
            Err(IngestError::NonPhysical {
                hours,
                row,
                col,
                value,
            }) => {
                assert_eq!((hours, row, col, value), (0, 1, 2, -4.0));
            }
            other => panic!("expected NonPhysical, got {other:?}"),
        }
        // The round trip back to DatasetError keeps the variant.
        let e = IngestError::NonPhysical {
            hours: 6,
            row: 1,
            col: 2,
            value: -4.0,
        };
        assert!(matches!(
            e.into_dataset_error(),
            DatasetError::NonPhysical {
                hours: 6,
                row: 1,
                col: 2,
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_an_unused_loader_parks_cleanly() {
        let dir = temp_dir("drop");
        let paths = write_sessions(&dir, 4, false);
        let loader = StreamingLoader::start(paths, 2, 1);
        assert_eq!(loader.paths().len(), 4);
        drop(loader); // must join without consuming anything
        std::fs::remove_dir_all(&dir).ok();
    }
}
