//! Supervised batch execution: retry with backoff, escalating recovery,
//! quarantine, and a structured failure taxonomy.
//!
//! The batch engine (`crate::batch`) gives throughput; this module gives
//! it *survivability*. Items that panic, time out, diverge, or carry
//! non-finite inputs no longer take the batch down — they are retried up
//! to [`SupervisorConfig::max_retries`] times (with exponential backoff
//! and an escalating recovery configuration reusing the PR 1 ladder) and
//! then quarantined with a classified [`FailureReport`] while every
//! healthy item completes.
//!
//! # Determinism contract (DESIGN.md §13)
//!
//! A clean first attempt — no panic, no timeout, no divergence — performs
//! exactly the work of the unsupervised path: supervision acts only
//! *between* attempts, never inside the floating-point loop, so a run
//! with retries disabled is bitwise equal to today's sequential output.
//! Retries after a *panic* rerun the same configuration (the solve is
//! deterministic, so its result keeps the clean-run bits); only
//! divergence/timeout retries escalate the configuration, and those items
//! had no clean-run result to preserve.
//!
//! # Chaos injection
//!
//! With `PARMA_CHAOS=1` in the environment, first attempts panic at
//! pseudo-random items (seed from `PARMA_CHAOS_SEED` or drawn once and
//! printed to stderr for reproduction). Because panic retries reuse the
//! base configuration, a chaos run's *results* stay bitwise identical to
//! a calm run — only the retry counters differ. CI's chaos job leans on
//! this.

use crate::config::ParmaConfig;
use crate::error::ParmaError;
use mea_obs::events::EventKind;
use mea_obs::hist::Hist;
use mea_obs::json;
use mea_parallel::CancelToken;
use std::time::Duration;

/// Attempts each item needed until its fate was decided (success or
/// quarantine).
static ITEM_ATTEMPTS: Hist = Hist::new("parma.item_attempts");

/// How many of the item's flight-recorder events a quarantine report
/// embeds.
const EMBED_EVENTS: usize = 16;

/// Retry/deadline policy for one supervised batch run.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Extra attempts per item after the first (0 disables retries).
    pub max_retries: usize,
    /// Per-item time budget, enforced at solver iteration boundaries.
    pub solve_deadline: Option<Duration>,
    /// Whole-batch time budget; items still pending when it fires are
    /// quarantined as timeouts.
    pub batch_deadline: Option<Duration>,
    /// Base backoff before retry round `k` (scaled by `2^(k-1)`).
    pub backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            solve_deadline: None,
            batch_deadline: None,
            backoff: Duration::from_millis(25),
        }
    }
}

/// The failure taxonomy of supervised execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The item's job panicked (caught by the pool; the batch survived).
    Panic,
    /// A solve or batch deadline fired.
    Timeout,
    /// The run was cancelled.
    Cancelled,
    /// The solver exhausted its budget without converging.
    Divergence,
    /// The input carried non-finite or non-physical values.
    NonFiniteInput,
    /// The numeric substrate failed (factorization breakdown etc.).
    Internal,
}

impl FailureKind {
    /// The stable machine-readable label (the JSON schema's `kind`).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Cancelled => "cancelled",
            FailureKind::Divergence => "divergence",
            FailureKind::NonFiniteInput => "non_finite_input",
            FailureKind::Internal => "internal",
        }
    }

    /// Whether a retry can plausibly help. Bad inputs stay bad and a
    /// cancelled batch stays cancelled; everything else gets its retries.
    pub fn retryable(self) -> bool {
        !matches!(self, FailureKind::NonFiniteInput | FailureKind::Cancelled)
    }
}

/// One failed attempt at one item.
#[derive(Clone, Debug)]
pub struct AttemptFailure {
    /// 0-based attempt number.
    pub attempt: usize,
    /// Classified failure.
    pub kind: FailureKind,
    /// Human-readable detail (error display or panic message).
    pub detail: String,
}

/// The quarantine record of one item that exhausted its retries.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Batch index of the item.
    pub item: usize,
    /// The *final* attempt's classification (what quarantined it).
    pub kind: FailureKind,
    /// The final attempt's detail.
    pub detail: String,
    /// Every failed attempt, in order (the last one equals
    /// `kind`/`detail`).
    pub attempts: Vec<AttemptFailure>,
    /// The item's last flight-recorder events at quarantine time (its own
    /// solve/retry history, not other workers'), oldest first. Empty when
    /// telemetry was off.
    pub events: Vec<mea_obs::events::Event>,
}

impl FailureReport {
    /// Serializes to the stable `parma-failure/v1` JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let mut obj = json::Object::begin(&mut out);
        obj.field_str("schema", "parma-failure/v1");
        obj.field_u64("item", self.item as u64);
        obj.field_str("kind", self.kind.label());
        obj.field_str("detail", &self.detail);
        let mut attempts = String::from("[");
        for (k, a) in self.attempts.iter().enumerate() {
            if k > 0 {
                attempts.push(',');
            }
            let mut rec = json::Object::begin(&mut attempts);
            rec.field_u64("attempt", a.attempt as u64);
            rec.field_str("kind", a.kind.label());
            rec.field_str("detail", &a.detail);
            rec.end();
        }
        attempts.push(']');
        obj.field_raw("attempts", &attempts);
        // Build provenance and flight-recorder context ride at the tail so
        // the schema's pinned key-order prefix stays untouched.
        obj.field_str("version", env!("CARGO_PKG_VERSION"));
        obj.field_raw("events", &mea_obs::events::events_json_array(&self.events));
        obj.end();
        out
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} quarantined as {} after {} attempt(s): {}",
            self.item,
            self.kind.label(),
            self.attempts.len(),
            self.detail
        )
    }
}

/// Classifies a solver error into the supervision taxonomy.
pub fn classify(err: &ParmaError) -> FailureKind {
    match err {
        ParmaError::Timeout { .. } => FailureKind::Timeout,
        ParmaError::Cancelled { .. } => FailureKind::Cancelled,
        ParmaError::NoConvergence { .. } => FailureKind::Divergence,
        ParmaError::InvalidMeasurement(_) | ParmaError::InvalidConfig(_) => {
            FailureKind::NonFiniteInput
        }
        ParmaError::Dataset(_) => FailureKind::NonFiniteInput,
        ParmaError::Linalg(_) => FailureKind::Internal,
    }
}

/// The escalating recovery configuration for retry level `escalation`
/// (0 = the base config untouched — the bitwise-clean first attempt).
/// Each level turns the PR 1 recovery ladder on, doubles the iteration
/// budget and halves the damping: slower, but with the full ladder armed.
pub fn escalated(base: &ParmaConfig, escalation: usize) -> ParmaConfig {
    if escalation == 0 {
        return *base;
    }
    let shift = escalation.min(4) as u32;
    ParmaConfig {
        recovery: true,
        // Doubling per level, from a floor of 50: a pathologically tight
        // base budget (max_iter = 1) must still reach a workable budget
        // within the escalation cap.
        max_iter: base.max_iter.max(50).saturating_mul(1usize << shift),
        // Halve damping at most twice: deeper cuts slow convergence more
        // than they stabilize it (the armed ladder handles the rest).
        damping: base.damping * 0.5f64.powi(shift.min(2) as i32),
        ..*base
    }
}

/// Chaos injection: with `PARMA_CHAOS=1`, pseudo-randomly selects first
/// attempts to panic. The seed comes from `PARMA_CHAOS_SEED` when set,
/// otherwise it is drawn once per process and printed to stderr so a CI
/// failure reproduces locally.
pub mod chaos {
    use std::sync::OnceLock;

    fn seed() -> Option<u64> {
        static SEED: OnceLock<Option<u64>> = OnceLock::new();
        *SEED.get_or_init(|| {
            if std::env::var("PARMA_CHAOS").map(|v| v == "1") != Ok(true) {
                return None;
            }
            let seed = match std::env::var("PARMA_CHAOS_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            {
                Some(s) => s,
                None => {
                    // One arbitrary draw per process: hash a fresh
                    // RandomState (std's per-process entropy) — no external
                    // RNG crate needed.
                    use std::hash::{BuildHasher, Hasher};
                    let h = std::collections::hash_map::RandomState::new().build_hasher();
                    h.finish()
                }
            };
            eprintln!("PARMA_CHAOS active: seed {seed} (set PARMA_CHAOS_SEED={seed} to reproduce)");
            Some(seed)
        })
    }

    /// Whether chaos is armed for this process.
    pub fn active() -> bool {
        seed().is_some()
    }

    /// Decides (deterministically per seed) whether first-attempt `item`
    /// should be sabotaged; roughly a quarter of items are hit.
    pub fn should_panic(item: usize) -> bool {
        let Some(seed) = seed() else {
            return false;
        };
        // SplitMix64 over seed ⊕ item: cheap, seed-stable, well mixed.
        let mut x = seed ^ (item as u64).wrapping_mul(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        x & 3 == 0
    }

    /// Panics iff chaos selects this first attempt. Call at the top of an
    /// attempt-0 job; retries (attempt > 0) must not call this, so a
    /// sabotaged item's retry succeeds with the base configuration and the
    /// run's results keep their calm-run bits.
    pub fn maybe_panic(item: usize, attempt: usize) {
        if attempt == 0 && should_panic(item) {
            panic!("chaos injection: item {item}");
        }
    }
}

/// Drives pending items through attempt rounds: run every pending item in
/// the pool, classify failures, retry the retryable ones (with backoff)
/// until `max_retries` is exhausted, quarantine the rest.
///
/// `attempt_fn(item, escalation, token)` performs one attempt;
/// `escalation` counts prior divergence/timeout failures of that item
/// (panic retries keep it at 0 so their bits match a clean run).
/// `on_done` fires exactly once per item — success or quarantine — as
/// soon as its fate is decided, which is what lets the CLI journal (and
/// fsync) incrementally.
#[allow(clippy::type_complexity)]
pub(crate) fn supervise<T: Send>(
    pool: &mea_parallel::WorkStealingPool,
    n: usize,
    sup: &SupervisorConfig,
    attempt_fn: &(dyn Fn(usize, usize, &CancelToken) -> Result<T, ParmaError> + Sync),
    on_done: &(dyn Fn(usize, &Result<T, FailureReport>) + Sync),
) -> Vec<Result<T, FailureReport>> {
    let batch_token = match sup.batch_deadline {
        Some(budget) => CancelToken::with_deadline(budget),
        None => CancelToken::unbounded(),
    };
    let mut out: Vec<Option<Result<T, FailureReport>>> = (0..n).map(|_| None).collect();
    // (item, escalation level) still in flight.
    let mut pending: Vec<(usize, usize)> = (0..n).map(|i| (i, 0)).collect();
    let mut attempt_log: Vec<Vec<AttemptFailure>> = vec![Vec::new(); n];
    for attempt in 0..=sup.max_retries {
        if pending.is_empty() {
            break;
        }
        if attempt > 0 {
            // Incremental so a live scrape sees retries as they happen.
            mea_obs::counter_add("parma.batch.retries", pending.len() as u64);
            let backoff = sup
                .backoff
                .saturating_mul(1u32 << (attempt as u32 - 1).min(16));
            if !backoff.is_zero() && batch_token.check().is_none() {
                mea_obs::events::emit(
                    EventKind::Backoff,
                    attempt as u64,
                    backoff.min(Duration::from_secs(5)).as_secs_f64() * 1e3,
                );
                std::thread::sleep(backoff.min(Duration::from_secs(5)));
            }
        }
        let round = std::mem::take(&mut pending);
        let outcome = pool.run(round.len(), |k| {
            let (item, escalation) = round[k];
            let _item_scope = mea_obs::events::item_scope(item as u64);
            chaos::maybe_panic(item, attempt);
            attempt_fn(item, escalation, &batch_token.child(sup.solve_deadline))
        });
        let mut panics = outcome.panics.into_iter().peekable();
        for (k, slot) in outcome.results.into_iter().enumerate() {
            let (item, escalation) = round[k];
            let failure: (FailureKind, String) = match slot {
                Some(Ok(value)) => {
                    ITEM_ATTEMPTS.record((attempt_log[item].len() + 1) as f64);
                    let done = Ok(value);
                    on_done(item, &done);
                    out[item] = Some(done);
                    continue;
                }
                Some(Err(err)) => (classify(&err), err.to_string()),
                None => {
                    let p = panics
                        .next_if(|p| p.index == k)
                        .expect("a poisoned slot has its panic record");
                    mea_obs::events::emit_for(EventKind::Panic, item as u64, attempt as u64, 0.0);
                    (FailureKind::Panic, p.message)
                }
            };
            let (kind, detail) = failure;
            attempt_log[item].push(AttemptFailure {
                attempt,
                kind,
                detail: detail.clone(),
            });
            if kind.retryable() && attempt < sup.max_retries {
                // Panics retry at the same escalation (deterministic rerun
                // keeps clean bits); divergence/timeout escalate.
                let next = if kind == FailureKind::Panic {
                    escalation
                } else {
                    escalation + 1
                };
                mea_obs::events::emit_for(EventKind::Retry, item as u64, attempt as u64 + 1, 0.0);
                pending.push((item, next));
            } else {
                let attempts = std::mem::take(&mut attempt_log[item]);
                ITEM_ATTEMPTS.record(attempts.len() as f64);
                mea_obs::counter_add("parma.batch.quarantined", 1);
                mea_obs::events::emit_for(
                    EventKind::Quarantine,
                    item as u64,
                    attempts.len() as u64,
                    0.0,
                );
                let report = FailureReport {
                    item,
                    kind,
                    detail,
                    attempts,
                    events: mea_obs::events::recent_events_for_item(item as u64, EMBED_EVENTS),
                };
                let done = Err(report);
                on_done(item, &done);
                out[item] = Some(done);
            }
        }
    }
    out.into_iter()
        .map(|r| r.expect("every item was decided: success, quarantine, or last-round fallthrough"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_parallel::WorkStealingPool;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn no_op<T>(_: usize, _: &Result<T, FailureReport>) {}

    #[test]
    fn clean_items_pass_through_untouched() {
        let pool = WorkStealingPool::new(2);
        let out = supervise(
            &pool,
            5,
            &SupervisorConfig::default(),
            &|item, esc, _token| {
                assert_eq!(esc, 0, "clean items never escalate");
                Ok(item * 2)
            },
            &no_op,
        );
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn divergence_escalates_then_quarantines() {
        let pool = WorkStealingPool::new(2);
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let sup = SupervisorConfig {
            max_retries: 2,
            backoff: Duration::ZERO,
            ..Default::default()
        };
        let out: Vec<Result<usize, FailureReport>> = supervise(
            &pool,
            1,
            &sup,
            &|_item, esc, _token| -> Result<usize, ParmaError> {
                seen.lock().unwrap().push(esc);
                Err(ParmaError::NoConvergence {
                    iterations: 1,
                    residual: 1.0,
                    partial: mea_model::CrossingMatrix::filled(mea_model::MeaGrid::square(2), 1.0),
                })
            },
            &no_op,
        );
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2], "escalation ladder");
        let report = out[0].as_ref().unwrap_err();
        assert_eq!(report.kind, FailureKind::Divergence);
        assert_eq!(report.attempts.len(), 3);
        assert_eq!(report.attempts[0].attempt, 0);
        assert_eq!(report.attempts[2].attempt, 2);
    }

    #[test]
    fn panics_are_retried_without_escalation() {
        let pool = WorkStealingPool::new(2);
        let calls = AtomicUsize::new(0);
        let sup = SupervisorConfig {
            max_retries: 1,
            backoff: Duration::ZERO,
            ..Default::default()
        };
        let out = supervise(
            &pool,
            1,
            &sup,
            &|item, esc, _token| {
                if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first attempt sabotaged");
                }
                assert_eq!(esc, 0, "panic retries keep the base config");
                Ok(item + 100)
            },
            &no_op,
        );
        assert_eq!(*out[0].as_ref().unwrap(), 100);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn non_finite_input_is_not_retried() {
        let pool = WorkStealingPool::new(2);
        let calls = AtomicUsize::new(0);
        let out: Vec<Result<(), FailureReport>> = supervise(
            &pool,
            1,
            &SupervisorConfig {
                max_retries: 5,
                backoff: Duration::ZERO,
                ..Default::default()
            },
            &|_, _, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(ParmaError::InvalidMeasurement("NaN in row 3".into()))
            },
            &no_op,
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1, "bad input: one attempt");
        let report = out[0].as_ref().unwrap_err();
        assert_eq!(report.kind, FailureKind::NonFiniteInput);
        assert_eq!(report.attempts.len(), 1);
    }

    #[test]
    fn on_done_fires_exactly_once_per_item() {
        let pool = WorkStealingPool::new(3);
        let fired: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        let _ = supervise(
            &pool,
            6,
            &SupervisorConfig {
                max_retries: 1,
                backoff: Duration::ZERO,
                ..Default::default()
            },
            &|item, _, _| {
                if item % 2 == 0 {
                    Ok(item)
                } else {
                    Err(ParmaError::InvalidMeasurement("bad".into()))
                }
            },
            &|item, result| fired.lock().unwrap().push((item, result.is_ok())),
        );
        let mut log = fired.into_inner().unwrap();
        log.sort();
        assert_eq!(
            log,
            vec![
                (0, true),
                (1, false),
                (2, true),
                (3, false),
                (4, true),
                (5, false)
            ]
        );
    }

    #[test]
    fn batch_deadline_quarantines_stragglers_as_timeouts() {
        let pool = WorkStealingPool::new(2);
        let sup = SupervisorConfig {
            max_retries: 0,
            batch_deadline: Some(Duration::ZERO),
            backoff: Duration::ZERO,
            ..Default::default()
        };
        let out: Vec<Result<usize, FailureReport>> = supervise(
            &pool,
            3,
            &sup,
            &|item, _, token| match token.check() {
                Some(mea_parallel::Interrupt::TimedOut) => Err(ParmaError::Timeout {
                    iterations: 0,
                    partial: None,
                }),
                Some(mea_parallel::Interrupt::Cancelled) => {
                    Err(ParmaError::Cancelled { iterations: 0 })
                }
                None => Ok(item),
            },
            &no_op,
        );
        for r in &out {
            assert_eq!(r.as_ref().unwrap_err().kind, FailureKind::Timeout);
        }
    }

    #[test]
    fn failure_report_json_schema() {
        let report = FailureReport {
            item: 7,
            kind: FailureKind::Timeout,
            detail: "solve deadline exceeded after 12 iterations".into(),
            attempts: vec![
                AttemptFailure {
                    attempt: 0,
                    kind: FailureKind::Panic,
                    detail: "chaos injection: item 7".into(),
                },
                AttemptFailure {
                    attempt: 1,
                    kind: FailureKind::Timeout,
                    detail: "solve deadline exceeded after 12 iterations".into(),
                },
            ],
            events: vec![mea_obs::events::Event {
                seq: 41,
                t_us: 12500,
                kind: EventKind::SolveFailed,
                item: 7,
                info: 1,
                value: 0.5,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"parma-failure/v1\""), "{json}");
        assert!(json.contains("\"item\":7"), "{json}");
        assert!(json.contains("\"kind\":\"timeout\""), "{json}");
        assert!(json.contains("\"attempts\":[{"), "{json}");
        assert!(json.contains("\"kind\":\"panic\""), "{json}");
        assert!(
            json.contains(concat!("\"version\":\"", env!("CARGO_PKG_VERSION"), "\"")),
            "{json}"
        );
        assert!(
            json.contains("\"events\":[{\"seq\":41,\"t_us\":12500,\"kind\":\"solve_failed\",\"item\":7,\"info\":1,\"value\":0.5}]"),
            "{json}"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn escalation_arms_recovery_and_widens_budget() {
        let base = ParmaConfig {
            recovery: false,
            max_iter: 100,
            damping: 1.0,
            ..Default::default()
        };
        assert_eq!(escalated(&base, 0).max_iter, 100);
        assert!(!escalated(&base, 0).recovery);
        let one = escalated(&base, 1);
        assert!(one.recovery);
        assert_eq!(one.max_iter, 200);
        assert!((one.damping - 0.5).abs() < 1e-12);
        let deep = escalated(&base, 10);
        assert_eq!(deep.max_iter, 1600, "escalation is capped");
    }

    #[test]
    fn classification_covers_the_taxonomy() {
        assert_eq!(
            classify(&ParmaError::Timeout {
                iterations: 1,
                partial: None
            }),
            FailureKind::Timeout
        );
        assert_eq!(
            classify(&ParmaError::Cancelled { iterations: 1 }),
            FailureKind::Cancelled
        );
        assert_eq!(
            classify(&ParmaError::InvalidMeasurement("x".into())),
            FailureKind::NonFiniteInput
        );
        assert!(!FailureKind::NonFiniteInput.retryable());
        assert!(!FailureKind::Cancelled.retryable());
        assert!(FailureKind::Panic.retryable());
        assert!(FailureKind::Divergence.retryable());
        for kind in [
            FailureKind::Panic,
            FailureKind::Timeout,
            FailureKind::Cancelled,
            FailureKind::Divergence,
            FailureKind::NonFiniteInput,
            FailureKind::Internal,
        ] {
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn chaos_is_off_without_the_env_gate() {
        // The test harness never sets PARMA_CHAOS in this process, so the
        // injector must be inert.
        if std::env::var("PARMA_CHAOS").map(|v| v == "1") == Ok(true) {
            return; // chaos CI job: skip the inertness check
        }
        assert!(!chaos::active());
        for item in 0..64 {
            assert!(!chaos::should_panic(item));
            chaos::maybe_panic(item, 0);
        }
    }
}
