//! Pins the tentpole allocation guarantee: with a reusable
//! [`SolveScratch`], the steady-state sweep iteration of
//! [`ParmaSolver::solve_with_scratch`] performs **zero** heap
//! allocations. Verified with the tracking global allocator: two solves
//! of the same problem that differ only in iteration budget must allocate
//! exactly the same number of times — every per-solve allocation is
//! iteration-count independent, so any per-iteration allocation would
//! show up as a difference.

use mea_model::{AnomalyConfig, ForwardSolver, MeaGrid};
use parma::{ParmaConfig, ParmaSolver, SolvePlan, SolveScratch};

#[global_allocator]
static ALLOC: mea_memtrack::TrackingAllocator = mea_memtrack::TrackingAllocator::new();

#[test]
fn steady_state_iteration_allocates_nothing() {
    let grid = MeaGrid::square(6);
    let (truth, _) = AnomalyConfig::default().generate(grid, 17);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let plan = SolvePlan::new(grid);

    // Unreachable tolerance + recovery off: both runs exhaust their
    // budget, so iteration counts are exactly max_iter.
    let run = |max_iter: usize, scratch: &mut SolveScratch| {
        let solver = ParmaSolver::new(ParmaConfig {
            max_iter,
            tol: 1e-30,
            recovery: false,
            ..Default::default()
        });
        let err = solver
            .solve_with_scratch(&plan, &z, None, scratch)
            .unwrap_err();
        let count = mea_memtrack::allocation_count();
        drop(err);
        count
    };

    let mut scratch = SolveScratch::new();
    // Warm-up: sizes every lazily-grown buffer (scratch, history capacity
    // is per-solve) before measuring.
    let before_warmup = mea_memtrack::allocation_count();
    run(30, &mut scratch);
    let after_warmup = mea_memtrack::allocation_count();
    assert!(
        after_warmup > before_warmup,
        "sanity: a solve performs some per-solve allocation"
    );

    // The allocation counter is process-global and the test harness's own
    // threads occasionally allocate, so each budget is measured several
    // times and the minimum delta taken — harness noise is strictly
    // additive, while the solve itself is deterministic.
    let mut measure = |max_iter: usize| {
        (0..5)
            .map(|_| {
                let base = mea_memtrack::allocation_count();
                run(max_iter, &mut scratch) - base
            })
            .min()
            .unwrap()
    };
    let short_delta = measure(30);
    let long_delta = measure(80);

    assert_eq!(
        short_delta, long_delta,
        "50 extra sweep iterations must allocate zero extra times \
         (30-iter solve: {short_delta} allocations, 80-iter: {long_delta})"
    );
}
