//! Property tests for the topology-keyed plan cache: the cache key is the
//! exact `(rows, cols)` geometry, so relabeling-equal devices (a 3×4 and a
//! 4×3 have isomorphic circuit graphs) must never share an entry, and a
//! cached plan must be indistinguishable from a freshly analyzed one.
//!
//! These pin the invariants `parma serve` leans on: a cache hit skips the
//! symbolic analysis *only* because `SolvePlan` is topology-pure — handing
//! job B the plan built for job A cannot change a single bit of B's solve.

use mea_model::{AnomalyConfig, ForwardSolver, MeaGrid};
use parma::plan_cache::{PlanCache, TopologyCache};
use parma::solver::SolvePlan;
use parma::ParmaConfig;
use parma::ParmaSolver;
use std::sync::Arc;

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(128))]

    /// `get_or_analyze` is observationally a fresh `SolvePlan::new`: same
    /// geometry, bit-identical conditioning scalar, and the second request
    /// for the same geometry returns the very same allocation.
    #[test]
    fn prop_cached_plan_equals_fresh_analysis(
        rows in 1usize..8,
        cols in 1usize..8,
    ) {
        let cache = PlanCache::unnamed();
        let grid = MeaGrid::new(rows, cols);
        let fresh = SolvePlan::new(grid);
        let cached = cache.get_or_analyze(grid);
        proptest::prop_assert_eq!(cached.grid(), fresh.grid());
        proptest::prop_assert_eq!(cached.kappa().to_bits(), fresh.kappa().to_bits());
        // The hit path returns the cached allocation, not a rebuild.
        let again = cache.get_or_analyze(grid);
        proptest::prop_assert!(Arc::ptr_eq(&cached, &again));
        proptest::prop_assert_eq!(cache.stats(), (1, 1));
    }

    /// Distinct geometries never collide — including relabeling-equal
    /// pairs like r×c vs c×r, whose graphs are isomorphic but whose plans
    /// index crossings differently.
    #[test]
    fn prop_distinct_geometries_never_collide(
        r1 in 1usize..8,
        c1 in 1usize..8,
        r2 in 1usize..8,
        c2 in 1usize..8,
    ) {
        let cache = PlanCache::unnamed();
        let a = cache.get_or_analyze(MeaGrid::new(r1, c1));
        let b = cache.get_or_analyze(MeaGrid::new(r2, c2));
        if (r1, c1) == (r2, c2) {
            proptest::prop_assert!(Arc::ptr_eq(&a, &b));
            proptest::prop_assert_eq!(cache.len(), 1);
        } else {
            proptest::prop_assert!(!Arc::ptr_eq(&a, &b));
            proptest::prop_assert_eq!(cache.len(), 2);
            proptest::prop_assert_eq!(a.grid(), MeaGrid::new(r1, c1));
            proptest::prop_assert_eq!(b.grid(), MeaGrid::new(r2, c2));
        }
        // Every request is accounted for: hits + misses == requests.
        let (hits, misses) = cache.stats();
        proptest::prop_assert_eq!(hits + misses, 2);
    }

    /// The generic cache hands racing builders a single winner: whatever
    /// interleaving, all callers observe one allocation per key and the
    /// ledger stays consistent.
    #[test]
    fn prop_concurrent_requests_converge_on_one_plan(
        rows in 2usize..6,
        cols in 2usize..6,
        threads in 2usize..6,
    ) {
        let cache: Arc<TopologyCache<SolvePlan>> = Arc::new(TopologyCache::unnamed());
        let grid = MeaGrid::new(rows, cols);
        let plans: Vec<Arc<SolvePlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || cache.get_or_build(grid, SolvePlan::new))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &plans[1..] {
            proptest::prop_assert!(Arc::ptr_eq(&plans[0], p));
        }
        proptest::prop_assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.stats();
        // Losing racers are double-counted as a miss then a hit on retry,
        // never dropped: at least one miss, and every thread got a plan.
        proptest::prop_assert!(misses >= 1);
        proptest::prop_assert!(hits + misses >= threads as u64);
    }
}

/// Bitwise end-to-end: solving through a shared (hit) plan produces the
/// same bits as solving through a private fresh plan. One concrete case
/// outside the proptest loop — a full solve per case would dominate the
/// suite's runtime.
#[test]
fn cached_plan_solve_is_bitwise_identical_to_fresh() {
    let grid = MeaGrid::square(6);
    let (truth, _) = AnomalyConfig::default().generate(grid, 77);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();

    let cache = PlanCache::unnamed();
    cache.get_or_analyze(grid); // prime: the solve below takes the hit path
    let shared = cache.get_or_analyze(grid);
    assert_eq!(cache.stats(), (1, 1));

    let solver = ParmaSolver::new(ParmaConfig::default());
    let via_cache = solver.solve_with_plan(&shared, &z, None).unwrap();
    let via_fresh = solver
        .solve_with_plan(&SolvePlan::new(grid), &z, None)
        .unwrap();
    assert_eq!(via_cache.iterations, via_fresh.iterations);
    assert_eq!(
        via_cache.residual.to_bits(),
        via_fresh.residual.to_bits(),
        "residual bits drifted between cached and fresh plans"
    );
    for i in 0..grid.rows() {
        for j in 0..grid.cols() {
            assert_eq!(
                via_cache.resistors.get(i, j).to_bits(),
                via_fresh.resistors.get(i, j).to_bits(),
                "resistor ({i}, {j}) differs between cached and fresh plans"
            );
        }
    }
}
