//! The streaming pipeline's determinism contract, pinned from outside
//! the crate: a batch solved through `run_streamed_supervised` — mixed
//! text and `parma-bin/v1` files, prefetched and help-loaded in whatever
//! order the pool dictates — is bitwise identical to preloading every
//! dataset and solving in memory, run after run.

use parma::prelude::*;
use parma::StreamingLoader;
use std::path::PathBuf;

fn write_mixed_sessions(dir: &std::path::Path, count: u64) -> (Vec<PathBuf>, Vec<WetLabDataset>) {
    std::fs::create_dir_all(dir).unwrap();
    let mut paths = Vec::new();
    let mut datasets = Vec::new();
    for k in 0..count {
        let ds = WetLabDataset::generate(MeaGrid::square(5), &AnomalyConfig::default(), 900 + k)
            .unwrap();
        let path = if k % 2 == 0 {
            let p = dir.join(format!("s{k}.pbin"));
            ds.save_binary(&p).unwrap();
            p
        } else {
            let p = dir.join(format!("s{k}.txt"));
            ds.save(&p).unwrap();
            p
        };
        paths.push(path);
        datasets.push(ds);
    }
    (paths, datasets)
}

fn result_bits(out: &[Result<Vec<TimePointResult>, FailureReport>]) -> Vec<u64> {
    out.iter()
        .flat_map(|r| r.as_ref().unwrap())
        .flat_map(|tp| tp.solution.resistors.as_slice().iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn streamed_solves_are_bitwise_identical_to_preloaded_solves() {
    let dir = std::env::temp_dir().join("parma-stream-equivalence");
    let (paths, datasets) = write_mixed_sessions(&dir, 8);
    let batch = BatchSolver::new(ParmaConfig::default(), 3).unwrap();
    let sup = SupervisorConfig {
        max_retries: 0,
        ..Default::default()
    };

    let preloaded = batch
        .run_sessions_supervised(&datasets, 1.5, &sup, &|_, _| {})
        .unwrap();
    let reference = result_bits(&preloaded);
    assert!(!reference.is_empty());

    // Two streamed runs: scheduling and prefetch order are free to vary
    // between them, the bits are not.
    for round in 0..2 {
        let streamed = batch
            .run_streamed_supervised(&paths, 1.5, &sup, &|_, r| assert!(r.is_ok()))
            .unwrap();
        assert_eq!(
            result_bits(&streamed),
            reference,
            "streamed round {round} diverged from the preloaded batch"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loader_hands_out_the_same_bytes_as_direct_loads_under_contention() {
    let dir = std::env::temp_dir().join("parma-stream-equivalence-contend");
    let (paths, _) = write_mixed_sessions(&dir, 6);
    // The reference is a direct load of the same file (the text format
    // does not carry ground truth, so the on-disk session is the fixture,
    // not the generated one).
    let direct: Vec<WetLabDataset> = paths
        .iter()
        .map(|p| WetLabDataset::load(p).unwrap())
        .collect();
    // Four consumers race over disjoint index sets while one I/O slot
    // prefetches sequentially: every take must match the direct load.
    let loader = StreamingLoader::start(paths.clone(), 1, 2);
    let token = CancelToken::unbounded();
    std::thread::scope(|scope| {
        for start in 0..4usize {
            let (loader, token, direct) = (&loader, &token, &direct);
            scope.spawn(move || {
                for i in (start..direct.len()).step_by(4) {
                    let streamed = loader.take(i, token).unwrap();
                    assert_eq!(*streamed, direct[i], "item {i}");
                }
            });
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}
