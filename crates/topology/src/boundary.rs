//! Boundary operators `∂ₖ : Cᵏ → Cᵏ⁻¹` over GF(2).
//!
//! `∂ₖ` maps a k-simplex to the mod-2 sum of its codimension-1 faces. Its
//! matrix (rows = (k−1)-simplices, columns = k-simplices) is the object from
//! which cycle groups (`Dᵏ = ker ∂ₖ`), boundary groups (`Bᵏ⁻¹ = im ∂ₖ`) and
//! Betti numbers are computed. The fundamental identity `∂ₖ∂ₖ₊₁ = 0` holds
//! because each codim-2 face of a simplex is shared by exactly two of its
//! facets — tested below and by property tests in `homology.rs`.

use crate::chain::Chain;
use crate::complex::SimplicialComplex;
use crate::gf2::GF2Matrix;

/// The boundary operator at a fixed dimension `k` of a fixed complex.
#[derive(Clone, Debug)]
pub struct BoundaryOperator {
    k: usize,
    /// `(n_{k-1}) × (n_k)` matrix over GF(2).
    matrix: GF2Matrix,
}

impl BoundaryOperator {
    /// Builds `∂ₖ` for the given complex. For `k = 0` the operator is the
    /// zero map into the trivial group (unreduced homology convention), so
    /// the matrix has zero rows.
    pub fn new(complex: &SimplicialComplex, k: usize) -> Self {
        let n_k = complex.count(k);
        if k == 0 {
            return BoundaryOperator {
                k,
                matrix: GF2Matrix::zeros(0, n_k),
            };
        }
        let n_km1 = complex.count(k - 1);
        let mut matrix = GF2Matrix::zeros(n_km1, n_k);
        for (col, s) in complex.simplices(k).iter().enumerate() {
            for f in s.facets() {
                let row = complex
                    .index_of(&f)
                    .expect("complex closure guarantees facets are members");
                matrix.flip(row, col);
            }
        }
        BoundaryOperator { k, matrix }
    }

    /// The dimension this operator acts on.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying GF(2) matrix.
    pub fn matrix(&self) -> &GF2Matrix {
        &self.matrix
    }

    /// Rank of the operator = rank of the boundary group `Bᵏ⁻¹ = im ∂ₖ`.
    pub fn rank(&self) -> usize {
        self.matrix.rank()
    }

    /// Nullity = rank of the cycle group `Dᵏ = ker ∂ₖ`.
    pub fn nullity(&self) -> usize {
        self.matrix.cols() - self.matrix.rank()
    }

    /// Applies `∂ₖ` to a k-chain, producing a (k−1)-chain.
    ///
    /// For `k = 0` the result is the zero chain in an empty group (length 0).
    pub fn apply(&self, chain: &Chain) -> Chain {
        assert_eq!(chain.dim(), self.k, "boundary applied to wrong dimension");
        assert_eq!(
            chain.bits().len(),
            self.matrix.cols().div_ceil(64).max(1),
            "chain does not match this complex"
        );
        let out_bits = self.matrix.mul_vec(chain.bits());
        let out_len = self.matrix.rows();
        Chain::from_bits(self.k.saturating_sub(1), out_len, {
            let want = out_len.div_ceil(64).max(1);
            let mut b = out_bits;
            b.truncate(want);
            b.resize(want, 0);
            b
        })
    }

    /// Whether a k-chain is a cycle (`∂c = 0`, i.e. `c ∈ Dᵏ`).
    pub fn is_cycle(&self, chain: &Chain) -> bool {
        self.apply(chain).is_zero()
    }

    /// A basis of the cycle group `Dᵏ = ker ∂ₖ` as chains.
    ///
    /// The `complex` argument documents which complex the chains belong to
    /// and guards against indexing drift in debug builds.
    pub fn cycle_basis(&self, complex: &SimplicialComplex) -> Vec<Chain> {
        debug_assert_eq!(
            complex.count(self.k),
            self.matrix.cols(),
            "complex mismatch"
        );
        let len = self.matrix.cols();
        self.matrix
            .kernel_basis()
            .into_iter()
            .map(|bits| Chain::from_bits(self.k, len, bits))
            .collect()
    }

    /// Whether a (k−1)-chain is a boundary (`∈ Bᵏ⁻¹ = im ∂ₖ`): does some
    /// k-chain map onto it?
    pub fn is_boundary(&self, chain: &Chain) -> bool {
        assert_eq!(
            chain.dim() + 1,
            self.k.max(1),
            "dimension mismatch for is_boundary"
        );
        self.matrix.solve(chain.bits()).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::Simplex;

    fn filled_triangle() -> SimplicialComplex {
        SimplicialComplex::from_maximal_simplices([Simplex::new([0, 1, 2])]).unwrap()
    }

    fn square_cycle() -> SimplicialComplex {
        SimplicialComplex::from_maximal_simplices([
            Simplex::edge(0, 1),
            Simplex::edge(1, 2),
            Simplex::edge(2, 3),
            Simplex::edge(0, 3),
        ])
        .unwrap()
    }

    #[test]
    fn boundary_of_edge_is_its_endpoints() {
        let c = square_cycle();
        let d1 = BoundaryOperator::new(&c, 1);
        let e = Chain::from_simplex(&c, &Simplex::edge(1, 2));
        let b = d1.apply(&e);
        let verts: Vec<_> = b.simplices(&c).into_iter().cloned().collect();
        assert_eq!(verts, vec![Simplex::vertex(1), Simplex::vertex(2)]);
    }

    #[test]
    fn paper_example_vertex_cancellation() {
        // ∂({a,b} + {b,c}) = {a} + {c}: the shared vertex b cancels mod 2.
        let c = square_cycle();
        let d1 = BoundaryOperator::new(&c, 1);
        let chain = Chain::from_simplices(&c, 1, [&Simplex::edge(0, 1), &Simplex::edge(1, 2)]);
        let b = d1.apply(&chain);
        let verts: Vec<_> = b.simplices(&c).into_iter().cloned().collect();
        assert_eq!(verts, vec![Simplex::vertex(0), Simplex::vertex(2)]);
    }

    #[test]
    fn full_square_loop_is_a_cycle() {
        let c = square_cycle();
        let d1 = BoundaryOperator::new(&c, 1);
        let loop_chain = Chain::from_simplices(
            &c,
            1,
            [
                &Simplex::edge(0, 1),
                &Simplex::edge(1, 2),
                &Simplex::edge(2, 3),
                &Simplex::edge(0, 3),
            ],
        );
        assert!(d1.is_cycle(&loop_chain));
        // A single edge is not a cycle.
        let single = Chain::from_simplex(&c, &Simplex::edge(0, 1));
        assert!(!d1.is_cycle(&single));
    }

    #[test]
    fn del_del_is_zero_on_triangle() {
        let c = filled_triangle();
        let d2 = BoundaryOperator::new(&c, 2);
        let d1 = BoundaryOperator::new(&c, 1);
        let tri = Chain::from_simplex(&c, &Simplex::new([0, 1, 2]));
        let edges = d2.apply(&tri);
        assert_eq!(edges.weight(), 3);
        let verts = d1.apply(&edges);
        assert!(verts.is_zero(), "∂∂ must vanish");
    }

    #[test]
    fn triangle_boundary_is_a_boundary() {
        let c = filled_triangle();
        let d2 = BoundaryOperator::new(&c, 2);
        let perimeter = Chain::from_simplices(
            &c,
            1,
            [
                &Simplex::edge(0, 1),
                &Simplex::edge(1, 2),
                &Simplex::edge(0, 2),
            ],
        );
        assert!(d2.is_boundary(&perimeter));
        let single = Chain::from_simplex(&c, &Simplex::edge(0, 1));
        assert!(!d2.is_boundary(&single));
    }

    #[test]
    fn cycle_basis_of_square_has_rank_one() {
        let c = square_cycle();
        let d1 = BoundaryOperator::new(&c, 1);
        let basis = d1.cycle_basis(&c);
        assert_eq!(basis.len(), 1);
        assert!(d1.is_cycle(&basis[0]));
        assert_eq!(basis[0].weight(), 4); // the full loop
    }

    #[test]
    fn k0_operator_maps_to_trivial_group() {
        let c = square_cycle();
        let d0 = BoundaryOperator::new(&c, 0);
        assert_eq!(d0.rank(), 0);
        assert_eq!(d0.nullity(), 4); // all 0-chains are cycles
        let v = Chain::from_simplex(&c, &Simplex::vertex(2));
        assert!(d0.is_cycle(&v));
    }

    #[test]
    fn rank_nullity_partition_columns() {
        let c = filled_triangle();
        for k in 0..=2 {
            let d = BoundaryOperator::new(&c, k);
            assert_eq!(d.rank() + d.nullity(), c.count(k));
        }
    }
}
