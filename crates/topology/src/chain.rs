//! Mod-2 chains: elements of the chain groups `Cᵏ`.
//!
//! A k-chain is a formal sum of k-simplices with GF(2) coefficients, i.e. a
//! finite *set* of k-simplices where adding a simplex twice cancels it — the
//! paper's "modulo-2 inclusion" group operation. Chains are stored as packed
//! bitsets indexed by the complex's stable `(dim, index)` coordinates.

use crate::complex::SimplicialComplex;
use crate::simplex::Simplex;
use std::fmt;

/// A k-chain over GF(2), tied to a particular complex's indexing.
///
/// The chain does not borrow the complex; callers must use chains only with
/// the complex they were built against (dimension and length are checked
/// where possible).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Chain {
    dim: usize,
    /// Number of k-simplices in the underlying complex.
    len: usize,
    bits: Vec<u64>,
}

impl Chain {
    /// The zero chain in dimension `k` of `complex` — the identity element
    /// `e` of the chain group.
    pub fn zero(complex: &SimplicialComplex, k: usize) -> Self {
        let len = complex.count(k);
        Chain {
            dim: k,
            len,
            bits: vec![0; len.div_ceil(64).max(1)],
        }
    }

    /// The chain consisting of a single simplex. Panics if the simplex is
    /// not a member of the complex.
    pub fn from_simplex(complex: &SimplicialComplex, s: &Simplex) -> Self {
        let idx = complex
            .index_of(s)
            .unwrap_or_else(|| panic!("simplex {s} is not in the complex"));
        let mut c = Chain::zero(complex, s.dim() as usize);
        c.set(idx, true);
        c
    }

    /// Builds a chain from an iterator of simplices (mod-2: duplicates
    /// cancel). All must share one dimension and be complex members.
    pub fn from_simplices<'a, I>(complex: &SimplicialComplex, k: usize, simplices: I) -> Self
    where
        I: IntoIterator<Item = &'a Simplex>,
    {
        let mut c = Chain::zero(complex, k);
        for s in simplices {
            assert_eq!(s.dim() as usize, k, "chain dimension mismatch for {s}");
            let idx = complex
                .index_of(s)
                .unwrap_or_else(|| panic!("simplex {s} is not in the complex"));
            c.toggle(idx);
        }
        c
    }

    /// Builds a chain directly from a packed bitset (used by boundary maps).
    pub(crate) fn from_bits(dim: usize, len: usize, bits: Vec<u64>) -> Self {
        debug_assert_eq!(bits.len(), len.div_ceil(64).max(1));
        Chain { dim, len, bits }
    }

    /// The chain's dimension k.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the coefficient of the simplex with index `i` is 1.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the coefficient of simplex index `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Mod-2 toggles the coefficient of simplex index `i`.
    pub fn toggle(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / 64] ^= 1u64 << (i % 64);
    }

    /// Group operation `⋆`: mod-2 (symmetric-difference) addition. This is
    /// the paper's example `{a,b} ⋆ {b,c} = {a,c}` at the level of
    /// coefficient vectors. Panics on dimension mismatch.
    pub fn add(&self, other: &Chain) -> Chain {
        assert_eq!(
            self.dim, other.dim,
            "cannot add chains of different dimension"
        );
        assert_eq!(self.len, other.len, "chains belong to different complexes");
        let bits = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| a ^ b)
            .collect();
        Chain {
            dim: self.dim,
            len: self.len,
            bits,
        }
    }

    /// In-place mod-2 addition.
    pub fn add_assign(&mut self, other: &Chain) {
        assert_eq!(self.dim, other.dim);
        assert_eq!(self.len, other.len);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a ^= b;
        }
    }

    /// Whether this is the zero chain (the group identity).
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of simplices with coefficient 1.
    pub fn weight(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the simplices with coefficient 1, ascending.
    pub fn support(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.weight());
        for (w, &word) in self.bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                word &= word - 1;
            }
        }
        out
    }

    /// Resolves the support back to simplices of the given complex.
    pub fn simplices<'a>(&self, complex: &'a SimplicialComplex) -> Vec<&'a Simplex> {
        let group = complex.simplices(self.dim);
        assert_eq!(group.len(), self.len, "chain/complex mismatch");
        self.support().into_iter().map(|i| &group[i]).collect()
    }

    /// Raw packed bits (read-only).
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chain(dim={}, support={:?})", self.dim, self.support())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::SimplicialComplex;

    fn square() -> SimplicialComplex {
        // A 4-cycle 0-1-2-3.
        SimplicialComplex::from_maximal_simplices([
            Simplex::edge(0, 1),
            Simplex::edge(1, 2),
            Simplex::edge(2, 3),
            Simplex::edge(0, 3),
        ])
        .unwrap()
    }

    #[test]
    fn zero_chain_is_identity() {
        let c = square();
        let z = Chain::zero(&c, 1);
        assert!(z.is_zero());
        let e = Chain::from_simplex(&c, &Simplex::edge(0, 1));
        assert_eq!(e.add(&z), e);
    }

    #[test]
    fn every_chain_is_its_own_inverse() {
        let c = square();
        let x = Chain::from_simplices(&c, 1, [&Simplex::edge(0, 1), &Simplex::edge(2, 3)]);
        assert!(x.add(&x).is_zero());
    }

    #[test]
    fn paper_example_ab_plus_bc() {
        // σ₁ = {a,b}, σ₂ = {b,c}: σ₁ ⋆ σ₂ has both edges in its support —
        // the *vertex-level* cancellation {a,c} appears when taking the
        // boundary, tested in boundary.rs. At chain level the sum is the set
        // of both edges.
        let c = square();
        let s1 = Chain::from_simplex(&c, &Simplex::edge(0, 1));
        let s2 = Chain::from_simplex(&c, &Simplex::edge(1, 2));
        let sum = s1.add(&s2);
        assert_eq!(sum.weight(), 2);
    }

    #[test]
    fn duplicates_cancel_in_from_simplices() {
        let c = square();
        let e = Simplex::edge(0, 1);
        let chain = Chain::from_simplices(&c, 1, [&e, &e]);
        assert!(chain.is_zero());
    }

    #[test]
    fn support_roundtrip() {
        let c = square();
        let chain = Chain::from_simplices(&c, 1, [&Simplex::edge(0, 3), &Simplex::edge(1, 2)]);
        let names: Vec<_> = chain.simplices(&c).into_iter().cloned().collect();
        assert!(names.contains(&Simplex::edge(0, 3)));
        assert!(names.contains(&Simplex::edge(1, 2)));
        assert_eq!(chain.weight(), 2);
    }

    #[test]
    fn add_assign_matches_add() {
        let c = square();
        let a = Chain::from_simplex(&c, &Simplex::edge(0, 1));
        let b = Chain::from_simplex(&c, &Simplex::edge(2, 3));
        let mut a2 = a.clone();
        a2.add_assign(&b);
        assert_eq!(a2, a.add(&b));
    }

    #[test]
    #[should_panic(expected = "not in the complex")]
    fn from_simplex_rejects_non_member() {
        let c = square();
        let _ = Chain::from_simplex(&c, &Simplex::edge(5, 6));
    }

    #[test]
    #[should_panic(expected = "different dimension")]
    fn add_rejects_dimension_mismatch() {
        let c = square();
        let v = Chain::from_simplex(&c, &Simplex::vertex(0));
        let e = Chain::from_simplex(&c, &Simplex::edge(0, 1));
        let _ = v.add(&e);
    }
}
