//! Cochains and coboundaries — the dual machinery the paper invokes for
//! the general Kirchhoff theorem.
//!
//! §II-A: "While Kirchhoff proved this for the physical case where
//! resistances are positive real numbers, a more general case can be
//! proven using algebraic topology, i.e., the introduction of *cochain*
//! and *coboundary*." A k-cochain assigns a GF(2) value to every
//! k-simplex (a potential assignment for k = 0, a voltage-drop assignment
//! for k = 1); the coboundary `δᵏ : Cᵏ → Cᵏ⁺¹` is the transpose of the
//! boundary map, `δδ = 0` dualizes `∂∂ = 0`, and over a field the
//! cohomology Betti numbers equal the homology ones — all verified here.
//!
//! The electrical reading on a circuit graph (a 1-complex):
//!
//! * a 0-cochain is a node-potential pattern; its coboundary `δ⁰u` is the
//!   edge-wise potential *difference* pattern — Kirchhoff's voltage law
//!   says physical voltage patterns are exactly the 0-coboundaries,
//! * a 1-cocycle (`δ¹w = 0`, automatic on a graph) pairs with 1-cycles;
//!   the pairing of a coboundary with any cycle vanishes — which *is* KVL
//!   "the overall voltage change along a loop is zero", proved here in
//!   its mod-2 form.

use crate::boundary::BoundaryOperator;
use crate::chain::Chain;
use crate::complex::SimplicialComplex;
use crate::gf2::GF2Matrix;

/// A k-cochain over GF(2): one bit per k-simplex of a fixed complex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cochain {
    dim: usize,
    len: usize,
    bits: Vec<u64>,
}

impl Cochain {
    /// The zero k-cochain.
    pub fn zero(complex: &SimplicialComplex, k: usize) -> Self {
        let len = complex.count(k);
        Cochain {
            dim: k,
            len,
            bits: vec![0; len.div_ceil(64).max(1)],
        }
    }

    /// A cochain from the set of k-simplex indices where it evaluates to 1.
    pub fn from_support(complex: &SimplicialComplex, k: usize, support: &[usize]) -> Self {
        let mut c = Cochain::zero(complex, k);
        for &i in support {
            assert!(i < c.len, "support index out of range");
            c.bits[i / 64] ^= 1 << (i % 64);
        }
        c
    }

    /// Dimension k.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Value on the simplex with index `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Mod-2 sum of two cochains.
    pub fn add(&self, other: &Cochain) -> Cochain {
        assert_eq!(self.dim, other.dim, "cochain dimension mismatch");
        assert_eq!(self.len, other.len, "cochains from different complexes");
        Cochain {
            dim: self.dim,
            len: self.len,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// Whether this is the zero cochain.
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The canonical pairing `⟨w, c⟩ ∈ GF(2)` of a k-cochain with a
    /// k-chain: the parity of the number of simplices where both are 1.
    pub fn pair(&self, chain: &Chain) -> bool {
        assert_eq!(self.dim, chain.dim(), "pairing dimension mismatch");
        let mut acc = 0u32;
        for (a, b) in self.bits.iter().zip(chain.bits()) {
            acc ^= (a & b).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Raw packed bits.
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }
}

/// The coboundary operator `δᵏ : Cᵏ → Cᵏ⁺¹` of a fixed complex — the
/// transpose of `∂ₖ₊₁`.
#[derive(Clone, Debug)]
pub struct CoboundaryOperator {
    k: usize,
    /// `(n_{k+1}) × (n_k)` matrix: the transpose of the boundary matrix.
    matrix: GF2Matrix,
}

impl CoboundaryOperator {
    /// Builds `δᵏ` for a complex.
    pub fn new(complex: &SimplicialComplex, k: usize) -> Self {
        let boundary = BoundaryOperator::new(complex, k + 1);
        CoboundaryOperator {
            k,
            matrix: boundary.matrix().transpose(),
        }
    }

    /// The dimension this operator acts on.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying GF(2) matrix.
    pub fn matrix(&self) -> &GF2Matrix {
        &self.matrix
    }

    /// Applies `δᵏ` to a k-cochain, producing a (k+1)-cochain.
    pub fn apply(&self, w: &Cochain) -> Cochain {
        assert_eq!(w.dim(), self.k, "coboundary applied to wrong dimension");
        let out_bits = self.matrix.mul_vec(w.bits());
        let out_len = self.matrix.rows();
        let want = out_len.div_ceil(64).max(1);
        let mut bits = out_bits;
        bits.truncate(want);
        bits.resize(want, 0);
        Cochain {
            dim: self.k + 1,
            len: out_len,
            bits,
        }
    }

    /// Rank of the k-coboundary group `im δᵏ`.
    pub fn rank(&self) -> usize {
        self.matrix.rank()
    }

    /// Rank of the k-cocycle group `ker δᵏ`.
    pub fn cocycle_rank(&self) -> usize {
        self.matrix.cols() - self.matrix.rank()
    }
}

/// Cohomology Betti numbers `β⁰..β^dim`:
/// `βᵏ = dim ker δᵏ − dim im δᵏ⁻¹`. Over the field GF(2) these equal the
/// homology Betti numbers (universal coefficients) — asserted by tests.
pub fn cohomology_betti_numbers(complex: &SimplicialComplex) -> Vec<usize> {
    let Some(dim) = complex.dim() else {
        return Vec::new();
    };
    (0..=dim)
        .map(|k| {
            let ker = CoboundaryOperator::new(complex, k).cocycle_rank();
            let im = if k == 0 {
                0
            } else {
                CoboundaryOperator::new(complex, k - 1).rank()
            };
            ker - im
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homology::betti_numbers;
    use crate::mea_complex::mea_to_complex;
    use crate::simplex::Simplex;

    fn square_cycle() -> SimplicialComplex {
        SimplicialComplex::from_maximal_simplices([
            Simplex::edge(0, 1),
            Simplex::edge(1, 2),
            Simplex::edge(2, 3),
            Simplex::edge(0, 3),
        ])
        .unwrap()
    }

    #[test]
    fn coboundary_is_transpose_of_boundary() {
        let c = square_cycle();
        let cb = CoboundaryOperator::new(&c, 0);
        let b = BoundaryOperator::new(&c, 1);
        assert_eq!(cb.matrix(), &b.matrix().transpose());
    }

    #[test]
    fn delta_delta_is_zero() {
        let c = SimplicialComplex::from_maximal_simplices([Simplex::new([0, 1, 2])]).unwrap();
        let d0 = CoboundaryOperator::new(&c, 0);
        let d1 = CoboundaryOperator::new(&c, 1);
        let composed = d1.matrix().mul(d0.matrix());
        assert_eq!(composed.count_ones(), 0, "δδ must vanish");
    }

    #[test]
    fn potential_coboundary_is_edge_differences() {
        // A 0-cochain u with u = 1 on vertex 0 only: δu marks exactly the
        // edges incident to vertex 0 (mod-2 "difference across the edge").
        let c = square_cycle();
        let u = Cochain::from_support(&c, 0, &[0]);
        let du = CoboundaryOperator::new(&c, 0).apply(&u);
        let marked: Vec<usize> = (0..c.count(1)).filter(|&i| du.get(i)).collect();
        let incident: Vec<usize> = c
            .simplices(1)
            .iter()
            .enumerate()
            .filter(|(_, e)| e.vertices().contains(&0))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(marked, incident);
    }

    #[test]
    fn kirchhoff_voltage_law_mod2() {
        // The pairing of any 0-coboundary (a "physical voltage pattern")
        // with any 1-cycle vanishes — KVL in its mod-2 form.
        let c = square_cycle();
        let d0 = CoboundaryOperator::new(&c, 0);
        let loop_chain = Chain::from_simplices(
            &c,
            1,
            [
                &Simplex::edge(0, 1),
                &Simplex::edge(1, 2),
                &Simplex::edge(2, 3),
                &Simplex::edge(0, 3),
            ],
        );
        // Every 0-cochain (16 of them on 4 vertices) must pair trivially.
        for mask in 0u32..16 {
            let support: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
            let u = Cochain::from_support(&c, 0, &support);
            let du = d0.apply(&u);
            assert!(
                !du.pair(&loop_chain),
                "KVL violated for potential pattern {mask:b}"
            );
        }
    }

    #[test]
    fn cohomology_equals_homology_on_mea_complexes() {
        for (m, n) in [(2usize, 2usize), (3, 3), (4, 5)] {
            let c = mea_to_complex(m, n);
            assert_eq!(
                cohomology_betti_numbers(&c),
                betti_numbers(&c),
                "universal coefficients over GF(2) for {m}×{n}"
            );
        }
    }

    #[test]
    fn cohomology_equals_homology_on_classic_spaces() {
        // Sphere (tetrahedron boundary).
        let sphere = SimplicialComplex::from_maximal_simplices([
            Simplex::new([0, 1, 2]),
            Simplex::new([0, 1, 3]),
            Simplex::new([0, 2, 3]),
            Simplex::new([1, 2, 3]),
        ])
        .unwrap();
        assert_eq!(cohomology_betti_numbers(&sphere), betti_numbers(&sphere));
        assert_eq!(cohomology_betti_numbers(&sphere), vec![1, 0, 1]);
    }

    #[test]
    fn cochain_algebra_basics() {
        let c = square_cycle();
        let a = Cochain::from_support(&c, 1, &[0, 2]);
        let b = Cochain::from_support(&c, 1, &[2, 3]);
        let sum = a.add(&b);
        assert!(sum.get(0) && !sum.get(2) && sum.get(3));
        assert!(a.add(&a).is_zero());
        assert!(Cochain::zero(&c, 1).is_zero());
    }

    #[test]
    fn pairing_counts_common_support_parity() {
        let c = square_cycle();
        let w = Cochain::from_support(&c, 1, &[0, 1]);
        let chain = Chain::from_simplices(
            &c,
            1,
            [&c.simplices(1)[0].clone(), &c.simplices(1)[2].clone()],
        );
        assert!(w.pair(&chain)); // one common simplex (index 0)
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_support_bounds_checked() {
        let c = square_cycle();
        let _ = Cochain::from_support(&c, 0, &[99]);
    }
}
