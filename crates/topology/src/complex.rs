//! Abstract simplicial complexes with downward closure and validation.

use crate::simplex::Simplex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised when a set of simplices fails to form a simplicial complex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComplexError {
    /// A face of a member simplex is missing from the collection (closure
    /// violation). Holds `(simplex, missing_face)`.
    MissingFace(Simplex, Simplex),
    /// Two simplices intersect in a vertex set that is not itself a member
    /// simplex — the situation of the paper's Figure 3, where two triangles
    /// overlap in a segment `{b, f}` that is not a 1-simplex of either.
    NonSimplicialIntersection(Simplex, Simplex, Simplex),
    /// The empty simplex was supplied as a member; complexes store only
    /// simplices of dimension ≥ 0.
    EmptySimplex,
}

impl fmt::Display for ComplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexError::MissingFace(s, face) => {
                write!(
                    f,
                    "complex not closed: {s} is present but its face {face} is not"
                )
            }
            ComplexError::NonSimplicialIntersection(a, b, i) => write!(
                f,
                "simplices {a} and {b} intersect in {i}, which is not a member simplex"
            ),
            ComplexError::EmptySimplex => write!(f, "the empty simplex cannot be a member"),
        }
    }
}

impl std::error::Error for ComplexError {}

/// An abstract simplicial complex: a downward-closed family of simplices.
///
/// Internally simplices are grouped by dimension, each group sorted, so that
/// every simplex has a stable `(dim, index)` coordinate used by chains and
/// boundary operators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimplicialComplex {
    /// `by_dim[k]` holds all k-simplices, sorted ascending.
    by_dim: Vec<Vec<Simplex>>,
}

impl SimplicialComplex {
    /// The empty complex (no simplices at all).
    pub fn empty() -> Self {
        SimplicialComplex { by_dim: Vec::new() }
    }

    /// Builds the downward closure of a set of maximal simplices.
    ///
    /// All faces of every given simplex are inserted automatically, so the
    /// result always satisfies the closure axiom. Returns an error only if
    /// the empty simplex is supplied.
    pub fn from_maximal_simplices<I>(maximal: I) -> Result<Self, ComplexError>
    where
        I: IntoIterator<Item = Simplex>,
    {
        let mut all: BTreeSet<Simplex> = BTreeSet::new();
        for s in maximal {
            if s.is_empty() {
                return Err(ComplexError::EmptySimplex);
            }
            for f in s.proper_faces() {
                all.insert(f);
            }
            all.insert(s);
        }
        Ok(Self::from_closed_set(all))
    }

    /// Builds from an explicit, supposedly already-closed set of simplices,
    /// verifying both complex axioms:
    ///
    /// 1. every face of a member is a member (closure);
    /// 2. the intersection of any two members is a member (which, given
    ///    closure, is automatic for genuine vertex-set simplices — but we
    ///    check it anyway because it is the property the paper's Figure 3
    ///    illustrates failing for geometric polyhedra).
    pub fn from_simplices_checked<I>(simplices: I) -> Result<Self, ComplexError>
    where
        I: IntoIterator<Item = Simplex>,
    {
        let set: BTreeSet<Simplex> = simplices.into_iter().collect();
        if set.iter().any(|s| s.is_empty()) {
            return Err(ComplexError::EmptySimplex);
        }
        for s in &set {
            for f in s.proper_faces() {
                if !set.contains(&f) {
                    return Err(ComplexError::MissingFace(s.clone(), f));
                }
            }
        }
        // Pairwise intersections (restricted to maximal members to keep the
        // check quadratic in the number of maximal simplices).
        let maximal: Vec<&Simplex> = set
            .iter()
            .filter(|s| !set.iter().any(|t| t != *s && t.has_face(s)))
            .collect();
        for (i, a) in maximal.iter().enumerate() {
            for b in &maximal[i + 1..] {
                let inter = a.intersection(b);
                if !inter.is_empty() && !set.contains(&inter) {
                    return Err(ComplexError::NonSimplicialIntersection(
                        (*a).clone(),
                        (*b).clone(),
                        inter,
                    ));
                }
            }
        }
        Ok(Self::from_closed_set(set))
    }

    fn from_closed_set(set: BTreeSet<Simplex>) -> Self {
        let mut by_dim: BTreeMap<usize, Vec<Simplex>> = BTreeMap::new();
        for s in set {
            by_dim.entry(s.dim() as usize).or_default().push(s);
        }
        let max_dim = by_dim.keys().next_back().copied();
        let mut v: Vec<Vec<Simplex>> = match max_dim {
            None => Vec::new(),
            Some(d) => vec![Vec::new(); d + 1],
        };
        for (d, mut group) in by_dim {
            group.sort();
            v[d] = group;
        }
        SimplicialComplex { by_dim: v }
    }

    /// Dimension of the complex: the largest dimension of any member, or
    /// `None` for the empty complex. (`dim K = max dim σ` per §III-A.)
    pub fn dim(&self) -> Option<usize> {
        if self.by_dim.is_empty() {
            None
        } else {
            Some(self.by_dim.len() - 1)
        }
    }

    /// All k-simplices, sorted. Empty slice when the complex has none.
    pub fn simplices(&self, k: usize) -> &[Simplex] {
        self.by_dim.get(k).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of k-simplices (`n_k`).
    pub fn count(&self, k: usize) -> usize {
        self.simplices(k).len()
    }

    /// Total number of simplices across all dimensions.
    pub fn total_count(&self) -> usize {
        self.by_dim.iter().map(Vec::len).sum()
    }

    /// Index of a simplex within its dimension group, if present.
    pub fn index_of(&self, s: &Simplex) -> Option<usize> {
        if s.is_empty() {
            return None;
        }
        let group = self.by_dim.get(s.dim() as usize)?;
        group.binary_search(s).ok()
    }

    /// Membership test.
    pub fn contains(&self, s: &Simplex) -> bool {
        self.index_of(s).is_some()
    }

    /// Number of connected components of the 1-skeleton (vertices + edges),
    /// computed by union-find. Isolated vertices count as components.
    pub fn connected_components(&self) -> usize {
        let verts = self.simplices(0);
        if verts.is_empty() {
            return 0;
        }
        let vid: BTreeMap<u32, usize> = verts
            .iter()
            .enumerate()
            .map(|(i, s)| (s.vertices()[0], i))
            .collect();
        let mut parent: Vec<usize> = (0..verts.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for e in self.simplices(1) {
            let (a, b) = (vid[&e.vertices()[0]], vid[&e.vertices()[1]]);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut roots = BTreeSet::new();
        for i in 0..verts.len() {
            let r = find(&mut parent, i);
            roots.insert(r);
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hollow_triangle() -> SimplicialComplex {
        SimplicialComplex::from_maximal_simplices([
            Simplex::edge(0, 1),
            Simplex::edge(1, 2),
            Simplex::edge(0, 2),
        ])
        .unwrap()
    }

    #[test]
    fn closure_generates_faces() {
        let c = SimplicialComplex::from_maximal_simplices([Simplex::new([0, 1, 2])]).unwrap();
        assert_eq!(c.dim(), Some(2));
        assert_eq!(c.count(0), 3);
        assert_eq!(c.count(1), 3);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.total_count(), 7);
    }

    #[test]
    fn empty_complex() {
        let c = SimplicialComplex::empty();
        assert_eq!(c.dim(), None);
        assert_eq!(c.total_count(), 0);
        assert_eq!(c.connected_components(), 0);
    }

    #[test]
    fn rejects_empty_simplex() {
        assert_eq!(
            SimplicialComplex::from_maximal_simplices([Simplex::empty()]),
            Err(ComplexError::EmptySimplex)
        );
    }

    #[test]
    fn checked_detects_missing_face() {
        // Edge {0,1} without vertex {1}.
        let err =
            SimplicialComplex::from_simplices_checked([Simplex::edge(0, 1), Simplex::vertex(0)])
                .unwrap_err();
        assert!(matches!(err, ComplexError::MissingFace(_, _)));
    }

    #[test]
    fn figure3_polyhedron_is_not_a_complex() {
        // The paper's Figure 3: two triangles {a,b,c} and {d,e,f} whose
        // geometric overlap is the segment {b,f}. Abstractly we model the
        // offending overlap by presenting the face sets of both triangles
        // *plus* the overlap edge's endpoints but not the edge itself while
        // claiming the edge {b,f} is shared: the direct abstract translation
        // is a family where triangle faces are present but the intersection
        // simplex is missing. Encode vertices a..f as 0..5 and inject an
        // extra maximal simplex {1,5} intersection witness by hand.
        let mut members: Vec<Simplex> = Vec::new();
        for tri in [[0u32, 1, 2], [3, 4, 5]] {
            let t = Simplex::new(tri);
            members.push(t.clone());
            members.extend(t.proper_faces());
        }
        // A shared "segment" {1,5} exists geometrically; in a valid complex
        // it would have to be a member. Adding a 2-simplex {1, 5, 6} whose
        // edge {1,5} is deliberately omitted models the closure failure.
        members.push(Simplex::new([1, 5, 6]));
        members.push(Simplex::vertex(6));
        members.push(Simplex::edge(1, 6));
        members.push(Simplex::edge(5, 6));
        let err = SimplicialComplex::from_simplices_checked(members).unwrap_err();
        assert!(matches!(err, ComplexError::MissingFace(_, _)));
    }

    #[test]
    fn index_of_is_stable_and_sorted() {
        let c = hollow_triangle();
        let edges = c.simplices(1);
        assert_eq!(edges.len(), 3);
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(c.index_of(e), Some(i));
        }
        assert_eq!(c.index_of(&Simplex::edge(5, 6)), None);
    }

    #[test]
    fn connected_components_counts() {
        let c = hollow_triangle();
        assert_eq!(c.connected_components(), 1);
        let two =
            SimplicialComplex::from_maximal_simplices([Simplex::edge(0, 1), Simplex::edge(2, 3)])
                .unwrap();
        assert_eq!(two.connected_components(), 2);
        let with_isolated =
            SimplicialComplex::from_maximal_simplices([Simplex::edge(0, 1), Simplex::vertex(9)])
                .unwrap();
        assert_eq!(with_isolated.connected_components(), 2);
    }

    #[test]
    fn contains_checks_membership() {
        let c = hollow_triangle();
        assert!(c.contains(&Simplex::vertex(1)));
        assert!(c.contains(&Simplex::edge(0, 2)));
        assert!(!c.contains(&Simplex::new([0, 1, 2]))); // hollow: no 2-face
    }

    #[test]
    fn checked_accepts_valid_complex() {
        let mut members = vec![Simplex::new([0, 1, 2])];
        members.extend(Simplex::new([0, 1, 2]).proper_faces());
        let c = SimplicialComplex::from_simplices_checked(members).unwrap();
        assert_eq!(c.dim(), Some(2));
    }
}
