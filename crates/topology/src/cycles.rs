//! Fundamental cycle bases of 1-dimensional complexes (circuit graphs).
//!
//! For a connected graph with spanning tree `T`, every non-tree edge `e`
//! closes exactly one cycle — the *fundamental cycle* of `e`. The set of
//! fundamental cycles is a basis of the cycle space `D¹`, of size
//! `|E| − |V| + c` (Maxwell's cyclomatic number, the paper's §II-A). These
//! are the independent "holes" over which Parma parallelizes Kirchhoff's
//! voltage law: each fundamental cycle yields one independent L2 equation.

use crate::chain::Chain;
use crate::complex::SimplicialComplex;
use crate::simplex::Simplex;
use std::collections::BTreeMap;

/// One fundamental cycle: a closing edge plus the tree path between its
/// endpoints.
#[derive(Clone, Debug)]
pub struct FundamentalCycle {
    /// The non-tree edge that generates the cycle.
    pub chord: Simplex,
    /// The cycle as a mod-2 chain of edges (chord + tree path).
    pub chain: Chain,
    /// The cycle as a closed vertex walk `v₀, v₁, …, v₀` (first = last).
    pub walk: Vec<u32>,
}

/// A basis of the cycle space of a 1-complex.
#[derive(Clone, Debug)]
pub struct CycleBasis {
    /// The fundamental cycles, one per non-tree edge, in edge order.
    pub cycles: Vec<FundamentalCycle>,
    /// Edges of the chosen spanning forest.
    pub tree_edges: Vec<Simplex>,
    /// Number of connected components found.
    pub components: usize,
}

impl CycleBasis {
    /// Rank of the cycle space — must equal β₁ (tested against homology).
    pub fn rank(&self) -> usize {
        self.cycles.len()
    }
}

/// Computes a fundamental cycle basis of the 1-skeleton of a complex via
/// breadth-first spanning forests.
///
/// Panics if the complex has dimension > 1 (call it on the 1-skeleton: the
/// cycle space of a graph ignores higher simplices, and the MEA complexes of
/// this paper are 1-dimensional by Proposition 1).
pub fn fundamental_cycles(complex: &SimplicialComplex) -> CycleBasis {
    assert!(
        complex.dim().is_none_or(|d| d <= 1),
        "fundamental_cycles expects a 1-dimensional complex (a circuit graph)"
    );
    let verts = complex.simplices(0);
    let edges = complex.simplices(1);
    let vid: BTreeMap<u32, usize> = verts
        .iter()
        .enumerate()
        .map(|(i, s)| (s.vertices()[0], i))
        .collect();
    // Adjacency: vertex index -> (neighbor vertex index, edge index).
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); verts.len()];
    for (ei, e) in edges.iter().enumerate() {
        let (a, b) = (vid[&e.vertices()[0]], vid[&e.vertices()[1]]);
        adj[a].push((b, ei));
        adj[b].push((a, ei));
    }
    // BFS forest: parent edge for each vertex.
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; verts.len()]; // (parent vertex, via edge)
    let mut depth: Vec<usize> = vec![0; verts.len()];
    let mut visited = vec![false; verts.len()];
    let mut tree_edge_flags = vec![false; edges.len()];
    let mut components = 0usize;
    for root in 0..verts.len() {
        if visited[root] {
            continue;
        }
        components += 1;
        visited[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &(v, ei) in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = Some((u, ei));
                    depth[v] = depth[u] + 1;
                    tree_edge_flags[ei] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    let tree_edges: Vec<Simplex> = edges
        .iter()
        .zip(&tree_edge_flags)
        .filter(|(_, &t)| t)
        .map(|(e, _)| e.clone())
        .collect();
    // Each non-tree edge closes one cycle: walk both endpoints up to their
    // lowest common ancestor.
    let mut cycles = Vec::new();
    for (ei, e) in edges.iter().enumerate() {
        if tree_edge_flags[ei] {
            continue;
        }
        let (mut a, mut b) = (vid[&e.vertices()[0]], vid[&e.vertices()[1]]);
        let mut chain = Chain::zero(complex, 1);
        chain.toggle(ei);
        let mut left: Vec<usize> = vec![a];
        let mut right: Vec<usize> = vec![b];
        while a != b {
            if depth[a] >= depth[b] {
                let (p, pe) = parent[a].expect("non-root must have a parent");
                chain.toggle(pe);
                a = p;
                left.push(a);
            } else {
                let (p, pe) = parent[b].expect("non-root must have a parent");
                chain.toggle(pe);
                b = p;
                right.push(b);
            }
        }
        // Assemble the closed walk: left path down to the LCA, then right
        // path back up, then the chord closes it.
        let mut walk: Vec<u32> = left.iter().map(|&i| verts[i].vertices()[0]).collect();
        for &i in right.iter().rev().skip(1) {
            walk.push(verts[i].vertices()[0]);
        }
        walk.push(walk[0]);
        cycles.push(FundamentalCycle {
            chord: e.clone(),
            chain,
            walk,
        });
    }
    CycleBasis {
        cycles,
        tree_edges,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::BoundaryOperator;
    use crate::homology::betti_numbers;
    use proptest::prelude::*;

    fn graph(edges: &[(u32, u32)]) -> SimplicialComplex {
        SimplicialComplex::from_maximal_simplices(edges.iter().map(|&(a, b)| Simplex::edge(a, b)))
            .unwrap()
    }

    #[test]
    fn tree_has_no_cycles() {
        let c = graph(&[(0, 1), (1, 2), (1, 3)]);
        let basis = fundamental_cycles(&c);
        assert_eq!(basis.rank(), 0);
        assert_eq!(basis.tree_edges.len(), 3);
        assert_eq!(basis.components, 1);
    }

    #[test]
    fn square_has_one_cycle_of_length_four() {
        let c = graph(&[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let basis = fundamental_cycles(&c);
        assert_eq!(basis.rank(), 1);
        assert_eq!(basis.cycles[0].chain.weight(), 4);
        // Walk visits 4 distinct vertices and closes.
        let walk = &basis.cycles[0].walk;
        assert_eq!(walk.first(), walk.last());
        assert_eq!(walk.len(), 5);
    }

    #[test]
    fn k4_has_three_independent_cycles() {
        let c = graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let basis = fundamental_cycles(&c);
        assert_eq!(basis.rank(), 3);
        // Each fundamental cycle is an actual cycle of the boundary map.
        let d1 = BoundaryOperator::new(&c, 1);
        for fc in &basis.cycles {
            assert!(
                d1.is_cycle(&fc.chain),
                "fundamental cycle must be a ∂-cycle"
            );
        }
    }

    #[test]
    fn rank_matches_betti_one() {
        let c = graph(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (5, 6)]);
        let basis = fundamental_cycles(&c);
        let betti = betti_numbers(&c);
        assert_eq!(basis.rank(), betti[1]);
        assert_eq!(basis.components, betti[0]);
    }

    #[test]
    fn cycles_are_linearly_independent() {
        let c = graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let basis = fundamental_cycles(&c);
        // XOR of all three cycles must be nonzero (they are independent);
        // stronger: every nonempty subset XOR is nonzero because each cycle
        // contains a chord no other cycle touches.
        for mask in 1u32..(1 << basis.rank()) {
            let mut acc = Chain::zero(&c, 1);
            for (i, fc) in basis.cycles.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    acc.add_assign(&fc.chain);
                }
            }
            assert!(!acc.is_zero(), "subset {mask:b} summed to zero");
        }
    }

    #[test]
    fn walk_is_consistent_with_chain() {
        let c = graph(&[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let basis = fundamental_cycles(&c);
        for fc in &basis.cycles {
            // Every consecutive pair in the walk must be an edge of the chain.
            let edge_set: Vec<Simplex> = fc.chain.simplices(&c).into_iter().cloned().collect();
            for w in fc.walk.windows(2) {
                assert!(edge_set.contains(&Simplex::edge(w[0], w[1])));
            }
            // Walk length (edges) equals chain weight.
            assert_eq!(fc.walk.len() - 1, fc.chain.weight());
        }
    }

    #[test]
    fn disconnected_graph_counts_components() {
        let c = graph(&[(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)]);
        let basis = fundamental_cycles(&c);
        assert_eq!(basis.components, 2);
        assert_eq!(basis.rank(), 2);
    }

    proptest! {
        /// On random graphs the fundamental-cycle rank equals |E| − |V| + c.
        #[test]
        fn prop_maxwell_cyclomatic(
            n in 2u32..10,
            raw_edges in proptest::collection::vec((0u32..10, 0u32..10), 1..25),
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| (a % n, b % n))
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            prop_assume!(!edges.is_empty());
            let c = graph(&edges);
            let basis = fundamental_cycles(&c);
            let v = c.count(0);
            let e = c.count(1);
            prop_assert_eq!(basis.rank(), e + basis.components - v);
            prop_assert_eq!(basis.tree_edges.len(), v - basis.components);
            let d1 = BoundaryOperator::new(&c, 1);
            for fc in &basis.cycles {
                prop_assert!(d1.is_cycle(&fc.chain));
            }
        }
    }
}
