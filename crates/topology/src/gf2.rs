//! Dense linear algebra over GF(2), the coefficient field of the paper's
//! mod-2 chain groups.
//!
//! Rows are stored as packed `u64` blocks, so elimination steps are
//! word-parallel XORs. Rank computation over GF(2) is the workhorse behind
//! Betti numbers: `βₖ = (#k-simplices − rank ∂ₖ) − rank ∂ₖ₊₁`.

/// A dense matrix over the two-element field.
///
/// Bit `(r, c)` is stored in word `c / 64` of row `r`. The matrix owns its
/// dimensions separately from storage so zero-row/zero-column matrices work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GF2Matrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl GF2Matrix {
    /// The all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        GF2Matrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = GF2Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds from an iterator of `(row, col)` positions holding 1 bits.
    /// Duplicate positions toggle (mod-2 semantics).
    pub fn from_ones<I: IntoIterator<Item = (usize, usize)>>(
        rows: usize,
        cols: usize,
        ones: I,
    ) -> Self {
        let mut m = GF2Matrix::zeros(rows, cols);
        for (r, c) in ones {
            m.flip(r, c);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let w = self.data[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Writes entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r * self.words_per_row + c / 64;
        let mask = 1u64 << (c % 64);
        if v {
            self.data[idx] |= mask;
        } else {
            self.data[idx] &= !mask;
        }
    }

    /// Toggles entry `(r, c)` (mod-2 addition of 1).
    pub fn flip(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.words_per_row + c / 64] ^= 1u64 << (c % 64);
    }

    /// XORs row `src` into row `dst` (`dst += src` over GF(2)).
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        debug_assert!(src != dst);
        let w = self.words_per_row;
        let (a, b) = (src * w, dst * w);
        // Split borrows via raw slices over disjoint ranges.
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b);
            for k in 0..w {
                hi[k] ^= lo[a + k];
            }
        } else {
            let (lo, hi) = self.data.split_at_mut(a);
            for k in 0..w {
                lo[b + k] ^= hi[k];
            }
        }
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let w = self.words_per_row;
        for k in 0..w {
            self.data.swap(r1 * w + k, r2 * w + k);
        }
    }

    /// Whether row `r` is entirely zero.
    pub fn row_is_zero(&self, r: usize) -> bool {
        let w = self.words_per_row;
        self.data[r * w..(r + 1) * w].iter().all(|&x| x == 0)
    }

    /// Matrix product over GF(2). Panics on shape mismatch.
    pub fn mul(&self, rhs: &GF2Matrix) -> GF2Matrix {
        assert_eq!(self.cols, rhs.rows, "GF2Matrix::mul shape mismatch");
        let mut out = GF2Matrix::zeros(self.rows, rhs.cols);
        let w = rhs.words_per_row;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    // out.row(r) ^= rhs.row(c)
                    let (orow, rrow) = (r * out.words_per_row, c * w);
                    for k in 0..w {
                        out.data[orow + k] ^= rhs.data[rrow + k];
                    }
                }
            }
        }
        out
    }

    /// Applies the matrix to a column vector given as a bitset slice of
    /// `cols` entries packed in `u64` words. Returns the packed result.
    pub fn mul_vec(&self, v: &[u64]) -> Vec<u64> {
        assert!(v.len() >= self.words_per_row.max(1) || self.cols == 0);
        let out_words = self.rows.div_ceil(64);
        let mut out = vec![0u64; out_words.max(1)];
        for r in 0..self.rows {
            let mut acc = 0u64;
            let base = r * self.words_per_row;
            for (dw, vw) in self.data[base..base + self.words_per_row].iter().zip(v) {
                acc ^= dw & vw;
            }
            if acc.count_ones() % 2 == 1 {
                out[r / 64] ^= 1u64 << (r % 64);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> GF2Matrix {
        let mut out = GF2Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let base = r * self.words_per_row;
            for k in 0..self.words_per_row {
                let mut word = self.data[base + k];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    out.set(k * 64 + bit, r, true);
                    word &= word - 1;
                }
            }
        }
        out
    }

    /// Rank via Gaussian elimination on a working copy.
    pub fn rank(&self) -> usize {
        self.clone().eliminate().0
    }

    /// In-place forward elimination to row-echelon form.
    ///
    /// Returns `(rank, pivot_cols)`; pivot columns are in increasing order.
    pub fn eliminate(&mut self) -> (usize, Vec<usize>) {
        let mut pivots = Vec::new();
        let mut row = 0usize;
        for col in 0..self.cols {
            if row == self.rows {
                break;
            }
            // Find a pivot at or below `row`.
            let mut pivot = None;
            for r in row..self.rows {
                if self.get(r, col) {
                    pivot = Some(r);
                    break;
                }
            }
            let Some(p) = pivot else { continue };
            self.swap_rows(row, p);
            // Clear this column everywhere else (Gauss-Jordan: also above,
            // which gives reduced echelon form and simpler kernel extraction).
            for r in 0..self.rows {
                if r != row && self.get(r, col) {
                    self.xor_row_into(row, r);
                }
            }
            pivots.push(col);
            row += 1;
        }
        (pivots.len(), pivots)
    }

    /// A basis of the kernel (null space), one packed bit-vector of length
    /// `cols` per basis element. `dim ker = cols − rank`.
    pub fn kernel_basis(&self) -> Vec<Vec<u64>> {
        let mut work = self.clone();
        let (_rank, pivots) = work.eliminate();
        let is_pivot = {
            let mut v = vec![false; self.cols];
            for &c in &pivots {
                v[c] = true;
            }
            v
        };
        let words = self.cols.div_ceil(64).max(1);
        let mut basis = Vec::new();
        for free_col in 0..self.cols {
            if is_pivot[free_col] {
                continue;
            }
            let mut vec = vec![0u64; words];
            vec[free_col / 64] |= 1u64 << (free_col % 64);
            // For each pivot row, if that row has a 1 in free_col, then the
            // pivot variable equals the free variable (mod 2).
            for (prow, &pcol) in pivots.iter().enumerate() {
                if work.get(prow, free_col) {
                    vec[pcol / 64] |= 1u64 << (pcol % 64);
                }
            }
            basis.push(vec);
        }
        basis
    }

    /// Solves `A x = b` over GF(2) if consistent. `b` is a packed bit-vector
    /// of `rows` entries; the solution (if any) is a packed bit-vector of
    /// `cols` entries. Returns `None` when the system is inconsistent.
    pub fn solve(&self, b: &[u64]) -> Option<Vec<u64>> {
        // Build the augmented matrix [A | b].
        let mut aug = GF2Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for k in 0..self.words_per_row {
                aug.data[r * aug.words_per_row + k] = self.data[r * self.words_per_row + k];
            }
            // Mask stray bits beyond self.cols in the last copied word.
            if !self.cols.is_multiple_of(64) && self.words_per_row > 0 {
                let lastw = r * aug.words_per_row + self.words_per_row - 1;
                aug.data[lastw] &= (1u64 << (self.cols % 64)) - 1;
            }
            if (b[r / 64] >> (r % 64)) & 1 == 1 {
                aug.set(r, self.cols, true);
            }
        }
        let (_, pivots) = aug.eliminate();
        // Inconsistent iff the augmentation column is a pivot.
        if pivots.contains(&self.cols) {
            return None;
        }
        let words = self.cols.div_ceil(64).max(1);
        let mut x = vec![0u64; words];
        for (prow, &pcol) in pivots.iter().enumerate() {
            if aug.get(prow, self.cols) {
                x[pcol / 64] |= 1u64 << (pcol % 64);
            }
        }
        Some(x)
    }

    /// Number of 1 entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bit(v: &[u64], i: usize) -> bool {
        (v[i / 64] >> (i % 64)) & 1 == 1
    }

    #[test]
    fn identity_rank_is_full() {
        assert_eq!(GF2Matrix::identity(10).rank(), 10);
        assert_eq!(GF2Matrix::zeros(5, 7).rank(), 0);
    }

    #[test]
    fn get_set_flip_roundtrip() {
        let mut m = GF2Matrix::zeros(3, 130); // spans multiple words
        m.set(2, 129, true);
        assert!(m.get(2, 129));
        m.flip(2, 129);
        assert!(!m.get(2, 129));
        m.flip(0, 63);
        m.flip(0, 64);
        assert!(m.get(0, 63) && m.get(0, 64));
    }

    #[test]
    fn duplicate_ones_cancel() {
        let m = GF2Matrix::from_ones(2, 2, [(0, 0), (0, 0), (1, 1)]);
        assert!(!m.get(0, 0));
        assert!(m.get(1, 1));
    }

    #[test]
    fn known_rank_example() {
        // Rows: [1 1 0], [0 1 1], [1 0 1] — third is sum of first two.
        let m = GF2Matrix::from_ones(3, 3, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2)]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn mul_with_identity_is_noop() {
        let m = GF2Matrix::from_ones(3, 4, [(0, 1), (1, 3), (2, 0), (2, 2)]);
        assert_eq!(m.mul(&GF2Matrix::identity(4)), m);
        assert_eq!(GF2Matrix::identity(3).mul(&m), m);
    }

    #[test]
    fn transpose_involutive() {
        let m = GF2Matrix::from_ones(5, 70, [(0, 69), (4, 0), (2, 33), (3, 64)]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rank(), m.rank());
    }

    #[test]
    fn kernel_vectors_are_annihilated() {
        let m = GF2Matrix::from_ones(3, 5, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)]);
        let basis = m.kernel_basis();
        assert_eq!(basis.len(), 5 - m.rank());
        for v in &basis {
            let out = m.mul_vec(v);
            assert!(out.iter().all(|&w| w == 0), "kernel vector not annihilated");
        }
    }

    #[test]
    fn solve_consistent_system() {
        // x0 + x1 = 1, x1 = 1 => x0 = 0, x1 = 1
        let m = GF2Matrix::from_ones(2, 2, [(0, 0), (0, 1), (1, 1)]);
        let b = vec![0b11u64];
        let x = m.solve(&b).expect("consistent");
        assert!(!bit(&x, 0));
        assert!(bit(&x, 1));
    }

    #[test]
    fn solve_detects_inconsistency() {
        // x0 = 1 and x0 = 0 simultaneously.
        let m = GF2Matrix::from_ones(2, 1, [(0, 0), (1, 0)]);
        let b = vec![0b01u64];
        assert!(m.solve(&b).is_none());
    }

    #[test]
    fn solve_wide_matrix() {
        let m = GF2Matrix::from_ones(2, 100, [(0, 99), (1, 64)]);
        let b = vec![0b11u64];
        let x = m.solve(&b).unwrap();
        assert!(bit(&x, 99) && bit(&x, 64));
    }

    #[test]
    fn eliminate_reports_pivot_columns() {
        let mut m = GF2Matrix::from_ones(3, 4, [(0, 1), (1, 1), (1, 3), (2, 3)]);
        let (rank, pivots) = m.eliminate();
        assert_eq!(rank, 2);
        assert_eq!(pivots, vec![1, 3]);
    }

    proptest! {
        #[test]
        fn prop_rank_bounds(rows in 0usize..20, cols in 0usize..20, seed in any::<u64>()) {
            let mut state = seed;
            let mut m = GF2Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 63 == 1 {
                        m.set(r, c, true);
                    }
                }
            }
            let rank = m.rank();
            prop_assert!(rank <= rows.min(cols));
            prop_assert_eq!(rank, m.transpose().rank());
            // rank-nullity
            prop_assert_eq!(m.kernel_basis().len(), cols - rank);
        }

        #[test]
        fn prop_solve_constructed_rhs(rows in 1usize..15, cols in 1usize..15, seed in any::<u64>()) {
            // Build A and x, then solve A x = b; a solution must exist and
            // must reproduce b (it need not equal x when A is singular).
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 63 == 1
            };
            let mut a = GF2Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if next() { a.set(r, c, true); }
                }
            }
            let words = cols.div_ceil(64);
            let mut x = vec![0u64; words];
            for c in 0..cols {
                if next() { x[c / 64] |= 1 << (c % 64); }
            }
            let b = a.mul_vec(&x);
            let sol = a.solve(&b).expect("constructed system must be consistent");
            let b2 = a.mul_vec(&sol);
            prop_assert_eq!(b, b2);
        }
    }
}
