//! Homology groups `Hᵏ = Dᵏ/Bᵏ` and Betti numbers over GF(2).
//!
//! Per §III-B of the paper, `Dᵏ = ker ∂ₖ` (cycle group), `Bᵏ = im ∂ₖ₊₁`
//! (boundary group), and by Lagrange's theorem on the mod-2 groups
//! `βₖ = rank Hᵏ = rank Dᵏ − rank Bᵏ = (n_k − rank ∂ₖ) − rank ∂ₖ₊₁`.
//!
//! `β₁` of a circuit graph is Maxwell's cyclomatic number `|E| − |V| + c`
//! (with `c` connected components): the number of independent Kirchhoff
//! voltage loops, and hence the degree of intrinsic parallelism that Parma
//! exploits.

use crate::boundary::BoundaryOperator;
use crate::chain::Chain;
use crate::complex::SimplicialComplex;

/// Summary of one homology group `Hᵏ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HomologyGroup {
    /// Dimension k.
    pub k: usize,
    /// rank Dᵏ = dim ker ∂ₖ.
    pub cycle_rank: usize,
    /// rank Bᵏ = dim im ∂ₖ₊₁.
    pub boundary_rank: usize,
    /// Betti number βₖ = cycle_rank − boundary_rank.
    pub betti: usize,
    /// Representative cycles for a set of generators of Hᵏ: a subset of a
    /// kernel basis of ∂ₖ whose classes are independent modulo Bᵏ.
    pub generators: Vec<Chain>,
}

impl HomologyGroup {
    /// `log₂ |Hᵏ|` — identical to [`Self::betti`] since the group is an
    /// elementary abelian 2-group of order `2^betti` (the paper's
    /// `βₖ = log |Hᵏ|`).
    pub fn log2_order(&self) -> usize {
        self.betti
    }
}

/// Computes all homology groups `H⁰..H^dim` of a complex, with generator
/// representatives.
pub fn homology(complex: &SimplicialComplex) -> Vec<HomologyGroup> {
    let Some(dim) = complex.dim() else {
        return Vec::new();
    };
    let ops: Vec<BoundaryOperator> = (0..=dim + 1)
        .map(|k| BoundaryOperator::new(complex, k))
        .collect();
    let mut out = Vec::with_capacity(dim + 1);
    for k in 0..=dim {
        let cycle_rank = ops[k].nullity();
        let boundary_rank = ops[k + 1].rank();
        let betti = cycle_rank - boundary_rank;
        let generators = homology_generators(complex, &ops[k], &ops[k + 1], betti);
        out.push(HomologyGroup {
            k,
            cycle_rank,
            boundary_rank,
            betti,
            generators,
        });
    }
    out
}

/// Just the Betti numbers `β₀..β_dim` (cheaper: no generator extraction).
pub fn betti_numbers(complex: &SimplicialComplex) -> Vec<usize> {
    let Some(dim) = complex.dim() else {
        return Vec::new();
    };
    let ranks: Vec<usize> = (0..=dim + 1)
        .map(|k| BoundaryOperator::new(complex, k).rank())
        .collect();
    (0..=dim)
        .map(|k| {
            let nullity = complex.count(k) - ranks[k];
            nullity - ranks[k + 1]
        })
        .collect()
}

/// Euler characteristic `χ = Σ (−1)ᵏ n_k`. The Euler–Poincaré theorem says
/// this also equals `Σ (−1)ᵏ βₖ` — used as a property-test invariant.
pub fn euler_characteristic(complex: &SimplicialComplex) -> isize {
    let Some(dim) = complex.dim() else { return 0 };
    (0..=dim)
        .map(|k| {
            let n = complex.count(k) as isize;
            if k % 2 == 0 {
                n
            } else {
                -n
            }
        })
        .sum()
}

/// Extracts `betti` kernel-basis elements of `∂ₖ` that are independent
/// modulo `im ∂ₖ₊₁`, greedily over GF(2).
fn homology_generators(
    complex: &SimplicialComplex,
    dk: &BoundaryOperator,
    dk1: &BoundaryOperator,
    betti: usize,
) -> Vec<Chain> {
    if betti == 0 {
        return Vec::new();
    }
    let kernel = dk.cycle_basis(complex);
    let n_k = complex.count(dk.k());
    // Span = columns of ∂ₖ₊₁ plus chosen generators; test independence by
    // incremental Gaussian elimination over vectors of length n_k.
    let words = n_k.div_ceil(64).max(1);
    // Row-reduce basis of the current span, stored as packed vectors with a
    // pivot position each.
    let mut span: Vec<(usize, Vec<u64>)> = Vec::new(); // (pivot, vector)
    let reduce = |mut v: Vec<u64>, span: &Vec<(usize, Vec<u64>)>| -> Option<(usize, Vec<u64>)> {
        for (pivot, basis_vec) in span {
            if (v[pivot / 64] >> (pivot % 64)) & 1 == 1 {
                for (a, b) in v.iter_mut().zip(basis_vec) {
                    *a ^= b;
                }
            }
        }
        // Find the new pivot, if nonzero.
        for i in 0..n_k {
            if (v[i / 64] >> (i % 64)) & 1 == 1 {
                return Some((i, v));
            }
        }
        None
    };
    // Seed the span with the boundary group's generators (the columns of
    // ∂ₖ₊₁, i.e. boundaries of (k+1)-simplices).
    let m = dk1.matrix();
    for col in 0..m.cols() {
        let mut v = vec![0u64; words];
        for row in 0..m.rows() {
            if m.get(row, col) {
                v[row / 64] ^= 1 << (row % 64);
            }
        }
        if let Some(entry) = reduce(v, &span) {
            span.push(entry);
        }
    }
    let mut gens = Vec::with_capacity(betti);
    for cycle in kernel {
        if gens.len() == betti {
            break;
        }
        let v = cycle.bits().to_vec();
        if let Some(entry) = reduce(v, &span) {
            span.push(entry);
            gens.push(cycle);
        }
    }
    debug_assert_eq!(gens.len(), betti);
    gens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::Simplex;
    use proptest::prelude::*;

    fn complex_of(maximal: &[&[u32]]) -> SimplicialComplex {
        SimplicialComplex::from_maximal_simplices(
            maximal.iter().map(|vs| Simplex::new(vs.iter().copied())),
        )
        .unwrap()
    }

    #[test]
    fn point_has_trivial_homology() {
        let c = complex_of(&[&[0]]);
        assert_eq!(betti_numbers(&c), vec![1]);
        assert_eq!(euler_characteristic(&c), 1);
    }

    #[test]
    fn two_points_have_beta0_two() {
        let c = complex_of(&[&[0], &[1]]);
        assert_eq!(betti_numbers(&c), vec![2]);
    }

    #[test]
    fn hollow_triangle_is_a_circle() {
        let c = complex_of(&[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(betti_numbers(&c), vec![1, 1]);
        assert_eq!(euler_characteristic(&c), 0);
    }

    #[test]
    fn filled_triangle_is_contractible() {
        let c = complex_of(&[&[0, 1, 2]]);
        assert_eq!(betti_numbers(&c), vec![1, 0, 0]);
        assert_eq!(euler_characteristic(&c), 1);
    }

    #[test]
    fn sphere_tetrahedron_boundary() {
        // Boundary of a tetrahedron = triangulated 2-sphere: β = (1, 0, 1).
        let c = complex_of(&[&[0, 1, 2], &[0, 1, 3], &[0, 2, 3], &[1, 2, 3]]);
        assert_eq!(betti_numbers(&c), vec![1, 0, 1]);
        assert_eq!(euler_characteristic(&c), 2);
    }

    #[test]
    fn figure_eight_has_two_holes() {
        // Two hollow triangles sharing vertex 0.
        let c = complex_of(&[&[0, 1], &[1, 2], &[0, 2], &[0, 3], &[3, 4], &[0, 4]]);
        assert_eq!(betti_numbers(&c), vec![1, 2]);
    }

    #[test]
    fn torus_mod2_betti() {
        // Császár 7-vertex triangulation of the torus: triangles
        // {i, i+1, i+3} and {i, i+2, i+3} mod 7. β over GF(2) = (1, 2, 1).
        let tris: Vec<Simplex> = (0u32..7)
            .flat_map(|i| {
                [
                    Simplex::new([i, (i + 1) % 7, (i + 3) % 7]),
                    Simplex::new([i, (i + 2) % 7, (i + 3) % 7]),
                ]
            })
            .collect();
        let c = SimplicialComplex::from_maximal_simplices(tris).unwrap();
        assert_eq!(c.count(0), 7);
        assert_eq!(c.count(1), 21);
        assert_eq!(c.count(2), 14);
        assert_eq!(euler_characteristic(&c), 0);
        assert_eq!(betti_numbers(&c), vec![1, 2, 1]);
    }

    #[test]
    fn cyclomatic_number_of_graphs() {
        // For a connected graph β₁ = |E| − |V| + 1 (Maxwell).
        // K4 skeleton: 4 vertices, 6 edges → β₁ = 3.
        let c = complex_of(&[&[0, 1], &[0, 2], &[0, 3], &[1, 2], &[1, 3], &[2, 3]]);
        assert_eq!(betti_numbers(&c), vec![1, 3]);
    }

    #[test]
    fn generators_are_cycles_not_boundaries() {
        let c = complex_of(&[&[0, 1], &[1, 2], &[0, 2], &[0, 3], &[3, 4], &[0, 4]]);
        let h = homology(&c);
        assert_eq!(h[1].betti, 2);
        assert_eq!(h[1].generators.len(), 2);
        let d1 = BoundaryOperator::new(&c, 1);
        let d2 = BoundaryOperator::new(&c, 2);
        for g in &h[1].generators {
            assert!(d1.is_cycle(g));
            assert!(!d2.is_boundary(g));
        }
    }

    #[test]
    fn generator_classes_are_independent() {
        let c = complex_of(&[&[0, 1], &[1, 2], &[0, 2], &[0, 3], &[3, 4], &[0, 4]]);
        let h = homology(&c);
        let d2 = BoundaryOperator::new(&c, 2);
        // The sum of the two generators must also not be a boundary.
        let sum = h[1].generators[0].add(&h[1].generators[1]);
        assert!(!d2.is_boundary(&sum));
    }

    #[test]
    fn homology_of_empty_complex() {
        assert!(homology(&SimplicialComplex::empty()).is_empty());
        assert!(betti_numbers(&SimplicialComplex::empty()).is_empty());
        assert_eq!(euler_characteristic(&SimplicialComplex::empty()), 0);
    }

    #[test]
    fn beta0_equals_connected_components() {
        let c = complex_of(&[&[0, 1], &[2, 3], &[4]]);
        assert_eq!(betti_numbers(&c)[0], 3);
        assert_eq!(c.connected_components(), 3);
    }

    proptest! {
        /// Euler–Poincaré: χ = Σ(−1)ᵏ n_k = Σ(−1)ᵏ βₖ on random graphs.
        #[test]
        fn prop_euler_poincare_on_random_graphs(
            n_vertices in 1u32..12,
            edge_seeds in proptest::collection::vec((0u32..12, 0u32..12), 0..30),
        ) {
            let mut maximal: Vec<Simplex> =
                (0..n_vertices).map(Simplex::vertex).collect();
            for (a, b) in edge_seeds {
                let (a, b) = (a % n_vertices, b % n_vertices);
                if a != b {
                    maximal.push(Simplex::edge(a, b));
                }
            }
            let c = SimplicialComplex::from_maximal_simplices(maximal).unwrap();
            let betti = betti_numbers(&c);
            let chi_simplex = euler_characteristic(&c);
            let chi_betti: isize = betti
                .iter()
                .enumerate()
                .map(|(k, &b)| if k % 2 == 0 { b as isize } else { -(b as isize) })
                .sum();
            prop_assert_eq!(chi_simplex, chi_betti);
            // β₀ agrees with union-find components.
            prop_assert_eq!(betti[0], c.connected_components());
            // Graph case: β₁ = |E| − |V| + components.
            if c.dim() == Some(1) {
                let e = c.count(1) as isize;
                let v = c.count(0) as isize;
                prop_assert_eq!(betti[1] as isize, e - v + betti[0] as isize);
            }
        }

        /// ∂∂ = 0 on random 2-complexes.
        #[test]
        fn prop_del_del_zero(
            tri_seeds in proptest::collection::vec((0u32..8, 0u32..8, 0u32..8), 1..12),
        ) {
            let maximal: Vec<Simplex> = tri_seeds
                .into_iter()
                .map(|(a, b, c)| Simplex::new([a, b, c]))
                .filter(|s| s.dim() == 2)
                .collect();
            prop_assume!(!maximal.is_empty());
            let c = SimplicialComplex::from_maximal_simplices(maximal).unwrap();
            let d2 = BoundaryOperator::new(&c, 2);
            let d1 = BoundaryOperator::new(&c, 1);
            let composed = d1.matrix().mul(d2.matrix());
            prop_assert_eq!(composed.count_ones(), 0);
        }
    }
}
