//! k-dimensional lattice complexes — the paper's higher-dimensional MEA
//! generalization, checked rather than assumed.
//!
//! §IV-B claims a k-dimensional equidistant MEA offers `(n−1)^k`-fold
//! parallelism. For `k = 2` that is exactly the cycle rank of the device
//! complex (`β₁ = (n−1)²`, see [`crate::mea_complex`]). For `k ≥ 3` the
//! natural generalization — the nearest-neighbour lattice on `n^k` sensor
//! sites — has cycle rank
//!
//! ```text
//! β₁ = k·n^(k−1)·(n−1) − n^k + 1
//! ```
//!
//! which *exceeds* `(n−1)^k` (e.g. `n = 2, k = 3`: 5 independent cycles
//! vs. the paper's 1). `(n−1)^k` is instead the number of *unit cells* of
//! the lattice — a lower bound realized by the axis-aligned unit squares
//! of any one 2-D slice family. Both quantities are exposed and the
//! relationship is pinned by tests; the reproduction takes the paper's
//! claim as a (conservative) bound, not an identity.

use crate::complex::SimplicialComplex;
use crate::simplex::Simplex;

/// Builds the nearest-neighbour lattice complex on a `dims[0] × … ×
/// dims[k−1]` grid of sites: one vertex per site, one edge per
/// axis-adjacent pair. Panics on empty dims, zero extents or >2³² sites.
pub fn lattice_complex(dims: &[usize]) -> SimplicialComplex {
    assert!(!dims.is_empty(), "need at least one dimension");
    assert!(dims.iter().all(|&d| d > 0), "extents must be positive");
    let sites: usize = dims.iter().product();
    assert!(sites <= u32::MAX as usize, "lattice too large");
    let flat = |coord: &[usize]| -> u32 {
        let mut idx = 0usize;
        for (c, d) in coord.iter().zip(dims) {
            idx = idx * d + c;
        }
        idx as u32
    };
    let mut maximal: Vec<Simplex> = Vec::new();
    let mut coord = vec![0usize; dims.len()];
    loop {
        let here = flat(&coord);
        maximal.push(Simplex::vertex(here));
        for axis in 0..dims.len() {
            if coord[axis] + 1 < dims[axis] {
                coord[axis] += 1;
                let neighbor = flat(&coord);
                coord[axis] -= 1;
                maximal.push(Simplex::edge(here, neighbor));
            }
        }
        // Odometer increment.
        let mut axis = dims.len();
        loop {
            if axis == 0 {
                return SimplicialComplex::from_maximal_simplices(maximal)
                    .expect("lattice simplices are valid");
            }
            axis -= 1;
            coord[axis] += 1;
            if coord[axis] < dims[axis] {
                break;
            }
            coord[axis] = 0;
        }
    }
}

/// The exact cycle rank of the nearest-neighbour lattice:
/// `β₁ = Σ_axis (n_axis−1)·(sites/n_axis) − sites + 1`.
pub fn lattice_cycle_rank(dims: &[usize]) -> usize {
    let sites: usize = dims.iter().product();
    let edges: usize = dims.iter().map(|&d| (d - 1) * (sites / d)).sum();
    edges + 1 - sites
}

/// The paper's `(n−1)^k` parallelism figure: the number of unit cells.
pub fn paper_parallelism(dims: &[usize]) -> usize {
    dims.iter().map(|&d| d - 1).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homology::betti_numbers;

    #[test]
    fn one_dimensional_lattice_is_a_path() {
        let c = lattice_complex(&[5]);
        assert_eq!(c.count(0), 5);
        assert_eq!(c.count(1), 4);
        assert_eq!(betti_numbers(&c), vec![1, 0]);
        assert_eq!(lattice_cycle_rank(&[5]), 0);
    }

    #[test]
    fn two_dimensional_lattice_matches_the_mea_result() {
        for n in [2usize, 3, 5] {
            let c = lattice_complex(&[n, n]);
            let betti = betti_numbers(&c);
            assert_eq!(betti[1], (n - 1) * (n - 1), "k = 2 is exactly (n−1)²");
            assert_eq!(betti[1], lattice_cycle_rank(&[n, n]));
            assert_eq!(betti[1], paper_parallelism(&[n, n]));
        }
    }

    #[test]
    fn three_dimensional_lattice_exceeds_the_paper_figure() {
        for n in [2usize, 3] {
            let dims = [n, n, n];
            let c = lattice_complex(&dims);
            let betti = betti_numbers(&c);
            let exact = lattice_cycle_rank(&dims);
            assert_eq!(betti[1], exact, "homology must match the closed form");
            assert_eq!(exact, 3 * n * n * (n - 1) - n * n * n + 1);
            assert!(
                exact > paper_parallelism(&dims),
                "the true cycle rank ({exact}) exceeds (n−1)^k ({})",
                paper_parallelism(&dims)
            );
        }
    }

    #[test]
    fn known_small_cases() {
        // 2×2×2 cube frame: 8 vertices, 12 edges → β₁ = 5.
        assert_eq!(lattice_cycle_rank(&[2, 2, 2]), 5);
        assert_eq!(paper_parallelism(&[2, 2, 2]), 1);
        let c = lattice_complex(&[2, 2, 2]);
        assert_eq!(c.count(0), 8);
        assert_eq!(c.count(1), 12);
        assert_eq!(betti_numbers(&c), vec![1, 5]);
    }

    #[test]
    fn rectangular_lattices() {
        let dims = [2usize, 3, 4];
        let c = lattice_complex(&dims);
        assert_eq!(c.count(0), 24);
        let betti = betti_numbers(&c);
        assert_eq!(betti[0], 1);
        assert_eq!(betti[1], lattice_cycle_rank(&dims));
        assert_eq!(paper_parallelism(&dims), 6);
    }

    #[test]
    fn four_dimensional_lattice_still_computes() {
        let dims = [2usize, 2, 2, 2];
        let c = lattice_complex(&dims);
        assert_eq!(c.count(0), 16);
        assert_eq!(c.count(1), 32);
        assert_eq!(betti_numbers(&c), vec![1, lattice_cycle_rank(&dims)]);
        assert_eq!(lattice_cycle_rank(&dims), 17);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = lattice_complex(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        let _ = lattice_complex(&[]);
    }
}
