//! Algebraic-topology substrate for the Parma MEA-parametrization system.
//!
//! This crate implements the mathematical machinery of §III of the paper
//! *Topological Modeling and Parallelization of Multidimensional Data on
//! Microelectrode Arrays*:
//!
//! * [`Simplex`] — abstract simplices (finite vertex sets),
//! * [`SimplicialComplex`] — abstract simplicial complexes with downward
//!   closure and validation of the simplicial intersection property
//!   (the paper's Figure 3 shows a polyhedron that *fails* it),
//! * [`GF2Matrix`] — dense linear algebra over the two-element field, the
//!   coefficient field of the paper's mod-2 chain groups,
//! * [`Chain`] — elements of the chain group `Cᵏ` with the mod-2 "duplicate
//!   simplices cancel" operation,
//! * [`BoundaryOperator`] — the boundary maps `∂ₖ : Cᵏ → Cᵏ⁻¹`,
//! * [`HomologyGroup`] / [`betti_numbers`] — cycle groups `Dᵏ = ker ∂ₖ`,
//!   boundary groups `Bᵏ = im ∂ₖ₊₁`, the quotients `Hᵏ = Dᵏ/Bᵏ` and their
//!   ranks (Betti numbers),
//! * [`cycles`] — explicit fundamental-cycle bases of 1-dimensional complexes
//!   (circuit graphs) via spanning trees; these are the independent
//!   "holes" that Parma parallelizes over,
//! * [`mea_complex`] — the translation of an `n×n` MEA device into an
//!   abstract simplicial complex (Proposition 1 of the paper).
//!
//! # Quick example
//!
//! ```
//! use mea_topology::{SimplicialComplex, Simplex, betti_numbers};
//!
//! // The hollow triangle: three edges, no 2-face. One connected component,
//! // one independent 1-dimensional hole.
//! let complex = SimplicialComplex::from_maximal_simplices([
//!     Simplex::new([0, 1]),
//!     Simplex::new([1, 2]),
//!     Simplex::new([0, 2]),
//! ]).unwrap();
//! let betti = betti_numbers(&complex);
//! assert_eq!(betti, vec![1, 1]);
//! ```

mod boundary;
mod chain;
pub mod cochain;
mod complex;
pub mod cycles;
mod gf2;
mod homology;
pub mod lattice;
pub mod mea_complex;
pub mod partition;
pub mod persistence;
mod simplex;

pub use boundary::BoundaryOperator;
pub use chain::Chain;
pub use cochain::{cohomology_betti_numbers, CoboundaryOperator, Cochain};
pub use complex::{ComplexError, SimplicialComplex};
pub use cycles::{fundamental_cycles, CycleBasis, FundamentalCycle};
pub use gf2::GF2Matrix;
pub use homology::{betti_numbers, euler_characteristic, homology, HomologyGroup};
pub use mea_complex::{mea_to_complex, MeaComplexReport};
pub use partition::{partition_cycles, CyclePartition, CycleShare};
pub use persistence::{persistence_barcode, Barcode, Filtration, PersistenceInterval};
pub use simplex::Simplex;
