//! Translation of an MEA device into an abstract simplicial complex
//! (Proposition 1 of the paper) and its homological invariants.
//!
//! # Joint-level complex (the paper's Figure 1)
//!
//! An `m × n` MEA (m horizontal wires, n vertical wires) has one resistor at
//! every crossing and two joints per resistor — `2mn` joints total. We
//! reproduce the paper's Figure 1 numbering, which its path examples pin
//! down: the resistor at (vertical wire `v`, horizontal wire `h`), both
//! 0-based, owns joints `2(v·m + h)` (the horizontal-wire side) and
//! `2(v·m + h) + 1` (the vertical-wire side). For the 3×3 device this gives
//! wire A = joints {0, 6, 12}, wire I = joints {1, 3, 5}, and R₁₁ between
//! joints 0 and 1, exactly as in the paper.
//!
//! Edges are (a) the resistor edges (joint pair at each crossing) and (b)
//! wire segments between consecutive joints along each wire. The resulting
//! 1-complex has first Betti number `(m−1)(n−1)` — the `(n−1)²` independent
//! Kirchhoff loops of §IV-B for a square array.
//!
//! # Wire-level complex (ideal wires)
//!
//! Contracting each wire to a single node yields the complete bipartite
//! graph `K_{m,n}` (nodes = wires, edges = resistors). The contraction is a
//! homotopy equivalence, so β₁ is the same `(m−1)(n−1)` — verified by test.

use crate::complex::SimplicialComplex;
use crate::homology::betti_numbers;
use crate::simplex::Simplex;

/// Summary of the topological content of an MEA complex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeaComplexReport {
    /// Horizontal wire count m.
    pub rows: usize,
    /// Vertical wire count n.
    pub cols: usize,
    /// Number of 0-simplices (joints).
    pub joints: usize,
    /// Number of 1-simplices (resistor edges + wire segments).
    pub edges: usize,
    /// β₀ — connected components.
    pub betti0: usize,
    /// β₁ — independent cycles, the intrinsic parallelism `(m−1)(n−1)`.
    pub betti1: usize,
}

impl MeaComplexReport {
    /// The paper's theoretical parallelism bound for a 2-D equidistant MEA:
    /// `(n−1)^k` with `k = 2` generalizes to `(m−1)(n−1)` for `m × n`.
    pub fn expected_parallelism(&self) -> usize {
        self.rows.saturating_sub(1) * self.cols.saturating_sub(1)
    }
}

/// Joint id on the horizontal-wire side of the resistor at
/// (vertical wire `v`, horizontal wire `h`) in an `m`-row array.
pub fn joint_h(v: usize, h: usize, rows: usize) -> u32 {
    (2 * (v * rows + h)) as u32
}

/// Joint id on the vertical-wire side of the same resistor.
pub fn joint_v(v: usize, h: usize, rows: usize) -> u32 {
    (2 * (v * rows + h) + 1) as u32
}

/// Builds the joint-level simplicial complex of an `rows × cols` MEA
/// (the paper's Figure 1 for `rows = cols = 3`).
///
/// Panics if either dimension is zero.
pub fn mea_to_complex(rows: usize, cols: usize) -> SimplicialComplex {
    assert!(rows > 0 && cols > 0, "MEA dimensions must be positive");
    let mut maximal: Vec<Simplex> = Vec::with_capacity(3 * rows * cols);
    // Resistor edges: horizontal-side joint ↔ vertical-side joint.
    for v in 0..cols {
        for h in 0..rows {
            maximal.push(Simplex::edge(joint_h(v, h, rows), joint_v(v, h, rows)));
        }
    }
    // Horizontal wire h: joints joint_h(v, h) in order of v.
    for h in 0..rows {
        for v in 0..cols.saturating_sub(1) {
            maximal.push(Simplex::edge(joint_h(v, h, rows), joint_h(v + 1, h, rows)));
        }
    }
    // Vertical wire v: joints joint_v(v, h) in order of h.
    for v in 0..cols {
        for h in 0..rows.saturating_sub(1) {
            maximal.push(Simplex::edge(joint_v(v, h, rows), joint_v(v, h + 1, rows)));
        }
    }
    SimplicialComplex::from_maximal_simplices(maximal).expect("MEA edges are valid simplices")
}

/// Builds the contracted wire-level complex: `K_{rows,cols}` with
/// horizontal-wire nodes `0..rows` and vertical-wire nodes
/// `rows..rows+cols`.
pub fn mea_wire_complex(rows: usize, cols: usize) -> SimplicialComplex {
    assert!(rows > 0 && cols > 0, "MEA dimensions must be positive");
    let mut maximal = Vec::with_capacity(rows * cols);
    for h in 0..rows {
        for v in 0..cols {
            maximal.push(Simplex::edge(h as u32, (rows + v) as u32));
        }
    }
    SimplicialComplex::from_maximal_simplices(maximal).expect("K_{m,n} edges are valid simplices")
}

/// Builds the joint-level complex and computes its homological report —
/// the full Proposition-1 pipeline.
pub fn analyze_mea(rows: usize, cols: usize) -> MeaComplexReport {
    let complex = mea_to_complex(rows, cols);
    let betti = betti_numbers(&complex);
    MeaComplexReport {
        rows,
        cols,
        joints: complex.count(0),
        edges: complex.count(1),
        betti0: betti[0],
        betti1: betti.get(1).copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::fundamental_cycles;
    use crate::homology::euler_characteristic;

    #[test]
    fn figure1_has_18_joints_and_matches_paper_numbering() {
        let c = mea_to_complex(3, 3);
        assert_eq!(c.count(0), 18); // 2n² joints
        assert_eq!(c.dim(), Some(1)); // Proposition 1: dimension is one
                                      // R₁₁ sits between joints 0 and 1 (paper: "0 →R11→ 1").
        assert!(c.contains(&Simplex::edge(0, 1)));
        // R₃₂ between joints 14 and 15 ("the most straightforward circuit
        // [for Z_{B,III}] is through R32 (between endpoints 14 and 15)").
        assert!(c.contains(&Simplex::edge(14, 15)));
        // Wire A carries joints 0, 6, 12 ("6 → 12" appears as an A-segment).
        assert!(c.contains(&Simplex::edge(6, 12)));
        assert!(c.contains(&Simplex::edge(0, 6)));
        // Wire I carries joints 1, 3, 5 ("1 → 3" and "3 → 5").
        assert!(c.contains(&Simplex::edge(1, 3)));
        assert!(c.contains(&Simplex::edge(3, 5)));
        // Wire II: joints 7, 9, 11 ("9 → 7" and "11 → 9").
        assert!(c.contains(&Simplex::edge(7, 9)));
        assert!(c.contains(&Simplex::edge(9, 11)));
    }

    #[test]
    fn paper_path_b_to_iii_is_walkable() {
        // B → 8 →R22→ 9 → 7 →R21→ 6 → 12 →R31→ 13 → III
        // (the paper writes R33 for the last hop; its own joint ids 12/13
        // belong to R31 — we follow the joint ids).
        let c = mea_to_complex(3, 3);
        let hops = [(8u32, 9u32), (9, 7), (7, 6), (6, 12), (12, 13)];
        for (a, b) in hops {
            assert!(c.contains(&Simplex::edge(a, b)), "missing edge {a}-{b}");
        }
    }

    #[test]
    fn edge_census() {
        for (m, n) in [(1, 1), (2, 3), (3, 3), (5, 4), (8, 8)] {
            let c = mea_to_complex(m, n);
            assert_eq!(c.count(0), 2 * m * n);
            assert_eq!(c.count(1), m * n + m * (n - 1) + n * (m - 1));
        }
    }

    #[test]
    fn betti_one_is_the_paper_parallelism_bound() {
        for (m, n) in [(1, 1), (2, 2), (3, 3), (4, 6), (7, 5)] {
            let report = analyze_mea(m, n);
            assert_eq!(report.betti0, 1, "MEA must be connected");
            assert_eq!(
                report.betti1,
                (m - 1) * (n - 1),
                "β₁ = (m−1)(n−1) for {m}×{n}"
            );
            assert_eq!(report.expected_parallelism(), report.betti1);
        }
    }

    #[test]
    fn wire_contraction_preserves_homology() {
        for (m, n) in [(2, 2), (3, 3), (4, 5)] {
            let joints = mea_to_complex(m, n);
            let wires = mea_wire_complex(m, n);
            assert_eq!(betti_numbers(&joints), betti_numbers(&wires));
            // χ is also a homotopy invariant.
            assert_eq!(euler_characteristic(&joints), euler_characteristic(&wires));
        }
    }

    #[test]
    fn wire_complex_is_complete_bipartite() {
        let c = mea_wire_complex(3, 4);
        assert_eq!(c.count(0), 7);
        assert_eq!(c.count(1), 12);
        assert_eq!(betti_numbers(&c), vec![1, 2 * 3]);
    }

    #[test]
    fn fundamental_cycles_realize_the_parallelism() {
        let c = mea_to_complex(4, 4);
        let basis = fundamental_cycles(&c);
        assert_eq!(basis.rank(), 9); // (4−1)²
    }

    #[test]
    fn single_crossing_has_no_holes() {
        let report = analyze_mea(1, 1);
        assert_eq!(report.joints, 2);
        assert_eq!(report.edges, 1);
        assert_eq!(report.betti1, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sized_mea_rejected() {
        let _ = mea_to_complex(0, 3);
    }

    #[test]
    fn rectangular_arrays_supported() {
        // The paper notes the discussion "can be trivially extended to
        // arbitrary shapes m × n".
        let report = analyze_mea(2, 5);
        assert_eq!(report.joints, 20);
        assert_eq!(report.betti1, 4);
    }
}
