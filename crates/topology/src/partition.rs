//! Partitioning a cycle basis into balanced work shares.
//!
//! The paper's §III parallelization assigns the β₁ independent fundamental
//! cycles of the device graph to workers. Within one large solve the same
//! decomposition bounds and shapes the *intra-solve* parallelism: at most
//! β₁ workers can make independent progress, and a worker's share of the
//! basis should carry a comparable amount of chain weight (cycle length ≈
//! equation cost).
//!
//! [`partition_cycles`] produces that assignment deterministically: cycles
//! keep their basis order (contiguous ranges, so a share maps onto a
//! contiguous row range of the assembled system) and shares are balanced
//! by total chain weight with a greedy longest-processing-time-style
//! sweep over the prefix sums. The partition depends only on the basis
//! and the requested share count — never on thread scheduling — so it can
//! sit under the bitwise-determinism contract of the solver.

use crate::cycles::CycleBasis;

/// One worker's contiguous share of a cycle basis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleShare {
    /// Range of cycle indices (into `CycleBasis::cycles`) owned by this
    /// share: `start..end`.
    pub start: usize,
    /// Exclusive end of the owned range.
    pub end: usize,
    /// Total chain weight (edge count) of the owned cycles.
    pub weight: usize,
}

impl CycleShare {
    /// Number of cycles in the share.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the share owns no cycles.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A deterministic, weight-balanced partition of a cycle basis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CyclePartition {
    /// The shares, in basis order; every cycle belongs to exactly one.
    pub shares: Vec<CycleShare>,
    /// Total chain weight across the basis.
    pub total_weight: usize,
}

impl CyclePartition {
    /// Number of non-empty shares — the effective parallel width.
    pub fn effective_workers(&self) -> usize {
        self.shares.iter().filter(|s| !s.is_empty()).count()
    }

    /// The heaviest share's weight (the parallel critical path).
    pub fn max_weight(&self) -> usize {
        self.shares.iter().map(|s| s.weight).max().unwrap_or(0)
    }
}

/// Splits `basis` into at most `workers` contiguous shares balanced by
/// chain weight.
///
/// The split points are chosen against the ideal per-share weight
/// `total / workers`: each share greedily extends while it is below the
/// ideal boundary for its position, which keeps every share within one
/// cycle of the ideal. With fewer cycles than workers the trailing shares
/// come back empty (the parallel width of a solve is capped by β₁ — the
/// paper's bound — not by the thread count).
pub fn partition_cycles(basis: &CycleBasis, workers: usize) -> CyclePartition {
    let workers = workers.max(1);
    let weights: Vec<usize> = basis.cycles.iter().map(|c| c.chain.weight()).collect();
    let total_weight: usize = weights.iter().sum();
    let mut shares = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut acc_before = 0usize; // weight of all shares already emitted
    for s in 0..workers {
        let remaining_shares = workers - s;
        // Ideal cumulative weight at the end of this share: a fair split of
        // what is left over the shares that are left.
        let remaining_weight = total_weight - acc_before;
        let ideal_end = acc_before + remaining_weight.div_ceil(remaining_shares);
        let mut end = start;
        let mut w = 0usize;
        // Leave at least one cycle for each later share when possible —
        // but never reserve more than actually remains, so scarcity
        // empties the *trailing* shares, not the leading ones.
        let remaining_cycles = weights.len() - start;
        let reserve = (remaining_shares - 1).min(remaining_cycles.saturating_sub(1));
        while end < weights.len().saturating_sub(reserve) && (w == 0 || acc_before + w < ideal_end)
        {
            // Stop *before* overshooting the ideal unless the share is
            // still empty (every non-empty prefix must make progress).
            if w > 0 && acc_before + w + weights[end] > ideal_end {
                break;
            }
            w += weights[end];
            end += 1;
        }
        shares.push(CycleShare {
            start,
            end,
            weight: w,
        });
        start = end;
        acc_before += w;
    }
    // Any trailing cycles (possible when reservations pushed work right)
    // belong to the last share.
    if start < weights.len() {
        let last = shares.last_mut().expect("workers >= 1");
        for &w in &weights[start..] {
            last.weight += w;
        }
        last.end = weights.len();
    }
    CyclePartition {
        shares,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::fundamental_cycles;
    use crate::simplex::Simplex;
    use crate::SimplicialComplex;

    /// An r×c grid graph: β₁ = (r−1)(c−1).
    fn grid(r: u32, c: u32) -> CycleBasis {
        let mut edges = Vec::new();
        let id = |i: u32, j: u32| i * c + j;
        for i in 0..r {
            for j in 0..c {
                if j + 1 < c {
                    edges.push(Simplex::edge(id(i, j), id(i, j + 1)));
                }
                if i + 1 < r {
                    edges.push(Simplex::edge(id(i, j), id(i + 1, j)));
                }
            }
        }
        let complex = SimplicialComplex::from_maximal_simplices(edges).unwrap();
        fundamental_cycles(&complex)
    }

    fn check_invariants(basis: &CycleBasis, workers: usize) -> CyclePartition {
        let p = partition_cycles(basis, workers);
        assert_eq!(p.shares.len(), workers.max(1));
        // Shares are contiguous, ordered, and cover the basis exactly.
        let mut cursor = 0usize;
        let mut weight = 0usize;
        for s in &p.shares {
            assert_eq!(s.start, cursor);
            assert!(s.end >= s.start);
            cursor = s.end;
            weight += s.weight;
            let expect: usize = basis.cycles[s.start..s.end]
                .iter()
                .map(|c| c.chain.weight())
                .sum();
            assert_eq!(s.weight, expect);
        }
        assert_eq!(cursor, basis.cycles.len());
        assert_eq!(weight, p.total_weight);
        p
    }

    #[test]
    fn partition_covers_and_balances_grid() {
        let basis = grid(5, 6); // β₁ = 20
        assert_eq!(basis.rank(), 20);
        for workers in [1, 2, 3, 4, 7, 20, 33] {
            let p = check_invariants(&basis, workers);
            assert!(p.effective_workers() <= basis.rank().max(1));
            if workers <= basis.rank() {
                assert_eq!(p.effective_workers(), workers);
                // Balance: the critical path is within one cycle's weight
                // of the ideal share.
                let ideal = p.total_weight.div_ceil(workers);
                let max_cycle = basis.cycles.iter().map(|c| c.chain.weight()).max().unwrap();
                assert!(
                    p.max_weight() <= ideal + max_cycle,
                    "workers {workers}: max {} vs ideal {ideal} (+{max_cycle})",
                    p.max_weight()
                );
            }
        }
    }

    #[test]
    fn more_workers_than_cycles_leaves_trailing_shares_empty() {
        let basis = grid(2, 2); // β₁ = 1
        let p = check_invariants(&basis, 4);
        assert_eq!(p.effective_workers(), 1);
        assert_eq!(p.shares[0].len(), 1);
        assert!(p.shares[1..].iter().all(|s| s.is_empty()));
    }

    #[test]
    fn acyclic_basis_partitions_to_empty_shares() {
        let complex =
            SimplicialComplex::from_maximal_simplices([Simplex::edge(0, 1), Simplex::edge(1, 2)])
                .unwrap();
        let basis = fundamental_cycles(&complex);
        assert_eq!(basis.rank(), 0);
        let p = check_invariants(&basis, 3);
        assert_eq!(p.effective_workers(), 0);
        assert_eq!(p.total_weight, 0);
    }

    #[test]
    fn partition_is_deterministic() {
        let basis = grid(4, 4);
        let a = partition_cycles(&basis, 3);
        let b = partition_cycles(&basis, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let basis = grid(3, 3);
        let p = partition_cycles(&basis, 0);
        assert_eq!(p.shares.len(), 1);
        assert_eq!(p.shares[0].len(), basis.rank());
    }
}
