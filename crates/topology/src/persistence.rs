//! Persistent homology over GF(2): filtrations, the standard column
//! reduction and barcodes.
//!
//! This extends the paper's static homological model (§III) along its time
//! axis: the wet lab measures the same device repeatedly while anomalies
//! grow, and the natural topological summary of a growing scalar field is
//! the *persistence barcode* of its sublevel (or superlevel) filtration.
//! `parma::persistence` uses this to count and rank anomaly regions of a
//! recovered resistor map by topological significance.
//!
//! The implementation is the textbook algorithm: order simplices by
//! (filtration value, dimension, tiebreak), reduce the GF(2) boundary
//! matrix left to right, read each column's surviving low entry as a
//! (birth, death) pairing; unpaired creators are essential classes.

use crate::complex::SimplicialComplex;
use crate::simplex::Simplex;
use std::collections::HashMap;

/// A filtered complex: simplices with real-valued appearance times.
#[derive(Clone, Debug)]
pub struct Filtration {
    /// `(value, simplex)` pairs, not necessarily sorted.
    entries: Vec<(f64, Simplex)>,
}

impl Filtration {
    /// Builds from `(value, simplex)` pairs.
    ///
    /// Validates monotonicity: every face of a simplex must be present
    /// with a value no larger than the simplex's own (otherwise sublevel
    /// sets would not be complexes). Panics on violation or on non-finite
    /// values.
    pub fn new<I: IntoIterator<Item = (f64, Simplex)>>(entries: I) -> Self {
        let entries: Vec<(f64, Simplex)> = entries.into_iter().collect();
        let mut value_of: HashMap<&Simplex, f64> = HashMap::with_capacity(entries.len());
        for (v, s) in &entries {
            assert!(v.is_finite(), "filtration values must be finite");
            assert!(!s.is_empty(), "the empty simplex cannot be filtered");
            let prev = value_of.insert(s, *v);
            assert!(prev.is_none(), "duplicate simplex {s} in filtration");
        }
        for (v, s) in &entries {
            for f in s.proper_faces() {
                match value_of.get(&f) {
                    None => panic!("face {f} of {s} missing from the filtration"),
                    Some(fv) => assert!(
                        fv <= v,
                        "face {f} appears later ({fv}) than {s} ({v}): not a filtration"
                    ),
                }
            }
        }
        Filtration { entries }
    }

    /// The sublevel filtration of a vertex-valued function: every simplex
    /// appears at the max of its vertices' values (lower-star filtration).
    pub fn lower_star(complex: &SimplicialComplex, vertex_value: impl Fn(u32) -> f64) -> Self {
        let mut entries = Vec::with_capacity(complex.total_count());
        let Some(dim) = complex.dim() else {
            return Filtration { entries };
        };
        for k in 0..=dim {
            for s in complex.simplices(k) {
                let v = s
                    .vertices()
                    .iter()
                    .map(|&u| vertex_value(u))
                    .fold(f64::NEG_INFINITY, f64::max);
                entries.push((v, s.clone()));
            }
        }
        Filtration::new(entries)
    }

    /// Number of filtered simplices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the filtration is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One persistence interval: a homology class of dimension `dim` born at
/// `birth` and dying at `death` (`None` = essential, lives forever).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PersistenceInterval {
    /// Homological dimension of the class.
    pub dim: usize,
    /// Filtration value at which the class appears.
    pub birth: f64,
    /// Filtration value at which it merges/fills, if ever.
    pub death: Option<f64>,
}

impl PersistenceInterval {
    /// Lifetime `death − birth`; `f64::INFINITY` for essential classes.
    pub fn persistence(&self) -> f64 {
        match self.death {
            Some(d) => d - self.birth,
            None => f64::INFINITY,
        }
    }
}

/// The barcode of a filtration.
#[derive(Clone, Debug, Default)]
pub struct Barcode {
    /// All intervals, in no particular order.
    pub intervals: Vec<PersistenceInterval>,
}

impl Barcode {
    /// Intervals of one dimension, most persistent first.
    pub fn in_dim(&self, dim: usize) -> Vec<PersistenceInterval> {
        let mut v: Vec<PersistenceInterval> = self
            .intervals
            .iter()
            .copied()
            .filter(|i| i.dim == dim)
            .collect();
        v.sort_by(|a, b| b.persistence().total_cmp(&a.persistence()));
        v
    }

    /// Intervals of one dimension with persistence strictly above a
    /// threshold (essential classes always qualify).
    pub fn significant(&self, dim: usize, min_persistence: f64) -> Vec<PersistenceInterval> {
        self.in_dim(dim)
            .into_iter()
            .filter(|i| i.persistence() > min_persistence)
            .collect()
    }

    /// Number of essential (never-dying) classes per dimension — must
    /// equal the Betti numbers of the final complex.
    pub fn essential_count(&self, dim: usize) -> usize {
        self.intervals
            .iter()
            .filter(|i| i.dim == dim && i.death.is_none())
            .count()
    }
}

/// Computes the persistence barcode of a filtration by the standard GF(2)
/// column reduction.
pub fn persistence_barcode(filtration: &Filtration) -> Barcode {
    // Order simplices by (value, dim, simplex) — dimension second so faces
    // precede cofaces at equal values.
    let mut order: Vec<(f64, usize, &Simplex)> = filtration
        .entries
        .iter()
        .map(|(v, s)| (*v, s.dim() as usize, s))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(b.2)));
    let index_of: HashMap<&Simplex, usize> = order
        .iter()
        .enumerate()
        .map(|(i, (_, _, s))| (*s, i))
        .collect();

    let m = order.len();
    // Columns as sorted vectors of row indices (sparse; filtration
    // boundaries are tiny per column).
    let mut columns: Vec<Vec<usize>> = Vec::with_capacity(m);
    for (_, _, s) in &order {
        let mut col: Vec<usize> = s.facets().iter().map(|f| index_of[f]).collect();
        col.sort_unstable();
        columns.push(col);
    }
    // low(j) = max row index of column j; reduce until lows are unique.
    let mut low_to_col: Vec<Option<usize>> = vec![None; m];
    let mut paired_birth: Vec<Option<usize>> = vec![None; m]; // death col -> birth col
    for j in 0..m {
        while let Some(&low) = columns[j].last() {
            match low_to_col[low] {
                None => {
                    low_to_col[low] = Some(j);
                    paired_birth[j] = Some(low);
                    break;
                }
                Some(pivot) => {
                    // columns[j] ^= columns[pivot] (symmetric difference of
                    // sorted index lists).
                    let merged = xor_sorted(&columns[j], &columns[pivot]);
                    columns[j] = merged;
                }
            }
        }
    }
    // Emit intervals: a zero column is a creator; if some later column
    // pairs with it, the class dies there; otherwise it is essential.
    let mut dies_at: Vec<Option<usize>> = vec![None; m];
    for (death, birth) in paired_birth.iter().enumerate() {
        if let Some(b) = birth {
            dies_at[*b] = Some(death);
        }
    }
    let mut intervals = Vec::new();
    for j in 0..m {
        if !columns[j].is_empty() {
            continue; // j is a destroyer, not a creator
        }
        let (birth_value, dim, _) = order[j];
        let death = dies_at[j].map(|d| order[d].0);
        // Skip zero-length intervals (born and dead at the same value):
        // they carry no topological information.
        if let Some(d) = death {
            if d == birth_value {
                continue;
            }
        }
        intervals.push(PersistenceInterval {
            dim,
            birth: birth_value,
            death,
        });
    }
    Barcode { intervals }
}

fn xor_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homology::betti_numbers;

    #[test]
    fn single_vertex_is_one_essential_class() {
        let f = Filtration::new([(0.0, Simplex::vertex(0))]);
        let bc = persistence_barcode(&f);
        assert_eq!(bc.intervals.len(), 1);
        assert_eq!(
            bc.intervals[0],
            PersistenceInterval {
                dim: 0,
                birth: 0.0,
                death: None
            }
        );
        assert!(bc.intervals[0].persistence().is_infinite());
    }

    #[test]
    fn two_components_merging() {
        // Vertices at t=0 and t=1, edge joins them at t=2: the younger
        // component (born 1) dies at 2; the older persists forever.
        let f = Filtration::new([
            (0.0, Simplex::vertex(0)),
            (1.0, Simplex::vertex(1)),
            (2.0, Simplex::edge(0, 1)),
        ]);
        let bc = persistence_barcode(&f);
        let d0 = bc.in_dim(0);
        assert_eq!(d0.len(), 2);
        assert_eq!(d0[0].death, None);
        assert_eq!(d0[0].birth, 0.0);
        assert_eq!(
            d0[1],
            PersistenceInterval {
                dim: 0,
                birth: 1.0,
                death: Some(2.0)
            }
        );
    }

    #[test]
    fn loop_birth_is_detected() {
        // A triangle assembled edge by edge: β₁ class born when the last
        // edge closes the loop at t=5; it never dies (no 2-face).
        let f = Filtration::new([
            (0.0, Simplex::vertex(0)),
            (0.0, Simplex::vertex(1)),
            (0.0, Simplex::vertex(2)),
            (1.0, Simplex::edge(0, 1)),
            (2.0, Simplex::edge(1, 2)),
            (5.0, Simplex::edge(0, 2)),
        ]);
        let bc = persistence_barcode(&f);
        let d1 = bc.in_dim(1);
        assert_eq!(d1.len(), 1);
        assert_eq!(
            d1[0],
            PersistenceInterval {
                dim: 1,
                birth: 5.0,
                death: None
            }
        );
    }

    #[test]
    fn filled_loop_dies() {
        // Same triangle, then the 2-face arrives at t=7: the β₁ class
        // lives on [5, 7).
        let f = Filtration::new([
            (0.0, Simplex::vertex(0)),
            (0.0, Simplex::vertex(1)),
            (0.0, Simplex::vertex(2)),
            (1.0, Simplex::edge(0, 1)),
            (2.0, Simplex::edge(1, 2)),
            (5.0, Simplex::edge(0, 2)),
            (7.0, Simplex::new([0, 1, 2])),
        ]);
        let bc = persistence_barcode(&f);
        let d1 = bc.in_dim(1);
        assert_eq!(
            d1,
            vec![PersistenceInterval {
                dim: 1,
                birth: 5.0,
                death: Some(7.0)
            }]
        );
        assert_eq!(bc.essential_count(1), 0);
        assert_eq!(bc.essential_count(0), 1);
    }

    #[test]
    fn essential_classes_match_final_betti_numbers() {
        // A figure-eight built with arbitrary timings: essentials must
        // equal β(final complex).
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)];
        let complex = SimplicialComplex::from_maximal_simplices(
            edges.iter().map(|&(a, b)| Simplex::edge(a, b)),
        )
        .unwrap();
        let f = Filtration::lower_star(&complex, |v| v as f64 * 0.7);
        let bc = persistence_barcode(&f);
        let betti = betti_numbers(&complex);
        assert_eq!(bc.essential_count(0), betti[0]);
        assert_eq!(bc.essential_count(1), betti[1]);
    }

    #[test]
    fn lower_star_on_mea_complex() {
        let complex = crate::mea_complex::mea_to_complex(3, 3);
        let f = Filtration::lower_star(&complex, |v| v as f64);
        assert_eq!(f.len(), complex.total_count());
        let bc = persistence_barcode(&f);
        assert_eq!(bc.essential_count(0), 1);
        assert_eq!(bc.essential_count(1), 4); // (3−1)²
    }

    #[test]
    fn significant_filters_by_persistence() {
        let f = Filtration::new([
            (0.0, Simplex::vertex(0)),
            (1.0, Simplex::vertex(1)),
            (1.1, Simplex::edge(0, 1)), // short-lived component
        ]);
        let bc = persistence_barcode(&f);
        assert_eq!(bc.significant(0, 0.5).len(), 1); // only the essential
        assert_eq!(bc.significant(0, 0.05).len(), 2);
    }

    #[test]
    fn zero_length_intervals_are_dropped() {
        // Vertex and its killing edge arrive simultaneously.
        let f = Filtration::new([
            (0.0, Simplex::vertex(0)),
            (0.0, Simplex::vertex(1)),
            (0.0, Simplex::edge(0, 1)),
        ]);
        let bc = persistence_barcode(&f);
        assert_eq!(bc.in_dim(0).len(), 1, "only the essential class remains");
    }

    #[test]
    #[should_panic(expected = "missing from the filtration")]
    fn missing_face_rejected() {
        let _ = Filtration::new([(0.0, Simplex::edge(0, 1))]);
    }

    #[test]
    #[should_panic(expected = "not a filtration")]
    fn late_face_rejected() {
        let _ = Filtration::new([
            (5.0, Simplex::vertex(0)),
            (5.0, Simplex::vertex(1)),
            (1.0, Simplex::edge(0, 1)),
        ]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_simplex_rejected() {
        let _ = Filtration::new([(0.0, Simplex::vertex(0)), (1.0, Simplex::vertex(0))]);
    }
}
