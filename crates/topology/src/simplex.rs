//! Abstract simplices: finite, duplicate-free, sorted vertex sets.

use std::fmt;

/// An abstract simplex — a finite set of vertices.
///
/// Following §III-A of the paper, a simplex `σ` is just a set `S` of vertices;
/// its *dimension* is `|σ| − 1` and every subset of `σ` is again a simplex (a
/// *face* of `σ`). Vertices are `u32` identifiers. The vertex list is kept
/// sorted and deduplicated so that two simplices are equal exactly when they
/// denote the same vertex set, and so that face enumeration is deterministic.
///
/// The empty simplex (dimension −1) is representable — the paper's chain
/// groups include it implicitly as the identity of the mod-2 operation — but
/// [`Simplex::dim`] returns `-1` for it and complexes never store it.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Simplex {
    vertices: Vec<u32>,
}

impl Simplex {
    /// Builds a simplex from any collection of vertex ids; duplicates are
    /// removed and the result is sorted.
    pub fn new<I: IntoIterator<Item = u32>>(vertices: I) -> Self {
        let mut v: Vec<u32> = vertices.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Simplex { vertices: v }
    }

    /// The empty simplex ∅ (dimension −1).
    pub fn empty() -> Self {
        Simplex {
            vertices: Vec::new(),
        }
    }

    /// A 0-simplex (single vertex).
    pub fn vertex(v: u32) -> Self {
        Simplex { vertices: vec![v] }
    }

    /// A 1-simplex (edge). `a` and `b` must differ.
    pub fn edge(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "an edge needs two distinct vertices");
        Simplex::new([a, b])
    }

    /// Dimension: `|σ| − 1`; the empty simplex has dimension −1.
    pub fn dim(&self) -> isize {
        self.vertices.len() as isize - 1
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for the empty simplex.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The sorted vertex ids.
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// Whether `other` is a face of `self` (subset relation; every simplex is
    /// a face of itself, and ∅ is a face of everything).
    pub fn has_face(&self, other: &Simplex) -> bool {
        // Both sides are sorted, so a linear merge suffices.
        let mut it = self.vertices.iter();
        'outer: for v in &other.vertices {
            for w in it.by_ref() {
                if w == v {
                    continue 'outer;
                }
                if w > v {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// All faces of codimension 1 (each obtained by dropping one vertex).
    ///
    /// This is the support of the boundary `∂σ` in the mod-2 chain complex:
    /// every codim-1 face appears exactly once, and over GF(2) signs vanish.
    pub fn facets(&self) -> Vec<Simplex> {
        if self.vertices.len() <= 1 {
            // ∂ of a vertex is the empty chain in reduced-free homology;
            // we follow the unreduced convention: vertices have no facets.
            return Vec::new();
        }
        (0..self.vertices.len())
            .map(|skip| {
                let vs: Vec<u32> = self
                    .vertices
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, &v)| v)
                    .collect();
                Simplex { vertices: vs }
            })
            .collect()
    }

    /// All faces of every dimension ≥ 0, *excluding* the simplex itself and ∅.
    pub fn proper_faces(&self) -> Vec<Simplex> {
        let n = self.vertices.len();
        let mut out = Vec::new();
        // Enumerate non-empty proper subsets via bitmasks; simplex vertex
        // counts are tiny (circuits are 1-dimensional, test complexes ≤ 3-dim)
        // so the 2^n enumeration is fine.
        assert!(n <= 25, "simplex too large for subset enumeration");
        for mask in 1u32..((1u32 << n) - 1) {
            let vs: Vec<u32> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| self.vertices[i])
                .collect();
            out.push(Simplex { vertices: vs });
        }
        out.sort();
        out.dedup();
        out
    }

    /// Set intersection of two simplices (shared face candidate).
    pub fn intersection(&self, other: &Simplex) -> Simplex {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.vertices[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Simplex { vertices: out }
    }
}

impl fmt::Debug for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> From<[u32; N]> for Simplex {
    fn from(vs: [u32; N]) -> Self {
        Simplex::new(vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = Simplex::new([3, 1, 2, 1]);
        assert_eq!(s.vertices(), &[1, 2, 3]);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn empty_simplex_dim_is_minus_one() {
        assert_eq!(Simplex::empty().dim(), -1);
        assert!(Simplex::empty().is_empty());
    }

    #[test]
    fn vertex_and_edge_constructors() {
        assert_eq!(Simplex::vertex(7).dim(), 0);
        assert_eq!(Simplex::edge(4, 2).vertices(), &[2, 4]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn edge_rejects_loops() {
        let _ = Simplex::edge(5, 5);
    }

    #[test]
    fn has_face_subset_relation() {
        let tri = Simplex::new([0, 1, 2]);
        assert!(tri.has_face(&Simplex::new([0, 2])));
        assert!(tri.has_face(&Simplex::new([1])));
        assert!(tri.has_face(&tri));
        assert!(tri.has_face(&Simplex::empty()));
        assert!(!tri.has_face(&Simplex::new([0, 3])));
        assert!(!Simplex::new([0, 2]).has_face(&tri));
    }

    #[test]
    fn facets_of_triangle_are_three_edges() {
        let tri = Simplex::new([0, 1, 2]);
        let f = tri.facets();
        assert_eq!(f.len(), 3);
        assert!(f.contains(&Simplex::new([0, 1])));
        assert!(f.contains(&Simplex::new([0, 2])));
        assert!(f.contains(&Simplex::new([1, 2])));
    }

    #[test]
    fn facets_of_edge_are_its_vertices() {
        let e = Simplex::edge(5, 9);
        let f = e.facets();
        assert_eq!(f, vec![Simplex::vertex(9), Simplex::vertex(5)]);
    }

    #[test]
    fn vertices_have_no_facets() {
        assert!(Simplex::vertex(0).facets().is_empty());
        assert!(Simplex::empty().facets().is_empty());
    }

    #[test]
    fn proper_faces_of_triangle() {
        let tri = Simplex::new([0, 1, 2]);
        let faces = tri.proper_faces();
        // 3 vertices + 3 edges.
        assert_eq!(faces.len(), 6);
        assert!(!faces.contains(&tri));
        assert!(faces.contains(&Simplex::new([0, 1])));
        assert!(faces.contains(&Simplex::vertex(2)));
    }

    #[test]
    fn intersection_is_shared_vertices() {
        let a = Simplex::new([0, 1, 2]);
        let b = Simplex::new([1, 2, 3]);
        assert_eq!(a.intersection(&b), Simplex::new([1, 2]));
        let c = Simplex::new([7, 8]);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{}", Simplex::new([2, 0])), "⟨0,2⟩");
    }
}
