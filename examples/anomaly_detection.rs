//! Anomaly detection over a full wet-lab session: four timed measurements
//! (0/6/12/24 h) of a growing anomaly, exported to the paper's text format,
//! re-imported, solved and visualized.
//!
//! ```text
//! cargo run --release -p parma --example anomaly_detection [n] [seed]
//! ```

use parma::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let grid = MeaGrid::square(n);
    let cfg = AnomalyConfig {
        regions: 1,
        ..Default::default()
    };

    println!("Wet-lab session on a {n}×{n} array (seed {seed})");
    println!("=================================================");

    // Generate the session and round-trip it through the text format the
    // paper's Excel→text converter produced.
    let session = WetLabDataset::generate(grid, &cfg, seed).expect("generation succeeds");
    let path = std::env::temp_dir().join(format!("parma-session-{n}-{seed}.txt"));
    session.save(&path).expect("save session");
    let loaded = WetLabDataset::load(&path).expect("reload session");
    println!(
        "dataset: {} measurements round-tripped through {}",
        loaded.measurements.len(),
        path.display()
    );

    // Run the pipeline on the *loaded* data (no ground truth available —
    // exactly the wet lab's situation), then compare against the original
    // session's ground truth out of band.
    let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).expect("valid configuration");
    let results = pipeline.run(&loaded).expect("pipeline converges");

    for (r, original) in results.iter().zip(&session.measurements) {
        let truth = original.ground_truth.as_ref().expect("synthetic session");
        let err = r.solution.resistors.rel_max_diff(truth);
        println!(
            "\nhour {:>2}: {} iterations, residual {:.1e}, vs-truth error {:.1e}, {} anomalous crossings",
            r.hours,
            r.solution.iterations,
            r.solution.residual,
            err,
            r.detection.anomalies.len()
        );
        render_map(&r.solution.resistors, r.detection.threshold);
    }
    std::fs::remove_file(&path).ok();
}

/// ASCII heat map: '.' healthy, '▒' elevated, '█' above the detection
/// threshold.
fn render_map(r: &ResistorGrid, threshold: f64) {
    let grid = r.grid();
    let base = r.min();
    for i in 0..grid.rows() {
        let mut line = String::with_capacity(grid.cols());
        for j in 0..grid.cols() {
            let v = r.get(i, j);
            line.push(if v > threshold {
                '█'
            } else if v > base * 1.15 {
                '▒'
            } else {
                '.'
            });
        }
        println!("  {line}");
    }
}
