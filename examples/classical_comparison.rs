//! Parma versus the conventional inverse methods the paper cites:
//! Gauss-Newton, Landweber, linear back projection and Tikhonov — on
//! clean and on noisy measurements.
//!
//! ```text
//! cargo run --release -p parma --example classical_comparison [n] [seed]
//! ```

use mea_model::NoiseModel;
use parma::classical::{
    gauss_newton, landweber, linear_back_projection, tikhonov, FullJacobian, GaussNewtonOptions,
    LandweberOptions, TikhonovOptions,
};
use parma::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let grid = MeaGrid::square(n);
    let (truth, _) = AnomalyConfig::default().generate(grid, seed);
    let z = ForwardSolver::new(&truth)
        .expect("physical map")
        .solve_all();
    let kappa = (n * n) as f64 / (2 * n - 1) as f64;
    let mut kappa_seed = z.clone();
    for v in kappa_seed.as_mut_slice() {
        *v *= kappa;
    }

    println!("Inverse-method comparison on a {n}×{n} array (seed {seed})");
    println!("==========================================================\n");

    // Ill-posedness diagnostic.
    let fj = FullJacobian::assemble(&kappa_seed, &z).expect("assembly");
    println!(
        "sensitivity matrix: {}×{} dense, cond(J) ≈ {:.1e}\n",
        fj.j.rows(),
        fj.j.cols(),
        fj.condition_estimate(60)
    );

    println!(
        "{:<26} {:>12} {:>12} {:>14}",
        "method (clean data)", "max err", "mean err", "time (ms)"
    );
    let report = |label: &str, r: &ResistorGrid, secs: f64| {
        println!(
            "{:<26} {:>12.2e} {:>12.2e} {:>14.1}",
            label,
            r.rel_max_diff(&truth),
            r.rel_mean_diff(&truth),
            secs * 1e3
        );
    };

    let t0 = Instant::now();
    let parma_sol = ParmaSolver::new(ParmaConfig::default())
        .solve(&z)
        .expect("parma");
    report(
        "Parma fixed point",
        &parma_sol.resistors,
        t0.elapsed().as_secs_f64(),
    );

    let t0 = Instant::now();
    let gn = gauss_newton(&z, &kappa_seed, &GaussNewtonOptions::default()).expect("gn");
    report("Gauss-Newton (dense J)", &gn, t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let lw = landweber(
        &z,
        &kappa_seed,
        &LandweberOptions {
            tol: 1e-8,
            ..Default::default()
        },
    )
    .expect("landweber");
    report(
        &format!("Landweber ({} iters)", lw.iterations),
        &lw.resistors,
        t0.elapsed().as_secs_f64(),
    );

    let t0 = Instant::now();
    let lbp = linear_back_projection(&z).expect("lbp");
    report("Linear back projection", &lbp, t0.elapsed().as_secs_f64());

    // Noisy round: the regularization story.
    let noisy = NoiseModel::Gaussian { sigma: 0.01 }.apply(&z, seed ^ 0xBEEF);
    println!(
        "\n{:<26} {:>12} {:>12}",
        "method (1% noise)", "max err", "mean err"
    );
    let prior = ResistorGrid::filled(grid, noisy.mean() * kappa);
    let unreg = tikhonov(
        &noisy,
        &prior,
        &TikhonovOptions {
            lambda: 0.0,
            max_iter: 40,
            tol: 1e-12,
            ..Default::default()
        },
    )
    .expect("unregularized");
    println!(
        "{:<26} {:>12.2e} {:>12.2e}",
        "unregularized GN",
        unreg.rel_max_diff(&truth),
        unreg.rel_mean_diff(&truth)
    );
    for lambda in [1e-3, 1e-2, 1e-1] {
        let reg = tikhonov(
            &noisy,
            &prior,
            &TikhonovOptions {
                lambda,
                max_iter: 40,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .expect("tikhonov");
        println!(
            "{:<26} {:>12.2e} {:>12.2e}",
            format!("Tikhonov λ={lambda:.0e}"),
            reg.rel_max_diff(&truth),
            reg.rel_mean_diff(&truth)
        );
    }
    println!(
        "\nnoise amplification (unregularized): 1% measurement noise → {:.0}% max parameter error",
        unreg.rel_max_diff(&truth) * 100.0
    );
}
