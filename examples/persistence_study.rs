//! Topological anomaly analysis over a wet-lab session: persistent
//! homology counts and ranks anomaly regions without any resistance
//! threshold, and tracks their prominence as they grow through the
//! 0/6/12/24-hour measurements.
//!
//! ```text
//! cargo run --release -p parma --example persistence_study [n] [seed]
//! ```

use parma::persistence::anomaly_persistence;
use parma::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(18);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    let grid = MeaGrid::square(n);
    let cfg = AnomalyConfig {
        regions: 2,
        ..Default::default()
    };
    let session = WetLabDataset::generate(grid, &cfg, seed).expect("session");

    println!(
        "Persistence study — {n}×{n} array, {} planted regions (seed {seed})",
        cfg.regions
    );
    println!("=================================================================\n");

    let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).expect("valid configuration");
    let results = pipeline.run(&session).expect("pipeline");

    for r in &results {
        let analysis = anomaly_persistence(&r.solution.resistors, 800.0);
        println!(
            "hour {:>2}: {} significant region(s) above 800 kΩ prominence",
            r.hours,
            analysis.regions.len()
        );
        for (idx, reg) in analysis.regions.iter().enumerate() {
            let merge = reg
                .merge_resistance
                .map(|m| format!("{m:.0} kΩ"))
                .unwrap_or_else(|| "never (dominant)".into());
            println!(
                "    region {}: peak {:.0} kΩ, merges at {}, prominence {:.0} kΩ",
                idx + 1,
                reg.peak_resistance,
                merge,
                reg.prominence
            );
        }
        // The classic barcode view: all β₀ intervals sorted by persistence.
        let all = analysis.barcode.in_dim(0);
        let noise_classes = all.len() - analysis.regions.len();
        println!("    (+ {noise_classes} sub-threshold noise classes filtered)");
    }

    println!("\nprominence should grow monotonically hour over hour — the anomaly");
    println!("is growing, and persistence sees it without any threshold tuning.");
}
