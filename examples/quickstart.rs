//! Quickstart: generate a synthetic device, "measure" it, recover the
//! resistor map and localize the anomaly.
//!
//! ```text
//! cargo run --release -p parma --example quickstart [n] [seed]
//! ```

use parma::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("Parma quickstart — {n}×{n} microelectrode array (seed {seed})");
    println!("================================================================");

    // 1. A synthetic device: healthy baseline with anomalous regions in the
    //    paper's wet-lab range (2,000–11,000 kΩ at 5 V).
    let grid = MeaGrid::square(n);
    let cfg = AnomalyConfig::default();
    let (ground_truth, regions) = cfg.generate(grid, seed);
    println!(
        "device: {} crossings, {} joints, resistance {:.0}–{:.0} kΩ, {} anomaly region(s)",
        grid.crossings(),
        grid.joints(),
        ground_truth.min(),
        ground_truth.max(),
        regions.len()
    );

    // 2. The measurement: pair-wise impedances through exact Kirchhoff
    //    nodal analysis (what the paper's physical device reports).
    let measured = ForwardSolver::new(&ground_truth)
        .expect("ground truth is physical")
        .solve_all();
    println!(
        "measured: Z ranges {:.1}–{:.1} kΩ across {} endpoint pairs",
        measured.min(),
        measured.max(),
        grid.pairs()
    );

    // 3. The topological bound on parallelism: β₁ of the device complex.
    println!(
        "topology: β₁ = {} independent Kirchhoff cycles (= (n−1)²)",
        parallelism_bound(grid)
    );

    // 4. Recover the resistor map from measurements alone.
    let config = ParmaConfig::default().with_strategy(Strategy::FineGrained { threads: 2 });
    let t0 = std::time::Instant::now();
    let solution = ParmaSolver::new(config)
        .solve(&measured)
        .expect("solver converges");
    let elapsed = t0.elapsed();
    println!(
        "solve: {} iterations, residual {:.2e}, {:.1} ms",
        solution.iterations,
        solution.residual,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "accuracy vs ground truth: max relative error {:.2e}",
        solution.resistors.rel_max_diff(&ground_truth)
    );

    // 5. Detect the anomaly on the recovered map.
    let report = detect_anomalies(&solution.resistors, 1.5);
    let (precision, recall) = report.score(&solution.resistors, &regions, 0.5 * cfg.baseline);
    println!(
        "detection: {} crossings above {:.0} kΩ (baseline {:.0} kΩ) — precision {:.0}%, recall {:.0}%",
        report.anomalies.len(),
        report.threshold,
        report.baseline,
        precision * 100.0,
        recall * 100.0
    );
}
