//! Scaling study: the paper's §V experiments in miniature.
//!
//! Times equation formation under every execution strategy, sweeps the
//! fine-grained worker count, and extends to 1,024 simulated MPI ranks.
//!
//! ```text
//! cargo run --release -p parma --example scaling_study [n]
//! ```

use mea_equations::FormationCensus;
use mea_model::{AnomalyConfig, ForwardSolver};
use mea_parallel::{
    mpi_sim::{measure_costs, simulate, ClusterModel},
    Strategy,
};
use parma::form_equations_parallel;
use parma::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let grid = MeaGrid::square(n);
    let (truth, _) = AnomalyConfig::default().generate(grid, 1);
    let z = ForwardSolver::new(&truth)
        .expect("physical map")
        .solve_all();

    println!("Scaling study — {n}×{n} array");
    let census = FormationCensus::expected(grid);
    println!(
        "workload: {} equations ({} terms) across {} pairs\n",
        census.equations,
        census.terms,
        grid.pairs()
    );

    // --- Strategy comparison (the Figure-6 shape) ---------------------
    println!("{:<24} {:>12} {:>14}", "strategy", "time (ms)", "speedup");
    let strategies = [
        Strategy::SingleThread,
        Strategy::Parallel4,
        Strategy::BalancedParallel { threads: 4 },
        Strategy::FineGrained { threads: 4 },
        Strategy::WorkStealing { threads: 4 },
    ];
    let mut baseline_ms = None;
    for s in strategies {
        let t0 = Instant::now();
        let eqs = form_equations_parallel(&z, 5.0, s);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(eqs.len(), census.equations);
        let base = *baseline_ms.get_or_insert(ms);
        println!("{:<24} {:>12.2} {:>13.2}x", s.label(), ms, base / ms);
    }

    // --- PyMP-k sweep (the Figure-7 shape) -----------------------------
    println!("\n{:<12} {:>12}", "workers k", "time (ms)");
    for k in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let _ = form_equations_parallel(&z, 5.0, Strategy::FineGrained { threads: k });
        println!("{:<12} {:>12.2}", k, t0.elapsed().as_secs_f64() * 1e3);
    }

    // --- Simulated MPI strong scaling (the Figure-10 shape) ------------
    println!("\nsimulated MPI (measured per-pair costs, α-β collectives):");
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "ranks", "sim time (ms)", "speedup", "efficiency"
    );
    let costs = measure_costs(grid.pairs(), |p| {
        let (i, j) = (p / grid.cols(), p % grid.cols());
        std::hint::black_box(mea_equations::form_pair_equations(
            grid,
            i,
            j,
            5.0,
            z.get(i, j),
        ));
    });
    let cluster = ClusterModel::paper_hpc();
    let bytes_per_round = 8 * grid.pairs(); // one f64 conductance per pair
    for ranks in [1usize, 4, 16, 64, 256, 1024] {
        let rep = simulate(&cluster, ranks, &costs, 10, bytes_per_round);
        println!(
            "{:>8} {:>14.3} {:>11.1}x {:>11.1}%",
            ranks,
            rep.total_secs * 1e3,
            rep.speedup(),
            rep.efficiency() * 100.0
        );
    }
    println!(
        "\ntopological parallelism bound β₁ = {} (useful ranks cap)",
        parallelism_bound(grid)
    );
}
