//! A tour of the algebraic-topological machinery behind Parma — the §III
//! story on the paper's own 3×3 running example (Figures 1–5).
//!
//! ```text
//! cargo run --release -p parma --example topology_tour [n]
//! ```

use mea_equations::{form_pair_equations, render_equation, PairTopology};
use mea_model::{enumerate_paths, exact_path_count, paper_path_count, MeaGrid};
use mea_topology::{
    betti_numbers, euler_characteristic, fundamental_cycles, homology, mea_complex,
};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let grid = MeaGrid::square(n);

    println!("Topological tour of an {n}×{n} MEA");
    println!("===================================\n");

    // --- Figure 1: the joint-level device -----------------------------
    let complex = mea_complex::mea_to_complex(n, n);
    println!("joint-level simplicial complex (Proposition 1):");
    println!(
        "  dimension        : {:?} (an MEA is a 1-complex)",
        complex.dim()
    );
    println!("  0-simplices      : {} joints (2n²)", complex.count(0));
    println!(
        "  1-simplices      : {} wire segments + resistors",
        complex.count(1)
    );
    println!("  Euler char χ     : {}", euler_characteristic(&complex));

    // --- Homology groups and Betti numbers ----------------------------
    let betti = betti_numbers(&complex);
    println!("\nhomology over GF(2):");
    for (k, b) in betti.iter().enumerate() {
        println!("  β{k} = {b}");
    }
    println!(
        "  β₁ = (n−1)² = {} independent Kirchhoff cycles",
        (n - 1) * (n - 1)
    );

    let h = homology(&complex);
    if let Some(h1) = h.get(1) {
        println!(
            "  H¹ has 2^{} elements; a generator touches {} edges",
            h1.betti,
            h1.generators.first().map_or(0, |g| g.weight())
        );
    }

    // --- Fundamental cycles: the parallel work units -------------------
    let basis = fundamental_cycles(&complex);
    println!("\nfundamental cycle basis (spanning-tree chords):");
    println!("  rank      : {} (= β₁)", basis.rank());
    if let Some(c) = basis.cycles.first() {
        println!("  first cycle walk: {:?}", c.walk);
    }

    // --- §II-C: the exponential path problem ---------------------------
    println!("\npath census between one endpoint pair:");
    println!("  exact simple paths : {}", exact_path_count(grid));
    println!(
        "  paper estimate     : n^(n−1) = {}",
        paper_path_count(n, false)
    );
    println!(
        "  whole-array        : n^(n+1) = {} (infeasible past n ≈ 6)",
        paper_path_count(n, true)
    );
    if n <= 4 {
        let paths = enumerate_paths(grid, n - 1, 0, None);
        println!(
            "  enumerated {} paths from wire {} to wire I:",
            paths.len(),
            grid.horizontal_name(n - 1)
        );
        for p in paths.iter().take(9) {
            let hops: Vec<String> = p
                .crossings
                .iter()
                .map(|&(i, j)| format!("R[{},{}]", grid.horizontal_name(i), grid.vertical_name(j)))
                .collect();
            println!("    {}", hops.join(" → "));
        }
    }

    // --- §IV-A: the joint-constraint transformation --------------------
    let pt = PairTopology::new(grid, n - 1, 0);
    let (joints, paths) = pt.constraint_saving();
    println!("\njoint-constraint transformation (Figure 5):");
    println!("  joints per pair    : {joints} (2n)");
    println!("  paths per pair     : {paths}");
    println!(
        "  whole array        : {} joints vs {} paths",
        PairTopology::array_totals(grid).0,
        PairTopology::array_totals(grid).1
    );

    let eqs = form_pair_equations(grid, n - 1, 0, 5.0, 1000.0);
    println!(
        "\nthe {} equations of pair ({}, I):",
        eqs.len(),
        grid.horizontal_name(n - 1)
    );
    for eq in eqs.iter().take(6) {
        println!("  {}", render_equation(eq, grid));
    }
    if eqs.len() > 6 {
        println!("  … and {} more", eqs.len() - 6);
    }
}
