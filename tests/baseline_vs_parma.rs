//! Baseline-versus-Parma comparisons: the asymptotic blow-up the paper
//! argues from (§II-C), and agreement between Parma's fixed point, the
//! dense Newton cross-check and the exponential path baseline at small
//! scales.

use mea_equations::{FormationCensus, PairTopology};
use mea_model::{exact_path_count, paper_path_count};
use parma::newton::newton_inverse;
use parma::path_solver::PathTable;
use parma::prelude::*;

#[test]
fn joint_constraints_beat_paths_asymptotically() {
    // The §IV-A saving: O(n³) joints vs O(nⁿ) paths, at every paper scale.
    for n in [3usize, 6, 10, 20] {
        let grid = MeaGrid::square(n);
        let (joints, paths) = PairTopology::array_totals(grid);
        assert_eq!(joints, 2 * n * n * n);
        if n > 3 {
            assert!(
                paths > joints as u128 * 100,
                "n = {n}: paths {paths} must dwarf joints {joints}"
            );
        }
    }
    // The paper's n > 6 infeasibility threshold for the path approach:
    // 7^8 ≈ 5.8 M stored paths for the whole array.
    assert!(paper_path_count(7, true) > 5_000_000);
    assert!(exact_path_count(MeaGrid::square(7)) > 1_000_000);
}

#[test]
fn equation_terms_scale_polynomially() {
    // Formation work is Θ(n⁴) terms — polynomial, vs the exponential path
    // storage.
    let t10 = FormationCensus::expected(MeaGrid::square(10)).terms as f64;
    let t20 = FormationCensus::expected(MeaGrid::square(20)).terms as f64;
    let ratio = t20 / t10;
    assert!(
        (14.0..18.0).contains(&ratio),
        "doubling n must ~16× the term count, got {ratio}"
    );
}

#[test]
fn three_solvers_meet_on_small_arrays() {
    // Parma fixed point vs dense-Jacobian Newton: same physics, same root.
    let grid = MeaGrid::square(4);
    let (truth, _) = AnomalyConfig::default().generate(grid, 2222);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();

    let fixed = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
    let newton = newton_inverse(&z, &z, 1e-10, 80).unwrap();

    assert!(fixed.resistors.rel_max_diff(&truth) < 1e-6);
    assert!(newton.rel_max_diff(&truth) < 1e-6);
    assert!(newton.rel_max_diff(&fixed.resistors) < 1e-5);
}

#[test]
fn naive_path_model_disagrees_with_physics() {
    // The baseline's forward model is *not* the exact effective
    // resistance; its error is what deep-learning corrections in the
    // pre-Parma line of work had to absorb.
    let grid = MeaGrid::square(3);
    let (truth, _) = AnomalyConfig::default().generate(grid, 9);
    let table = PathTable::build(grid, None);
    let naive = table.naive_forward(&truth);
    let exact = ForwardSolver::new(&truth).unwrap().solve_all();
    let gap = naive.rel_max_diff(&exact);
    assert!(
        gap > 0.01,
        "the naive model must deviate measurably, got {gap}"
    );
    for (i, j) in grid.pair_iter() {
        assert!(naive.get(i, j) <= exact.get(i, j) + 1e-9);
    }
}

#[test]
fn path_table_storage_matches_census() {
    for n in [2usize, 3, 4] {
        let grid = MeaGrid::square(n);
        let table = PathTable::build(grid, None);
        assert_eq!(
            table.total_paths() as u128,
            exact_path_count(grid) * (n * n) as u128
        );
    }
}
