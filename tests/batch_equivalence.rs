//! Cross-crate integration test: the batched throughput path must be an
//! *exact* stand-in for the sequential path. Whole `ParmaSolution`s —
//! resistor maps, iteration counts, residuals, histories, recovery logs —
//! come back bitwise identical whether solves run one at a time on the
//! calling thread or fan out over the work-stealing pool, at any thread
//! count, for healthy and degenerate datasets alike.

use parma::full_newton::{full_newton_inverse, FullNewtonOptions};
use parma::prelude::*;

fn measurements(n: usize, seeds: &[u64]) -> Vec<ZMatrix> {
    seeds
        .iter()
        .map(|&seed| {
            let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
            ForwardSolver::new(&truth).unwrap().solve_all()
        })
        .collect()
}

fn assert_solutions_bitwise_equal(a: &ParmaSolution, b: &ParmaSolution, label: &str) {
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(
        a.residual.to_bits(),
        b.residual.to_bits(),
        "{label}: residual"
    );
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: history entry");
    }
    assert_eq!(a.recovery, b.recovery, "{label}: recovery log");
    for (i, (x, y)) in a
        .resistors
        .as_slice()
        .iter()
        .zip(b.resistors.as_slice())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: resistor {i}");
    }
}

#[test]
fn batched_solutions_equal_sequential_solutions_bitwise() {
    let zs = measurements(6, &[501, 502, 503, 504, 505]);
    let solver = ParmaSolver::new(ParmaConfig::default());
    let sequential: Vec<ParmaSolution> = zs.iter().map(|z| solver.solve(z).unwrap()).collect();
    for threads in [1usize, 2, 4, 8] {
        let batch = BatchSolver::new(ParmaConfig::default(), threads).unwrap();
        let batched = batch.solve_all(&zs);
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_solutions_bitwise_equal(
                b.as_ref().unwrap(),
                s,
                &format!("item {i}, {threads} threads"),
            );
        }
    }
}

#[test]
fn degenerate_maps_recover_identically_in_batch() {
    // A near-short crossing trips the recovery ladder; the intervention
    // sequence and the final bits must match the sequential solve even
    // when the solve runs on a pool worker.
    let grid = MeaGrid::square(5);
    let mut zs = measurements(5, &[601, 602]);
    let (mut truth, _) = AnomalyConfig::default().generate(grid, 603);
    truth.set(2, 2, 1e-3); // pathological short
    if let Ok(forward) = ForwardSolver::new(&truth) {
        zs.push(forward.solve_all());
    }
    let cfg = ParmaConfig {
        max_iter: 900,
        ..Default::default()
    };
    let solver = ParmaSolver::new(cfg);
    let sequential: Vec<Result<ParmaSolution, ParmaError>> =
        zs.iter().map(|z| solver.solve(z)).collect();
    let batched = BatchSolver::new(cfg, 3).unwrap().solve_all(&zs);
    for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
        match (b, s) {
            (Ok(b), Ok(s)) => assert_solutions_bitwise_equal(b, s, &format!("item {i}")),
            (
                Err(ParmaError::NoConvergence { partial: pb, .. }),
                Err(ParmaError::NoConvergence { partial: ps, .. }),
            ) => {
                for (x, y) in pb.as_slice().iter().zip(ps.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "item {i}: partial map");
                }
            }
            other => panic!("item {i}: batch/sequential outcome mismatch: {other:?}"),
        }
    }
}

#[test]
fn batched_sessions_equal_sequential_pipeline_bitwise() {
    let datasets: Vec<WetLabDataset> = (0..3)
        .map(|k| {
            WetLabDataset::generate(MeaGrid::square(5), &AnomalyConfig::default(), 700 + k).unwrap()
        })
        .collect();
    let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
    let sequential: Vec<Vec<TimePointResult>> =
        datasets.iter().map(|d| pipeline.run(d).unwrap()).collect();
    let batched = BatchSolver::new(ParmaConfig::default(), 2)
        .unwrap()
        .run_sessions(&datasets, 1.5)
        .unwrap();
    for (d, (b, s)) in batched.iter().zip(&sequential).enumerate() {
        let b = b.as_ref().unwrap();
        assert_eq!(b.len(), s.len());
        for (tp_b, tp_s) in b.iter().zip(s) {
            assert_eq!(tp_b.hours, tp_s.hours);
            assert_solutions_bitwise_equal(
                &tp_b.solution,
                &tp_s.solution,
                &format!("dataset {d}, hour {}", tp_b.hours),
            );
            assert_eq!(
                tp_b.detection.anomalies, tp_s.detection.anomalies,
                "dataset {d}: detection must follow the identical map"
            );
        }
    }
}

#[test]
fn supervised_sessions_equal_plain_sessions_bitwise() {
    // The determinism contract of supervised execution: with retries
    // disabled and no deadlines, the supervisor is a pure pass-through —
    // session results carry exactly the plain batch's bits, per time
    // point, at any thread count.
    let datasets: Vec<WetLabDataset> = (0..3)
        .map(|k| {
            WetLabDataset::generate(MeaGrid::square(5), &AnomalyConfig::default(), 750 + k).unwrap()
        })
        .collect();
    let sup = SupervisorConfig {
        max_retries: 0,
        ..Default::default()
    };
    let on_done = |_: usize, _: &Result<Vec<TimePointResult>, FailureReport>| {};
    for threads in [1usize, 3] {
        let batch = BatchSolver::new(ParmaConfig::default(), threads).unwrap();
        let plain = batch.run_sessions(&datasets, 1.5).unwrap();
        let supervised = batch
            .run_sessions_supervised(&datasets, 1.5, &sup, &on_done)
            .unwrap();
        assert_eq!(plain.len(), supervised.len());
        for (d, (p, s)) in plain.iter().zip(&supervised).enumerate() {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.len(), s.len());
            for (tp_p, tp_s) in p.iter().zip(s) {
                assert_eq!(tp_p.hours, tp_s.hours);
                assert_solutions_bitwise_equal(
                    &tp_s.solution,
                    &tp_p.solution,
                    &format!("dataset {d}, hour {}, {threads} threads", tp_p.hours),
                );
                assert_eq!(
                    tp_p.detection.anomalies, tp_s.detection.anomalies,
                    "dataset {d}: detection must follow the identical map"
                );
            }
        }
    }
}

#[test]
fn template_full_newton_agrees_with_production_batch() {
    // Third independent check that the symbolic-template Gauss-Newton path
    // and the batched fixed-point path still meet at the same root.
    let zs = measurements(4, &[801, 802]);
    let batched = BatchSolver::new(ParmaConfig::default(), 2)
        .unwrap()
        .solve_all(&zs);
    for (z, res) in zs.iter().zip(&batched) {
        let fp = res.as_ref().unwrap();
        let gn = full_newton_inverse(z, 5.0, &FullNewtonOptions::default()).unwrap();
        let diff = fp.resistors.rel_max_diff(&gn.resistors);
        assert!(
            diff < 1e-5,
            "independent formulations diverged: rel diff {diff}"
        );
    }
}
