//! Checkpoint/resume contract of `parma batch --journal` / `--resume`:
//! a batch killed mid-run and resumed must end with a journal whose
//! entries are bitwise identical to an uninterrupted run's — same
//! residual bit patterns, same resistor-map hashes — because resumed
//! items are skipped, not re-solved, and leftover items solve
//! deterministically regardless of batch composition.
//!
//! These tests spawn the real binary (`CARGO_BIN_EXE_parma`) so the kill
//! exercises the actual process-death path, torn journal tail included.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn parma() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parma"))
}

fn generate(dir: &Path, name: &str, n: usize, seed: u64) {
    let status = parma()
        .args([
            "generate",
            "--n",
            &n.to_string(),
            "--seed",
            &seed.to_string(),
            "--out",
            dir.join(name).to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .status()
        .expect("spawn parma generate");
    assert!(status.success(), "generate {name} failed");
}

/// Complete journal entries, sorted: the comparison key of the resume
/// contract. A torn tail (killed mid-write) is excluded the same way the
/// resuming process excludes it.
fn sorted_valid_lines(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| {
            l.starts_with("{\"schema\":\"parma-journal/v1\"")
                && l.ends_with('}')
                && l.matches('{').count() == l.matches('}').count()
        })
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parma-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_then_resumed_batch_matches_uninterrupted_journal_bitwise() {
    let dir = fresh_dir("batch-resume");
    let data = dir.join("data");
    std::fs::create_dir_all(&data).unwrap();
    for k in 0..6u64 {
        generate(&data, &format!("s{k}.txt"), 8, 910 + k);
    }
    let data_s = data.to_str().unwrap();

    // Reference: the uninterrupted run.
    let reference = dir.join("reference.jsonl");
    let out = parma()
        .args([
            "batch",
            data_s,
            "--threads",
            "2",
            "--journal",
            reference.to_str().unwrap(),
        ])
        .output()
        .expect("spawn reference batch");
    assert!(
        out.status.success(),
        "reference batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference_lines = sorted_valid_lines(&reference);
    assert_eq!(reference_lines.len(), 6, "one journal entry per dataset");

    // Victim: same batch, killed as soon as the journal shows progress.
    // (If the machine is fast enough that it finishes first, the resume
    // below degenerates to the all-skipped path — still a valid check.)
    let victim = dir.join("victim.jsonl");
    let victim_s = victim.to_str().unwrap();
    let mut child = parma()
        .args(["batch", data_s, "--threads", "2", "--journal", victim_s])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim batch");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if child.try_wait().expect("poll victim").is_some() {
            break;
        }
        let progressed = std::fs::read_to_string(&victim)
            .map(|t| t.lines().next().is_some())
            .unwrap_or(false);
        if progressed {
            child.kill().ok();
            child.wait().expect("reap victim");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim batch never journaled progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let after_kill = sorted_valid_lines(&victim).len();
    assert!(after_kill <= 6, "journal cannot outgrow the batch");

    // Resume: finishes the leftovers and exits cleanly.
    let out = parma()
        .args([
            "batch",
            data_s,
            "--threads",
            "2",
            "--journal",
            victim_s,
            "--resume",
        ])
        .output()
        .expect("spawn resumed batch");
    assert!(
        out.status.success(),
        "resumed batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    if after_kill > 0 && after_kill < 6 {
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains("already journaled, skipped"),
            "resume must report the skips: {text}"
        );
    }

    // The journal after kill + resume is bitwise the uninterrupted one.
    assert_eq!(
        sorted_valid_lines(&victim),
        reference_lines,
        "kill + resume must reproduce the uninterrupted journal bitwise"
    );

    // A second resume is a pure no-op: nothing re-solves, nothing is
    // appended, the journal bytes do not move.
    let before = std::fs::read(&victim).unwrap();
    let out = parma()
        .args([
            "batch",
            data_s,
            "--threads",
            "2",
            "--journal",
            victim_s,
            "--resume",
        ])
        .output()
        .expect("spawn no-op resume");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("resume: 6 dataset(s) already journaled, skipped"),
        "{text}"
    );
    assert!(text.contains("batch: 0 solves"), "{text}");
    assert_eq!(
        std::fs::read(&victim).unwrap(),
        before,
        "a fully-journaled resume must not rewrite the journal"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_exits_with_status_3_and_journals_the_failure() {
    let dir = fresh_dir("batch-quarantine");
    let data = dir.join("data");
    std::fs::create_dir_all(&data).unwrap();
    generate(&data, "good.txt", 4, 77);
    std::fs::write(
        data.join("corrupt.txt"),
        "# parma-dataset v1\nrows 1\ncols 2\nmeasurement 0 5\nNaN\t1.0\n",
    )
    .unwrap();
    let journal = dir.join("journal.jsonl");
    let out = parma()
        .args([
            "batch",
            data.to_str().unwrap(),
            "--threads",
            "2",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("spawn batch");
    assert_eq!(
        out.status.code(),
        Some(3),
        "quarantine must exit with the distinct status, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("QUARANTINED [non_finite_input]"), "{text}");
    assert!(text.contains("failures by kind:"), "{text}");
    let lines = sorted_valid_lines(&journal);
    assert_eq!(lines.len(), 2, "both items journal: {lines:?}");
    assert!(
        lines.iter().any(|l| l.contains("\"status\":\"failed\"")
            && l.contains("\"schema\":\"parma-failure/v1\"")
            && l.contains("\"kind\":\"non_finite_input\"")),
        "{lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"path\":\"good.txt\"") && l.contains("\"status\":\"ok\"")),
        "{lines:?}"
    );

    // A resume re-attempts the failed item (it might have been a flaky
    // environment) and still quarantines it the same way.
    let out = parma()
        .args([
            "batch",
            data.to_str().unwrap(),
            "--threads",
            "2",
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .expect("spawn resumed batch");
    assert_eq!(out.status.code(), Some(3));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("good.txt: already journaled — skipped"),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
