//! Cross-crate integration: the full wet-lab workflow from synthetic
//! device to anomaly report, through the text dataset format.

use parma::prelude::*;

#[test]
fn full_session_measure_export_import_solve_detect() {
    let grid = MeaGrid::square(10);
    let cfg = AnomalyConfig {
        regions: 1,
        ..Default::default()
    };
    let session = WetLabDataset::generate(grid, &cfg, 101).unwrap();

    // Export and re-import the session (the Excel→text pipeline stand-in).
    let mut buf = Vec::new();
    session.write_text(&mut buf).unwrap();
    let loaded = WetLabDataset::read_text(&buf[..]).unwrap();
    assert_eq!(loaded.measurements.len(), 4);

    // Solve each time point of the *loaded* session.
    let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
    let results = pipeline.run(&loaded).unwrap();
    assert_eq!(results.len(), 4);

    // Compare against the original ground truth, out of band.
    for (r, original) in results.iter().zip(&session.measurements) {
        let truth = original.ground_truth.as_ref().unwrap();
        let err = r.solution.resistors.rel_max_diff(truth);
        // The text format stores 10 significant digits, so recovery is
        // bounded by serialization precision, not solver precision.
        assert!(err < 1e-5, "hour {}: error {err}", r.hours);
    }
}

#[test]
fn detection_localizes_the_planted_region() {
    let grid = MeaGrid::square(16);
    let cfg = AnomalyConfig {
        regions: 1,
        ..Default::default()
    };
    let (truth, regions) = cfg.generate(grid, 11);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let solution = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
    let report = detect_anomalies(&solution.resistors, 1.5);
    let (precision, recall) = report.score(&solution.resistors, &regions, 0.5 * cfg.baseline);
    assert!(precision > 0.7, "precision {precision}");
    assert!(recall > 0.7, "recall {recall}");
}

#[test]
fn solver_scales_to_paper_minimum_workload() {
    // n = 10 is the smallest scale in the paper's sweep; the full pipeline
    // (measure → solve → detect) must converge tightly there.
    let grid = MeaGrid::square(10);
    let (truth, _) = AnomalyConfig::default().generate(grid, 5);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let sol = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
    assert!(sol.residual <= 1e-10);
    assert!(sol.resistors.rel_max_diff(&truth) < 1e-6);
}

#[test]
fn measured_costs_drive_a_sane_mpi_projection() {
    use mea_parallel::mpi_sim::{measure_costs, simulate, ClusterModel};
    let grid = MeaGrid::square(12);
    let (truth, _) = AnomalyConfig::default().generate(grid, 3);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let costs = measure_costs(grid.pairs(), |p| {
        let (i, j) = (p / grid.cols(), p % grid.cols());
        std::hint::black_box(mea_equations::form_pair_equations(
            grid,
            i,
            j,
            5.0,
            z.get(i, j),
        ));
    });
    let cluster = ClusterModel::paper_hpc();
    let one = simulate(&cluster, 1, &costs, 5, 8 * grid.pairs());
    let sixteen = simulate(&cluster, 16, &costs, 5, 8 * grid.pairs());
    assert!(
        sixteen.total_secs < one.total_secs,
        "parallelism must help in-node"
    );
}
