//! Strategy-equivalence and physics-consistency invariants across crates:
//! every execution strategy must produce identical equation systems and
//! identical solver output, and both must agree with Kirchhoff physics.

use mea_equations::{form_all_equations, EquationSystem};
use mea_parallel::Strategy;
use mea_topology::{betti_numbers, mea_complex};
use parma::prelude::*;
use parma::{form_equations_parallel, BettiSchedule};

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::SingleThread,
        Strategy::Parallel4,
        Strategy::BalancedParallel { threads: 2 },
        Strategy::BalancedParallel { threads: 5 },
        Strategy::FineGrained { threads: 2 },
        Strategy::FineGrained { threads: 3 },
        Strategy::WorkStealing { threads: 2 },
        Strategy::WorkStealing { threads: 4 },
    ]
}

fn measured(n: usize, seed: u64) -> (ResistorGrid, ZMatrix) {
    let (truth, _) = AnomalyConfig::default().generate(MeaGrid::square(n), seed);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    (truth, z)
}

#[test]
fn formation_is_strategy_invariant() {
    let (_, z) = measured(6, 99);
    let reference = form_all_equations(&z, 5.0);
    for s in strategies() {
        assert_eq!(form_equations_parallel(&z, 5.0, s), reference, "{s:?}");
    }
}

#[test]
fn solver_is_strategy_invariant() {
    let (_, z) = measured(7, 100);
    let reference = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
    for s in strategies() {
        let sol = ParmaSolver::new(ParmaConfig::default().with_strategy(s))
            .solve(&z)
            .unwrap();
        assert_eq!(sol.iterations, reference.iterations, "{s:?}");
        assert!(
            sol.resistors.rel_max_diff(&reference.resistors) < 1e-12,
            "{s:?} diverged from the sequential solution"
        );
    }
}

#[test]
fn formed_equations_agree_with_physics_under_every_strategy() {
    let (truth, z) = measured(5, 123);
    for s in strategies() {
        let eqs = form_equations_parallel(&z, 5.0, s);
        let sys = EquationSystem::from_equations(&z, 5.0, eqs);
        let x = sys.exact_unknowns_for(&truth).unwrap();
        assert!(sys.max_residual(&x) < 1e-9, "{s:?}");
    }
}

#[test]
fn betti_number_cyclomatic_number_and_schedule_agree() {
    for (m, n) in [(2usize, 2usize), (3, 3), (4, 7), (6, 5)] {
        let grid = MeaGrid::new(m, n);
        // Homology of the joint-level complex…
        let joint = betti_numbers(&mea_complex::mea_to_complex(m, n));
        // …homology of the contracted wire graph…
        let wire = betti_numbers(&mea_complex::mea_wire_complex(m, n));
        // …the graph-theoretic cyclomatic number…
        let cyclomatic = m * n - (m + n) + 1;
        // …and the scheduler's bound must all coincide.
        assert_eq!(joint[1], cyclomatic);
        assert_eq!(wire[1], cyclomatic);
        assert_eq!(BettiSchedule::new(grid).parallelism_bound(), cyclomatic);
        assert_eq!(parma::parallelism_bound(grid), (m - 1) * (n - 1));
    }
}

#[test]
fn solver_accuracy_is_seed_and_size_robust() {
    for (n, seed) in [(3usize, 1u64), (5, 2), (8, 3), (12, 4)] {
        let (truth, z) = measured(n, seed);
        let sol = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
        assert!(
            sol.resistors.rel_max_diff(&truth) < 1e-5,
            "n = {n}, seed = {seed}: {}",
            sol.resistors.rel_max_diff(&truth)
        );
    }
}

#[test]
fn equation_census_matches_the_paper_for_paper_scales() {
    // §IV-A: 2n³ equations and (2n−1)n² unknowns at every paper scale.
    for n in [10usize, 20, 50, 100] {
        let grid = MeaGrid::square(n);
        assert_eq!(grid.equations(), 2 * n * n * n);
        assert_eq!(grid.unknowns(), (2 * n - 1) * n * n);
    }
}
