//! Failure injection across the workspace: malformed inputs, non-physical
//! values and exhausted budgets must produce typed errors, never panics or
//! silent garbage.

use mea_model::DatasetError;
use parma::prelude::*;
use parma::ParmaError;

#[test]
fn nonphysical_measurements_are_rejected_everywhere() {
    let grid = MeaGrid::square(3);
    for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
        let z = CrossingMatrix::filled(grid, bad);
        assert!(
            matches!(
                ParmaSolver::new(ParmaConfig::default()).solve(&z),
                Err(ParmaError::InvalidMeasurement(_))
            ),
            "solver must reject Z = {bad}"
        );
        assert!(
            ForwardSolver::new(&z).is_err(),
            "forward must reject R = {bad}"
        );
    }
}

#[test]
fn dataset_parser_rejects_malformed_files() {
    let cases: &[(&str, &str)] = &[
        ("", "empty file"),
        ("garbage header\n", "bad header"),
        ("# parma-dataset v1\n", "missing dims"),
        ("# parma-dataset v1\nrows 2\n", "missing cols"),
        ("# parma-dataset v1\nrows 0\ncols 2\n", "zero rows"),
        (
            "# parma-dataset v1\nrows 2\ncols 2\nnot-a-measurement\n",
            "bad section",
        ),
        (
            "# parma-dataset v1\nrows 2\ncols 2\nmeasurement x 5\n",
            "bad hours",
        ),
        (
            "# parma-dataset v1\nrows 2\ncols 2\nmeasurement 0 5\n1.0\tbeef\n1.0\t1.0\n",
            "bad value",
        ),
        (
            "# parma-dataset v1\nrows 2\ncols 2\nmeasurement 0 5\n1.0\t2.0\n",
            "truncated",
        ),
    ];
    for (text, label) in cases {
        let err = WetLabDataset::read_text(text.as_bytes());
        assert!(
            matches!(err, Err(DatasetError::Parse(_))),
            "case {label:?} must raise a parse error, got {err:?}"
        );
    }
    // Structurally valid but physically corrupt values get the *typed*
    // rejection (the supervision taxonomy's non_finite_input), not Parse.
    for (text, label) in [
        (
            "# parma-dataset v1\nrows 1\ncols 2\nmeasurement 0 5\n1.0\t0.0\n",
            "zero impedance",
        ),
        (
            "# parma-dataset v1\nrows 1\ncols 2\nmeasurement 0 5\nNaN\t1.0\n",
            "NaN impedance",
        ),
        (
            "# parma-dataset v1\nrows 1\ncols 2\nmeasurement 0 5\n1.0\tinf\n",
            "infinite impedance",
        ),
    ] {
        let err = WetLabDataset::read_text(text.as_bytes());
        assert!(
            matches!(err, Err(DatasetError::NonPhysical { .. })),
            "case {label:?} must raise the typed non-physical error, got {err:?}"
        );
    }
}

#[test]
fn corrupt_fixture_files_are_rejected_at_ingestion() {
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    for name in ["corrupt_nan.txt", "corrupt_negative.txt"] {
        let path = fixtures.join(name);
        match WetLabDataset::load(&path) {
            Err(DatasetError::NonPhysical {
                hours,
                row,
                col,
                value,
            }) => {
                assert!(
                    !value.is_finite() || value <= 0.0,
                    "{name}: reported value {value} is physical"
                );
                assert!(row < 3 && col < 3, "{name}: location ({row}, {col})");
                assert!(hours <= 24, "{name}: hour stamp {hours}");
            }
            other => panic!("{name}: expected NonPhysical, got {other:?}"),
        }
    }
}

#[test]
fn budget_exhaustion_surfaces_partial_state() {
    let grid = MeaGrid::square(8);
    let (truth, _) = AnomalyConfig::default().generate(grid, 4);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let cfg = ParmaConfig {
        max_iter: 1,
        tol: 1e-15,
        ..Default::default()
    };
    match ParmaSolver::new(cfg).solve(&z) {
        Err(ParmaError::NoConvergence {
            iterations,
            residual,
            partial,
        }) => {
            assert_eq!(iterations, 1);
            assert!(residual.is_finite() && residual > 0.0);
            assert!(partial.is_physical(), "partial iterate must stay physical");
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
}

#[test]
fn pathological_but_physical_measurements_do_not_panic() {
    // Wildly inconsistent Z (not produced by any physical R) must either
    // converge to *some* physical map or fail with a typed error.
    let grid = MeaGrid::square(4);
    let mut z = CrossingMatrix::filled(grid, 1000.0);
    z.set(0, 0, 1e-3);
    z.set(3, 3, 1e9);
    match ParmaSolver::new(ParmaConfig {
        max_iter: 50,
        ..Default::default()
    })
    .solve(&z)
    {
        Ok(sol) => assert!(sol.resistors.is_physical()),
        Err(ParmaError::NoConvergence { partial, .. }) => assert!(partial.is_physical()),
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn extreme_dynamic_range_stays_stable() {
    // Five orders of magnitude between crossings: the solver must still
    // round-trip.
    let grid = MeaGrid::square(4);
    let mut truth = CrossingMatrix::filled(grid, 2_000.0);
    truth.set(1, 1, 200_000.0);
    truth.set(2, 3, 20.0);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let cfg = ParmaConfig {
        max_iter: 5_000,
        ..Default::default()
    };
    let sol = ParmaSolver::new(cfg).solve(&z).unwrap();
    assert!(
        sol.resistors.rel_max_diff(&truth) < 1e-4,
        "dynamic-range error {}",
        sol.resistors.rel_max_diff(&truth)
    );
}

#[test]
fn single_crossing_degenerate_device() {
    // n = 1: no cycles, no intermediates — Z IS the resistor.
    let grid = MeaGrid::square(1);
    let truth = CrossingMatrix::filled(grid, 4242.0);
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let sol = ParmaSolver::new(ParmaConfig::default()).solve(&z).unwrap();
    assert!((sol.resistors.get(0, 0) - 4242.0).abs() < 1e-6);
    assert_eq!(parma::parallelism_bound(grid), 0);
}

/// Builds the near-degenerate sparse map of the recovery acceptance test:
/// a 5×5 array that is open (1 GΩ) everywhere except nine live crossings
/// spanning a ~6000× dynamic range. Wires 3 (row) and 0/3 (columns) carry
/// no live crossing at all, so several conductance combinations are
/// observable only through ~1e-8-level changes in Z — the plain damped
/// sweep enters a slow mode with contraction rate ≈ 1 and plateaus just
/// above tolerance.
fn stalling_map() -> ResistorGrid {
    let grid = MeaGrid::square(5);
    let mut t = CrossingMatrix::filled(grid, 1.0e9);
    t.set(0, 1, 381907.3749711039);
    t.set(0, 2, 467995.7126771082);
    t.set(0, 4, 209645.12251302483);
    t.set(1, 1, 184644.70097808185);
    t.set(1, 2, 228353.59058863952);
    t.set(2, 2, 478005.4460925065);
    t.set(2, 4, 136805.4303249105);
    t.set(4, 1, 74914.31532065517);
    t.set(4, 4, 84194.91216249965);
    t
}

/// Measured impedances of a healthy 5×5 map degraded by `faults`.
fn faulted_measurement(faults: &[mea_model::faults::Fault]) -> ZMatrix {
    let grid = MeaGrid::square(5);
    let (healthy, _) = AnomalyConfig::default().generate(grid, 321);
    let degraded = mea_model::faults::apply_faults(&healthy, faults);
    ForwardSolver::new(&degraded).unwrap().solve_all()
}

/// The supervised-batch contract on pathological hardware: every item
/// either converges to a fully finite, physical map or comes back as a
/// classified [`FailureReport`] — never a panic, never NaN output.
fn assert_supervised_outcome_is_classified(z: ZMatrix, label: &str) {
    let batch = BatchSolver::new(
        ParmaConfig {
            max_iter: 6_000,
            recovery: true,
            ..Default::default()
        },
        2,
    )
    .unwrap();
    let sup = SupervisorConfig {
        max_retries: 2,
        backoff: std::time::Duration::ZERO,
        ..Default::default()
    };
    let out = batch.solve_all_supervised(&[z], &sup);
    match &out[0] {
        Ok(sol) => {
            assert!(
                sol.resistors.is_physical(),
                "{label}: converged output must be physical"
            );
            assert!(
                sol.resistors.as_slice().iter().all(|v| v.is_finite()),
                "{label}: converged output must be NaN-free"
            );
        }
        Err(report) => {
            assert!(
                matches!(
                    report.kind,
                    FailureKind::Divergence | FailureKind::Timeout | FailureKind::Internal
                ),
                "{label}: unexpected classification {:?}",
                report.kind
            );
            assert!(
                !report.attempts.is_empty(),
                "{label}: quarantine must log its attempts"
            );
        }
    }
}

#[test]
fn dead_wire_grids_converge_or_classify() {
    use mea_model::faults::Fault;
    for (label, faults) in [
        (
            "dead horizontal wire",
            vec![Fault::DeadHorizontalWire { i: 2 }],
        ),
        ("dead vertical wire", vec![Fault::DeadVerticalWire { j: 0 }]),
        (
            "two dead wires",
            vec![
                Fault::DeadHorizontalWire { i: 1 },
                Fault::DeadVerticalWire { j: 3 },
            ],
        ),
    ] {
        assert_supervised_outcome_is_classified(faulted_measurement(&faults), label);
    }
}

#[test]
fn shorted_crossing_grids_converge_or_classify() {
    use mea_model::faults::Fault;
    for (label, faults) in [
        (
            "single shorted crossing",
            vec![Fault::ShortCircuit { i: 2, j: 2 }],
        ),
        (
            "shorted pair sharing a wire",
            vec![
                Fault::ShortCircuit { i: 1, j: 1 },
                Fault::ShortCircuit { i: 1, j: 3 },
            ],
        ),
        (
            "short next to an open",
            vec![
                Fault::ShortCircuit { i: 0, j: 0 },
                Fault::OpenCircuit { i: 0, j: 1 },
            ],
        ),
    ] {
        assert_supervised_outcome_is_classified(faulted_measurement(&faults), label);
    }
}

#[test]
fn recovery_rescues_a_stalled_solve() {
    let truth = stalling_map();
    let z = ForwardSolver::new(&truth).unwrap().solve_all();
    let base = ParmaConfig {
        tol: 5e-9,
        max_iter: 4_000,
        ..Default::default()
    };

    // The plain sweep (ladder disarmed) stalls: it spends the whole budget
    // and still sits above tolerance.
    let plain = ParmaConfig {
        recovery: false,
        ..base
    };
    match ParmaSolver::new(plain).solve(&z) {
        Err(ParmaError::NoConvergence {
            iterations,
            residual,
            ..
        }) => {
            assert_eq!(iterations, 4_000);
            assert!(residual > base.tol, "stalled above tol, got {residual:.3e}");
        }
        other => panic!("plain sweep must stall on this map, got {other:?}"),
    }

    // The armed solver detects the plateau, extrapolates through the slow
    // mode, and finishes in a small fraction of the budget — with the
    // intervention recorded in the solution diagnostics.
    let sol = ParmaSolver::new(base)
        .solve(&z)
        .expect("recovery must rescue this solve");
    assert!(sol.residual <= base.tol);
    assert!(
        sol.iterations < 1_000,
        "recovery should finish quickly, took {}",
        sol.iterations
    );
    assert!(!sol.recovery.is_empty(), "the retry must be recorded");
    assert_eq!(sol.recovery[0].action, RecoveryAction::Extrapolate);
    assert!(sol.recovery[0].at_iteration > 0);
    assert!(sol.recovery[0].residual.is_finite());
}
