//! Hardware-fault pipeline: inject device faults, measure, recover, and
//! classify — the maintenance workflow a deployed MEA system needs on top
//! of the biological one.

use mea_model::faults::{apply_faults, classify_faults, Fault, OPEN_RESISTANCE};
use parma::prelude::*;

fn healthy(n: usize) -> ResistorGrid {
    CrossingMatrix::filled(MeaGrid::square(n), 2000.0)
}

#[test]
fn recovered_map_exposes_an_open_circuit() {
    let faulty = apply_faults(&healthy(8), &[Fault::OpenCircuit { i: 3, j: 5 }]);
    let z = ForwardSolver::new(&faulty).unwrap().solve_all();
    let sol = ParmaSolver::new(ParmaConfig {
        max_iter: 3000,
        ..Default::default()
    })
    .solve(&z)
    .unwrap();
    let (opens, shorts) = classify_faults(&sol.resistors, 2000.0, 20.0, 20.0);
    assert_eq!(opens, vec![(3, 5)]);
    assert!(shorts.is_empty());
    // The recovered value is genuinely extreme, not just above threshold.
    assert!(sol.resistors.get(3, 5) > 0.01 * OPEN_RESISTANCE);
}

#[test]
fn recovered_map_exposes_a_short() {
    let faulty = apply_faults(&healthy(8), &[Fault::ShortCircuit { i: 6, j: 1 }]);
    let z = ForwardSolver::new(&faulty).unwrap().solve_all();
    let sol = ParmaSolver::new(ParmaConfig {
        max_iter: 3000,
        ..Default::default()
    })
    .solve(&z)
    .unwrap();
    let (opens, shorts) = classify_faults(&sol.resistors, 2000.0, 20.0, 20.0);
    assert!(opens.is_empty());
    assert_eq!(shorts, vec![(6, 1)]);
}

#[test]
fn dead_wire_is_recovered_as_a_full_row_of_opens() {
    let faulty = apply_faults(&healthy(6), &[Fault::DeadHorizontalWire { i: 2 }]);
    let z = ForwardSolver::new(&faulty).unwrap().solve_all();
    let sol = ParmaSolver::new(ParmaConfig {
        max_iter: 5000,
        tol: 1e-8,
        ..Default::default()
    })
    .solve(&z)
    .unwrap();
    let (opens, _) = classify_faults(&sol.resistors, 2000.0, 20.0, 20.0);
    let expected: Vec<(usize, usize)> = (0..6).map(|j| (2, j)).collect();
    assert_eq!(opens, expected);
}

#[test]
fn faults_and_anomalies_coexist() {
    // A biological anomaly AND a hardware open at distinct crossings: the
    // open shows up in the fault classification, the anomaly in the
    // detection report, and neither masks the other.
    let grid = MeaGrid::square(10);
    let cfg = AnomalyConfig {
        regions: 0,
        ..Default::default()
    };
    let base = cfg.render(
        grid,
        &[mea_model::AnomalyRegion {
            center_row: 7.0,
            center_col: 7.0,
            radius_rows: 1.8,
            radius_cols: 1.8,
            amplitude: 6000.0,
        }],
        3,
    );
    let faulty = apply_faults(&base, &[Fault::OpenCircuit { i: 1, j: 1 }]);
    let z = ForwardSolver::new(&faulty).unwrap().solve_all();
    let sol = ParmaSolver::new(ParmaConfig {
        max_iter: 3000,
        ..Default::default()
    })
    .solve(&z)
    .unwrap();
    let (opens, _) = classify_faults(&sol.resistors, 2000.0, 50.0, 50.0);
    assert_eq!(opens, vec![(1, 1)], "the hardware open is classified");
    let detection = parma::detect_anomalies(&sol.resistors, 1.5);
    assert!(
        detection.anomalies.contains(&(7, 7)),
        "the biological anomaly is still detected: {:?}",
        detection.anomalies
    );
}
