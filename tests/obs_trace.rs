//! End-to-end observability: a full `Pipeline::run` under tracing must
//! emit a snapshot that covers every stage, and its JSON form must be
//! well-formed.
//!
//! The obs registry is process-global, so everything lives in one test
//! function — this file is its own test binary, isolated from the rest of
//! the suite.

use parma::prelude::*;

/// A minimal recursive-descent JSON well-formedness checker (RFC 8259
/// values; enough to validate the trace without external crates). Returns
/// the remainder after one value, or `None` on malformed input.
fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Option<&str> {
    let s = skip_ws(s);
    let mut chars = s.chars();
    match chars.next()? {
        '{' => parse_members(&s[1..], parse_pair, '}'),
        '[' => parse_members(&s[1..], parse_value, ']'),
        '"' => parse_string(s),
        't' => s.strip_prefix("true"),
        'f' => s.strip_prefix("false"),
        'n' => s.strip_prefix("null"),
        '-' | '0'..='9' => {
            let rest = s.trim_start_matches([
                '-', '+', '.', 'e', 'E', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9',
            ]);
            (rest.len() < s.len()).then_some(rest)
        }
        _ => None,
    }
}

fn parse_string(s: &str) -> Option<&str> {
    let mut rest = s.strip_prefix('"')?;
    loop {
        let esc = rest.find('\\');
        let end = rest.find('"')?;
        match esc {
            Some(e) if e < end => rest = &rest[e + 2..],
            _ => return Some(&rest[end + 1..]),
        }
    }
}

fn parse_pair(s: &str) -> Option<&str> {
    let s = parse_string(skip_ws(s))?;
    let s = skip_ws(s).strip_prefix(':')?;
    parse_value(s)
}

fn parse_members<'a>(
    mut s: &'a str,
    item: fn(&'a str) -> Option<&'a str>,
    close: char,
) -> Option<&'a str> {
    s = skip_ws(s);
    if let Some(rest) = s.strip_prefix(close) {
        return Some(rest);
    }
    loop {
        s = skip_ws(item(s)?);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix(close);
        }
    }
}

fn assert_valid_json(text: &str) {
    let rest = parse_value(text).unwrap_or_else(|| panic!("malformed JSON: {text}"));
    assert!(
        skip_ws(rest).is_empty(),
        "trailing garbage after JSON value: {rest:?}"
    );
}

#[test]
fn pipeline_run_emits_a_complete_trace() {
    let grid = MeaGrid::square(5);
    let session = WetLabDataset::generate(grid, &AnomalyConfig::default(), 23).unwrap();
    let hours = session.measurements.len() as u64;

    mea_obs::reset();
    mea_obs::set_enabled(true);
    let pipeline = Pipeline::new(ParmaConfig::default(), 1.5).unwrap();
    let results = pipeline.run(&session).unwrap();
    mea_obs::set_enabled(false);
    let snap = mea_obs::snapshot();

    assert_eq!(results.len(), hours as usize);

    // Every pipeline stage shows up as a span, with per-stage wall time.
    let run = snap.span("pipeline/run").expect("run span");
    assert_eq!(run.count, 1);
    let tp = snap
        .span("pipeline/run/time_point")
        .expect("time_point span");
    assert_eq!(tp.count, hours);
    let detect = snap
        .span("pipeline/run/time_point/detect")
        .expect("detect span");
    assert_eq!(detect.count, hours);
    let solve = snap
        .span("pipeline/run/time_point/parma/solve")
        .expect("solve span");
    assert_eq!(solve.count, hours);
    assert!(
        run.total >= tp.total,
        "nested spans cannot exceed their parent"
    );
    assert!(tp.max <= tp.total);

    // Solver counters and one residual curve per time point.
    assert_eq!(snap.counter("parma.solver.solves"), Some(hours));
    let iters = snap
        .counter("parma.solver.iterations")
        .expect("iteration counter");
    let expected: u64 = results.iter().map(|r| r.solution.iterations as u64).sum();
    assert_eq!(iters, expected);
    let series = snap
        .series("parma.solver.residuals")
        .expect("residual series");
    assert_eq!(series.len(), hours as usize);
    for (curve, r) in series.iter().zip(&results) {
        assert_eq!(curve.len(), r.solution.history.len());
        assert!(curve.iter().all(|v| v.is_finite()));
    }

    // The JSON rendering is one well-formed value carrying all of it.
    let json = snap.to_json();
    assert_valid_json(&json);
    for marker in [
        "\"pipeline/run\"",
        "\"pipeline/run/time_point/parma/solve\"",
        "\"parma.solver.solves\"",
        "\"parma.solver.residuals\"",
        "\"total_ms\"",
    ] {
        assert!(json.contains(marker), "trace JSON is missing {marker}");
    }

    // Once disabled, nothing further is recorded.
    {
        let _late = mea_obs::span("late");
        mea_obs::counter_add("late.counter", 1);
    }
    let after = mea_obs::snapshot();
    assert!(after.span("late").is_none());
    assert_eq!(after.counter("late.counter"), None);
}
