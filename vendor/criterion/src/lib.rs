//! A self-contained micro-benchmark harness exposing the subset of the
//! Criterion API this workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`, `BenchmarkId`).
//!
//! The real Criterion cannot be fetched in the offline build environment.
//! This shim keeps `cargo bench` runnable and prints one median-of-samples
//! line per benchmark; it does not do statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that take `black_box` from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// A one-off benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(
            id,
            self.default_sample_size,
            self.default_measurement_time,
            None,
            &mut f,
        );
        self
    }
}

/// Work done per benchmark iteration, for per-unit reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the work per iteration; reported as units/s next to times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure under an id derived from an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks a closure under an explicit name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op beyond matching the Criterion API).
    pub fn finish(&mut self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's input parameter.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<P: Display>(function: &str, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured sample count within
    /// the configured time budget (at least one sample always runs).
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        let deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i > 0 && Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(", {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                ", {:.3} MiB/s",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "  {label}: median {:.3} ms, min {:.3} ms ({} samples{rate})",
        median.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        b.samples.len()
    );
}

/// Declares a benchmark group runner (mirrors Criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` (mirrors Criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0;
        group.bench_function("counting", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
        assert_eq!(BenchmarkId::new("f", 2).0, "f/2");
    }
}
