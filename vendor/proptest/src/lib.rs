//! A self-contained property-testing harness exposing the subset of the
//! `proptest` crate's API that this workspace's test suites use.
//!
//! The real proptest cannot be fetched in the offline build environment,
//! and the workspace's policy is zero external dependencies. This shim
//! keeps the existing `proptest! { fn prop_x(a in 0usize..10, ...) }`
//! tests compiling and meaningfully random:
//!
//! * strategies are integer/float ranges, tuples of strategies, `any::<T>()`
//!   and `collection::vec(elem, len_range)`;
//! * each test runs a fixed number of cases (default 64, or
//!   `ProptestConfig::with_cases(n)`) with a deterministic per-test seed,
//!   so failures reproduce exactly;
//! * `prop_assert!`/`prop_assert_eq!` behave like their `assert!` kin.
//!
//! Deliberately *not* implemented: shrinking, persistence files, `prop_oneof`,
//! recursive strategies. Tests here assert invariants, so a failing case's
//! printed inputs are enough to debug.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded explicitly (the macro seeds from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over a test's name: the per-test deterministic seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Something that can produce values for a property test.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Marker strategy for [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for a primitive type.
pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Primitive types [`any`] can generate.
pub trait ArbitraryPrimitive: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryPrimitive for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrimitive for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryPrimitive for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range — useful arbitrary
        // floats for numeric invariants (no NaN/inf surprises).
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a property-test condition (alias for `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality (alias for `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-test inequality (alias for `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold. Expands to
/// `continue` inside the per-case loop, so the case is discarded rather
/// than failed (no replacement case is drawn, unlike upstream proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for every generated case with a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    // The `@cfg` arm must come first: the plain-body arm below is a
    // catch-all and would otherwise re-wrap `@cfg ...` forever.
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&w));
            let f = Strategy::sample(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(7);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(7);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = TestRng::new(3);
        let s = collection::vec((0u32..10, 0u32..10), 0..30);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v.len() < 30);
            for (a, b) in v {
                assert!(a < 10 && b < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn macro_generates_cases(n in 1usize..50, flip in any::<bool>()) {
            prop_assert!((1..50).contains(&n));
            let _ = flip;
        }
    }
}
